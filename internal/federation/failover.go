package federation

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/obs"
	"nexus/internal/obs/trace"
	"nexus/internal/schema"
	"nexus/internal/wire"
)

var (
	metFailovers = obs.Default.Counter("nexus_federation_failovers_total",
		"Subscription failovers: a live subscription lost its server and moved to another address.")
	metRedials = obs.Default.Counter("nexus_federation_redial_attempts_total",
		"Dial+subscribe attempts made by failover subscriptions (first connects included).")
)

// FailoverOpts configures SubscribeFailover.
type FailoverOpts struct {
	// DialOpts bounds each dial and subscribe handshake.
	DialOpts DialOpts
	// Backoff paces reconnect attempts; nil gets a fresh wall-clock
	// seeded one. A subscription that stayed healthy for
	// Backoff.HealthyAfter resets the schedule before the next outage.
	Backoff *Backoff
	// MaxAttempts is the consecutive failed dial+subscribe attempts
	// (across all addresses) before the stream fails. 0 means
	// 4×len(addrs); negative means unlimited (bounded by ctx).
	MaxAttempts int
	// Mux subscribes over a multiplexed connection (DialMux) instead of
	// a dedicated one. Each failover attempt dials a fresh mux owned by
	// this failover subscription; it is closed when the inner
	// subscription ends.
	Mux bool
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// FailoverSub is a subscription that survives server loss: it holds one
// live Subscription to some address in its set and, when the connection
// dies mid-stream, redials a surviving address with
// exponential-backoff-with-jitter and re-subscribes under the same
// durable key — the server restores the stream from its replicated
// checkpoint, epoch-checked. Delivery across a failover is
// at-least-once: the replica replays from the last durable checkpoint,
// which may predate the last batch the old primary sent, so consumers
// must dedup (windowed streams: key on window start).
type FailoverSub struct {
	addrs    []string
	sub      wire.StreamSub
	dialOpts DialOpts
	opts     FailoverOpts

	out    chan SubBatch
	done   chan struct{}
	closed chan struct{}

	closeOnce sync.Once
	failovers atomic.Int64

	mu      sync.Mutex
	cur     *Subscription
	curAddr string
	curMux  *Mux // owns the current subscription's mux connection (Mux mode)
	err     error
}

// SubscribeFailover opens a durable subscription against the first
// reachable address and keeps it alive across server loss. The
// subscription must carry a Durable key — that is where resume state
// lives; without one a failover could only restart from scratch
// silently, which no caller wants by accident.
func SubscribeFailover(ctx context.Context, addrs []string, sub wire.StreamSub, opts FailoverOpts) (*FailoverSub, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("federation: failover: no addresses")
	}
	if sub.Durable == "" {
		return nil, fmt.Errorf("federation: failover requires a Durable key (resume state lives in server checkpoints)")
	}
	if opts.Backoff == nil {
		opts.Backoff = NewBackoff(time.Now().UnixNano())
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 4 * len(addrs)
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	// A traced subscription traces its dials too: every hello — the
	// first connect and each failover redial — parents a handshake span
	// under the same trace, on whichever server answered.
	if sub.Trace.Valid() && !opts.DialOpts.Trace.Valid() {
		opts.DialOpts.Trace = sub.Trace
	}
	f := &FailoverSub{
		addrs:    append([]string(nil), addrs...),
		sub:      sub,
		dialOpts: opts.DialOpts.withDefaults(),
		opts:     opts,
		out:      make(chan SubBatch, 1),
		done:     make(chan struct{}),
		closed:   make(chan struct{}),
	}
	inner, mx, idx, err := f.connect(ctx, 0)
	if err != nil {
		return nil, err
	}
	// Any caller-supplied resume token is spent on the first subscribe;
	// re-subscribes resume from the server-side durable checkpoint.
	f.sub.Resume = nil
	f.setCur(inner, f.addrs[idx], mx)
	go f.run(ctx, idx)
	return f, nil
}

// Batches delivers results and watermark updates across failovers until
// the stream ends or fails terminally (channel close; check Err).
func (f *FailoverSub) Batches() <-chan SubBatch { return f.out }

// OutputSchema is the schema of result batches.
func (f *FailoverSub) OutputSchema() schema.Schema { return f.current().OutputSchema() }

// Err returns the terminal error (nil after a clean end of stream).
func (f *FailoverSub) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Failovers counts completed failovers so far.
func (f *FailoverSub) Failovers() int64 { return f.failovers.Load() }

// Addr is the address currently serving the stream.
func (f *FailoverSub) Addr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.curAddr
}

// Close abandons the stream (the server keeps the durable checkpoint; a
// later SubscribeFailover under the same key resumes).
func (f *FailoverSub) Close() {
	f.closeOnce.Do(func() { close(f.closed) })
	f.current().Close()
	<-f.done
}

func (f *FailoverSub) current() *Subscription {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

func (f *FailoverSub) setCur(s *Subscription, addr string, mx *Mux) {
	f.mu.Lock()
	f.cur, f.curAddr, f.curMux = s, addr, mx
	f.mu.Unlock()
}

// closeCurMux closes the mux owning the current subscription's
// connection, if any (Mux mode dials one mux per attempt).
func (f *FailoverSub) closeCurMux() {
	f.mu.Lock()
	mx := f.curMux
	f.curMux = nil
	f.mu.Unlock()
	if mx != nil {
		mx.Close()
	}
}

func (f *FailoverSub) setErr(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// run forwards batches from the live inner subscription and replaces it
// when it dies.
func (f *FailoverSub) run(ctx context.Context, idx int) {
	defer close(f.done)
	defer close(f.out)
	defer f.closeCurMux()
	for {
		inner := f.current()
		healthyStart := time.Now()
		for b := range inner.Batches() {
			select {
			case f.out <- b:
			case <-f.closed:
				inner.Close()
				return
			}
		}
		_, err := inner.Wait()
		if err == nil {
			return // clean end of stream
		}
		select {
		case <-f.closed:
			return
		default:
		}
		if ctx.Err() != nil {
			f.setErr(ctx.Err())
			return
		}
		// A long healthy stretch before this outage resets the backoff
		// schedule — an isolated blip should not pay a grown delay.
		f.opts.Backoff.Observe(time.Since(healthyStart))
		f.opts.Logf("federation: subscription to %s lost (%v); failing over", f.Addr(), err)
		f.closeCurMux()
		next, mx, nidx, cerr := f.connect(ctx, idx+1)
		if cerr != nil {
			f.setErr(fmt.Errorf("federation: failover exhausted: %w (stream lost: %v)", cerr, err))
			return
		}
		idx = nidx
		f.failovers.Add(1)
		metFailovers.Inc()
		f.setCur(next, f.addrs[nidx], mx)
		f.opts.Logf("federation: resumed %q on %s", f.sub.Durable, f.addrs[nidx])
	}
}

// connect tries addresses round-robin from start until a subscribe
// succeeds, backing off between failed attempts. In Mux mode the
// subscription rides a fresh multiplexed connection (returned so the
// failover loop can close it when the subscription dies).
func (f *FailoverSub) connect(ctx context.Context, start int) (*Subscription, *Mux, int, error) {
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		i := ((start % len(f.addrs)) + len(f.addrs)) % len(f.addrs)
		addr := f.addrs[i]
		metRedials.Inc()
		attemptStart := time.Now()
		var (
			sub *Subscription
			mux *Mux
			err error
		)
		if f.opts.Mux {
			mx, merr := DialMuxContext(ctx, addr, f.dialOpts)
			if merr == nil {
				s, serr := mx.Subscribe(f.sub)
				if serr == nil {
					sub, mux = s, mx
				} else {
					mx.Close()
					merr = serr
				}
			}
			err = merr
		} else {
			conn, derr := dialConn(ctx, addr, f.dialOpts)
			if derr == nil {
				s, serr := subscribeConnTimeout(conn, f.sub, f.dialOpts.HandshakeTimeout)
				if serr == nil {
					sub = s
				} else {
					derr = serr
				}
			}
			err = derr
		}
		// Each dial+subscribe attempt — first connects and failover
		// redials alike — records a span under the subscription's trace,
		// so an induced failover shows the redial inside the same trace
		// the stream's windows belong to.
		if f.sub.Trace.Valid() {
			trace.Default.Emit(wireToTrace(f.sub.Trace), "client.redial",
				attemptStart, time.Since(attemptStart), []trace.Attr{
					trace.String("addr", addr),
					trace.Int("attempt", int64(attempts+1)),
				}, err)
		}
		if err == nil {
			return sub, mux, i, nil
		}
		attempts++
		f.opts.Logf("federation: failover attempt %d at %s: %v", attempts, addr, err)
		if f.opts.MaxAttempts > 0 && attempts >= f.opts.MaxAttempts {
			return nil, nil, 0, fmt.Errorf("federation: %d connect attempts failed, last: %w", attempts, err)
		}
		start++
		if werr := f.opts.Backoff.Wait(ctx); werr != nil {
			return nil, nil, 0, werr
		}
	}
}
