// Package federation executes partitioned plans across multiple
// providers — the paper's "multi-server applications" goal. A
// Coordinator drives the fragment DAG over an abstract Transport (an
// in-process binding for tests and benchmarks, and a TCP binding for
// real servers) in one of two shipping modes:
//
//   - ModeDirect: a producing server pushes its fragment's result
//     straight to the consuming server (desideratum D4); the client sees
//     only plans and small acks.
//   - ModeRouted: every intermediate returns to the client, which
//     re-uploads it to the consumer — the middle-tier anti-pattern the
//     paper argues against, kept as the measured baseline.
//
// Every byte on every path is accounted in Metrics; the interoperation
// experiment (E4) reports exactly these counters.
package federation

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/planner"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// Mode selects how intermediates travel between providers.
type Mode int

// Shipping modes.
const (
	ModeDirect Mode = iota
	ModeRouted
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeDirect {
		return "direct"
	}
	return "routed"
}

// Metrics accounts for all traffic during one federated execution.
type Metrics struct {
	// Trace, when valid, is an INPUT: transports record a client span
	// under it for every exchange and propagate the span's context on
	// the wire, so server-side spans stitch into the caller's trace.
	Trace wire.TraceCtx

	// ClientBytesOut counts bytes the client (application tier) sent:
	// plans, and in routed mode re-uploaded intermediates.
	ClientBytesOut int64
	// ClientBytesIn counts bytes the client received: results, acks, and
	// in routed mode every intermediate.
	ClientBytesIn int64
	// IntermediateViaClient counts only intermediate table payloads that
	// crossed the application tier — exactly 0 in direct mode.
	IntermediateViaClient int64
	// PeerBytes counts bytes moved directly between servers.
	PeerBytes int64
	// RoundTrips counts client-initiated request/response exchanges.
	RoundTrips int
	// Fragments counts executed fragments.
	Fragments int
}

// Transport is a client-side handle to one provider's server.
type Transport interface {
	// ProviderName identifies the provider this transport reaches.
	ProviderName() string
	// Execute runs a plan and returns the result to the client.
	Execute(plan core.Node, m *Metrics) (*table.Table, error)
	// ExecuteTo runs a plan and pushes the result to the peer transport's
	// server under storeAs, without returning it to the client.
	ExecuteTo(plan core.Node, peer Transport, storeAs string, m *Metrics) error
	// Store uploads a table from the client.
	Store(name string, t *table.Table, m *Metrics) error
	// Drop removes a dataset (intermediate cleanup; best effort).
	Drop(name string, m *Metrics)
	// PeerAddr returns the address peers use to push to this server ("",
	// for in-process transports, means pass the handle itself).
	PeerAddr() string
}

// encodeForAccounting returns the wire encoding of a table, used to
// attribute intermediate bytes that crossed the client in routed mode.
func encodeForAccounting(t *table.Table) []byte { return wire.EncodeTable(t) }

// Coordinator executes fragment DAGs over a set of transports.
type Coordinator struct {
	transports map[string]Transport
}

// NewCoordinator builds a coordinator over the given transports.
func NewCoordinator(transports ...Transport) *Coordinator {
	m := make(map[string]Transport, len(transports))
	for _, t := range transports {
		m[t.ProviderName()] = t
	}
	return &Coordinator{transports: m}
}

// Run executes a partitioned plan in the given mode, returning the root
// fragment's result and the traffic metrics.
func (c *Coordinator) Run(pp *planner.PartitionedPlan, mode Mode) (*table.Table, *Metrics, error) {
	return c.RunTraced(pp, mode, wire.TraceCtx{})
}

// RunTraced is Run with a trace context: every fragment execution,
// intermediate store, and cleanup drop records a client span under tc
// and propagates it to the servers involved, so the whole partition
// fan-out appears in one trace.
func (c *Coordinator) RunTraced(pp *planner.PartitionedPlan, mode Mode, tc wire.TraceCtx) (*table.Table, *Metrics, error) {
	m := &Metrics{Trace: tc}

	// Each non-root fragment has exactly one consumer (the partitioner
	// builds a tree); map producer fragment ID to its destination.
	type dest struct {
		provider string
		storeAs  string
	}
	dests := map[int]dest{}
	for _, f := range pp.Fragments {
		for _, in := range f.Inputs {
			dests[in.FromFragment] = dest{provider: f.Provider, storeAs: in.StoreAs}
		}
	}

	// Track stored intermediates for cleanup.
	type stored struct {
		provider string
		name     string
	}
	var temps []stored
	defer func() {
		for _, s := range temps {
			if tr, ok := c.transports[s.provider]; ok {
				tr.Drop(s.name, m)
			}
		}
	}()

	root := pp.Root()
	var result *table.Table
	for _, f := range pp.Fragments {
		tr, ok := c.transports[f.Provider]
		if !ok {
			return nil, m, fmt.Errorf("federation: no transport for provider %q", f.Provider)
		}
		m.Fragments++
		if f == root {
			t, err := tr.Execute(f.Plan, m)
			if err != nil {
				return nil, m, fmt.Errorf("federation: root fragment on %s: %w", f.Provider, err)
			}
			result = t
			continue
		}
		d, ok := dests[f.ID]
		if !ok {
			return nil, m, fmt.Errorf("federation: fragment %d has no consumer", f.ID)
		}
		peer, ok := c.transports[d.provider]
		if !ok {
			return nil, m, fmt.Errorf("federation: no transport for provider %q", d.provider)
		}
		switch mode {
		case ModeDirect:
			if err := tr.ExecuteTo(f.Plan, peer, d.storeAs, m); err != nil {
				return nil, m, fmt.Errorf("federation: fragment %d on %s → %s: %w", f.ID, f.Provider, d.provider, err)
			}
		case ModeRouted:
			t, err := tr.Execute(f.Plan, m)
			if err != nil {
				return nil, m, fmt.Errorf("federation: fragment %d on %s: %w", f.ID, f.Provider, err)
			}
			m.IntermediateViaClient += int64(len(encodeForAccounting(t)))
			if err := peer.Store(d.storeAs, t, m); err != nil {
				return nil, m, fmt.Errorf("federation: store %s on %s: %w", d.storeAs, d.provider, err)
			}
		}
		temps = append(temps, stored{provider: d.provider, name: d.storeAs})
	}
	if result == nil {
		return nil, m, fmt.Errorf("federation: plan produced no root result")
	}
	return result, m, nil
}
