package federation

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff is a jittered exponential retry policy: each failure doubles
// (by Multiplier) the base delay up to Max, each success after a healthy
// period resets it. Jitter spreads simultaneous retriers (a fleet of
// subscribers failing over off the same dead primary) so they do not
// reconnect in lockstep. The zero value is not usable; use NewBackoff.
type Backoff struct {
	// Base is the first retry delay (default 50ms).
	Base time.Duration
	// Max caps the delay growth (default 5s).
	Max time.Duration
	// Multiplier scales the delay per consecutive failure (default 2).
	Multiplier float64
	// Jitter is the random fraction of the delay added on top, in
	// [0, Jitter); 0.2 means "up to 20% longer" (default 0.2).
	Jitter float64
	// HealthyAfter is how long a connection must survive for the next
	// failure to start from Base again rather than where the delay left
	// off (default 30s). Zero keeps the default; negative disables the
	// reset entirely.
	HealthyAfter time.Duration

	mu       sync.Mutex
	rng      *rand.Rand
	cur      time.Duration
	attempts int
}

// NewBackoff returns a policy with the given seed for deterministic
// jitter (tests) and defaults for every unset field.
func NewBackoff(seed int64) *Backoff {
	b := &Backoff{}
	b.rng = rand.New(rand.NewSource(seed))
	return b
}

func (b *Backoff) defaults() {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	} else if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.HealthyAfter == 0 {
		b.HealthyAfter = 30 * time.Second
	}
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
}

// Next returns the delay to wait before the next attempt and advances
// the policy: the first call after a reset returns ~Base, each further
// call multiplies up to Max (plus jitter; the cap applies before jitter,
// so the worst case is Max*(1+Jitter)).
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.defaults()
	if b.cur <= 0 {
		b.cur = b.Base
	}
	d := b.cur
	b.attempts++
	next := time.Duration(float64(b.cur) * b.Multiplier)
	if next > b.Max || next < b.cur { // < cur: overflow
		next = b.Max
	}
	b.cur = next
	if b.Jitter > 0 {
		d += time.Duration(b.rng.Float64() * b.Jitter * float64(d))
	}
	return d
}

// Attempts returns how many delays Next has handed out since the last
// reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempts
}

// Reset restarts the policy from Base (call after a confirmed-healthy
// connection).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.cur = 0
	b.attempts = 0
	b.mu.Unlock()
}

// Observe reports a connection that stayed up for alive before failing:
// a healthy period resets the policy, so the retry schedule reflects the
// current outage rather than one from an hour ago.
func (b *Backoff) Observe(alive time.Duration) {
	b.mu.Lock()
	b.defaults()
	healthy := b.HealthyAfter
	b.mu.Unlock()
	if healthy >= 0 && alive >= healthy {
		b.Reset()
	}
}

// Wait sleeps for Next()'s delay, honoring context cancellation: a
// canceled context returns its error immediately without consuming the
// remaining delay.
func (b *Backoff) Wait(ctx context.Context) error {
	d := b.Next()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
