package federation

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/server"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// ---------------------------------------------------------------------------
// Fixtures

func evSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64},
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "v", Kind: value.KindFloat64},
	)
}

// evTable generates n pseudo-random events with timestamps up to jitter
// out of order.
func evTable(seed int64, n int, jitter int64) *table.Table {
	r := rand.New(rand.NewSource(seed))
	b := table.NewBuilder(evSchema(), n)
	for i := 0; i < n; i++ {
		ts := int64(i) - r.Int63n(jitter+1)
		if ts < 0 {
			ts = 0
		}
		b.MustAppend(value.NewInt(ts), value.NewInt(r.Int63n(8)), value.NewFloat(float64(r.Intn(200))/8))
	}
	return b.Build()
}

// dimTable is the bounded enrichment relation: key → name.
func dimTable() *table.Table {
	sch := schema.New(
		schema.Attribute{Name: "dk", Kind: value.KindInt64},
		schema.Attribute{Name: "name", Kind: value.KindString},
	)
	b := table.NewBuilder(sch, 8)
	for i := int64(0); i < 8; i++ {
		b.MustAppend(value.NewInt(i), value.NewString(fmt.Sprintf("key-%d", i)))
	}
	return b.Build()
}

// pipelineKind names a differential scenario.
type pipelineKind struct {
	name     string
	lateness int64
	build    func(src stream.Source) *stream.Builder
}

func diffPipelines() []pipelineKind {
	agg := []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Column("v"), As: "sv"},
		{Func: core.AggCount, As: "n"},
		{Func: core.AggMax, Arg: expr.Column("v"), As: "mx"},
	}
	return []pipelineKind{
		{"tumbling", 8, func(src stream.Source) *stream.Builder {
			return stream.NewBuilder(src).WithBatchSize(16).WithLateness(8).
				Aggregate(core.StreamWindow{Kind: core.WindowTumbling, Size: 10, Slide: 10}, []string{"k"}, agg)
		}},
		{"sliding", 8, func(src stream.Source) *stream.Builder {
			return stream.NewBuilder(src).WithBatchSize(16).WithLateness(8).
				Aggregate(core.StreamWindow{Kind: core.WindowSliding, Size: 20, Slide: 5}, []string{"k"}, agg)
		}},
		{"count", 0, func(src stream.Source) *stream.Builder {
			return stream.NewBuilder(src).WithBatchSize(16).
				Aggregate(core.StreamWindow{Kind: core.WindowCount, Size: 9}, []string{"k"}, agg)
		}},
		{"join", 8, func(src stream.Source) *stream.Builder {
			return stream.NewBuilder(src).WithBatchSize(16).WithLateness(8).
				Filter(expr.Gt(expr.Column("v"), expr.CFloat(1))).
				JoinTable(dimTable(), core.JoinInner, []string{"k"}, []string{"dk"}, nil).
				Aggregate(core.StreamWindow{Kind: core.WindowTumbling, Size: 10, Slide: 10}, []string{"name"}, agg)
		}},
	}
}

// sortedRows renders a table as sorted canonical row encodings — the
// "byte-identical sorted results" the differential suite compares.
func sortedRows(t *testing.T, tab *table.Table) []string {
	t.Helper()
	rows := make([]string, tab.NumRows())
	var buf []byte
	for i := 0; i < tab.NumRows(); i++ {
		buf = buf[:0]
		for c := 0; c < tab.NumCols(); c++ {
			buf = value.AppendKey(buf, tab.Value(i, c))
		}
		rows[i] = string(buf)
	}
	sort.Strings(rows)
	return rows
}

// inProcOracle runs the pipeline in-process over a replay, optionally
// filtered to one partition, and returns the collected output.
func inProcOracle(t *testing.T, events *table.Table, pk pipelineKind, partIdx, partCnt uint32) *table.Table {
	t.Helper()
	var src stream.Source = stream.NewReplay(events, "ts")
	if partCnt > 1 {
		var err error
		src, err = stream.NewPartition(src, "k", partIdx, partCnt)
		if err != nil {
			t.Fatal(err)
		}
	}
	sp, err := pk.build(stream.NewReplay(events, "ts")).Spec()
	if err != nil {
		t.Fatal(err)
	}
	p, err := stream.FromSpec(src, sp)
	if err != nil {
		t.Fatal(err)
	}
	sink := stream.NewCollect(p.OutputSchema())
	if _, err := p.Run(context.Background(), sink); err != nil {
		t.Fatal(err)
	}
	out, err := sink.Table()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// oracleRows: the partitioned differential oracle — the union of
// per-partition in-process runs. With one partition this is exactly the
// plain in-process pipeline. For time-based windows the union equals the
// global pipeline whenever no event is dropped (window bounds are
// event-time, partition-invariant); count windows are defined
// per-partition, and the oracle mirrors that.
func oracleRows(t *testing.T, events *table.Table, pk pipelineKind, parts uint32) []string {
	t.Helper()
	var all []string
	for i := uint32(0); i < parts; i++ {
		all = append(all, sortedRows(t, inProcOracle(t, events, pk, i, parts))...)
	}
	sort.Strings(all)
	return all
}

// subscribeDataset opens one dataset-mode subscription per transport.
func subscribeDataset(t *testing.T, trs []StreamTransport, pk pipelineKind, events *table.Table, credit uint32) []*Subscription {
	t.Helper()
	sp, err := pk.build(stream.NewReplay(events, "ts")).Spec()
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(len(trs))
	subs := make([]*Subscription, n)
	for i, tr := range trs {
		sub := wire.StreamSub{
			SourceKind: wire.StreamSrcDataset,
			Dataset:    "events", TimeCol: "ts",
			Spec:   sp,
			Credit: credit,
		}
		if n > 1 {
			sub.PartKey, sub.PartIdx, sub.PartCnt = "k", uint32(i), n
		}
		s, err := tr.Subscribe(sub)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	return subs
}

// mergedRows drains the subscriptions through the watermark-ordered
// merge and returns sorted canonical rows.
func mergedRows(t *testing.T, subs []*Subscription, outSch schema.Schema) []string {
	t.Helper()
	collect := stream.NewCollect(outSch)
	var err error
	if len(subs) == 1 {
		for b := range subs[0].Batches() {
			if b.Table != nil {
				if e := collect.Emit(b.Table); e != nil {
					t.Fatal(e)
				}
			}
		}
		if _, err = subs[0].Wait(); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err = MergeWindows(subs, collect.Emit); err != nil {
			t.Fatal(err)
		}
	}
	out, err := collect.Table()
	if err != nil {
		t.Fatal(err)
	}
	return sortedRows(t, out)
}

// inprocTransports builds n in-process providers all hosting the events
// dataset.
func inprocTransports(t *testing.T, events *table.Table, n int) []StreamTransport {
	t.Helper()
	trs := make([]StreamTransport, n)
	for i := 0; i < n; i++ {
		eng := relational.New(fmt.Sprintf("p%d", i))
		if err := eng.Store("events", events); err != nil {
			t.Fatal(err)
		}
		trs[i] = NewInProc(eng)
	}
	return trs
}

// tcpTransports starts n TCP servers all hosting the events dataset.
func tcpTransports(t *testing.T, events *table.Table, n int) []StreamTransport {
	t.Helper()
	trs := make([]StreamTransport, n)
	for i := 0; i < n; i++ {
		eng := relational.New(fmt.Sprintf("s%d", i))
		if err := eng.Store("events", events); err != nil {
			t.Fatal(err)
		}
		srv, err := server.Serve(eng, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.Logf = func(string, ...any) {}
		t.Cleanup(srv.Close)
		tr, err := DialTCP(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		trs[i] = tr
	}
	return trs
}

// ---------------------------------------------------------------------------
// Differential suite

// TestDifferentialFederatedStreams: every window kind and the enrichment
// join produce byte-identical sorted results in-process and through
// federated subscriptions — 1 and 2 providers, InProc and TCP
// transports, late events included (jitter reaches the allowed
// lateness bound, so some events are dropped on both sides alike).
func TestDifferentialFederatedStreams(t *testing.T) {
	events := evTable(99, 400, 8)
	transports := map[string]func(*testing.T, *table.Table, int) []StreamTransport{
		"inproc": inprocTransports,
		"tcp":    tcpTransports,
	}
	for _, pk := range diffPipelines() {
		for trName, mk := range transports {
			for _, parts := range []int{1, 2} {
				name := fmt.Sprintf("%s/%s/%dpart", pk.name, trName, parts)
				t.Run(name, func(t *testing.T) {
					want := oracleRows(t, events, pk, uint32(parts))
					trs := mk(t, events, parts)
					subs := subscribeDataset(t, trs, pk, events, 64)
					got := mergedRows(t, subs, subs[0].OutputSchema())
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("federated rows differ from oracle: got %d rows, want %d", len(got), len(want))
					}
				})
			}
		}
	}
}

// TestDifferentialLateDrops: events later than the allowed lateness are
// dropped identically in-process and federated (single partition, where
// watermark semantics match the global pipeline exactly).
func TestDifferentialLateDrops(t *testing.T) {
	// Jitter far beyond lateness: drops must happen.
	events := evTable(7, 300, 40)
	pk := diffPipelines()[0] // tumbling, lateness 8
	want := oracleRows(t, events, pk, 1)
	trs := inprocTransports(t, events, 1)
	subs := subscribeDataset(t, trs, pk, events, 64)
	got := mergedRows(t, subs, subs[0].OutputSchema())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("late-event handling diverged: got %d rows, want %d", len(got), len(want))
	}
	stats, err := subs[0].Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Late == 0 {
		t.Fatal("scenario produced no late drops; jitter too small to prove anything")
	}
}

// ---------------------------------------------------------------------------
// Reconnect with state handoff

// TestReconnectStateHandoffTCP: a TCP subscriber detaches mid-stream,
// receives the pipeline's window state, and resumes on a DIFFERENT
// server (migration). The combined output is byte-identical to the
// uninterrupted in-process run.
func TestReconnectStateHandoffTCP(t *testing.T) {
	events := evTable(21, 400, 6)
	pk := diffPipelines()[0] // tumbling windows
	want := sortedRows(t, inProcOracle(t, events, pk, 0, 1))

	trs := tcpTransports(t, events, 2)
	sp, err := pk.build(stream.NewReplay(events, "ts")).Spec()
	if err != nil {
		t.Fatal(err)
	}
	sub := wire.StreamSub{
		SourceKind: wire.StreamSrcDataset,
		Dataset:    "events", TimeCol: "ts",
		Spec:   sp,
		Credit: 2, // force the server to pace itself so the detach lands mid-stream
	}
	s1, err := trs[0].Subscribe(sub)
	if err != nil {
		t.Fatal(err)
	}
	collect := stream.NewCollect(s1.OutputSchema())
	got := 0
	for b := range s1.Batches() {
		if b.Table == nil {
			continue
		}
		if err := collect.Emit(b.Table); err != nil {
			t.Fatal(err)
		}
		got++
		if got == 3 {
			break
		}
	}
	state, pending, err := s1.Detach()
	if err != nil {
		t.Fatal(err)
	}
	// Batches delivered-but-unconsumed at detach time belong to the
	// subscriber, not the state.
	for _, b := range pending {
		if b.Table != nil {
			if err := collect.Emit(b.Table); err != nil {
				t.Fatal(err)
			}
		}
	}
	if state.Events == 0 || state.Events >= int64(events.NumRows()) {
		t.Fatalf("detach landed at the stream edge (events=%d); not a mid-stream handoff", state.Events)
	}
	// Resume on the OTHER server.
	sub.Resume = state
	sub.Credit = 64
	s2, err := trs[1].Subscribe(sub)
	if err != nil {
		t.Fatal(err)
	}
	for b := range s2.Batches() {
		if b.Table == nil {
			continue
		}
		if err := collect.Emit(b.Table); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s2.Wait(); err != nil {
		t.Fatal(err)
	}
	out, err := collect.Table()
	if err != nil {
		t.Fatal(err)
	}
	if gotRows := sortedRows(t, out); !reflect.DeepEqual(gotRows, want) {
		t.Fatalf("migrated stream differs from oracle: got %d rows, want %d", len(gotRows), len(want))
	}
}

// ---------------------------------------------------------------------------
// Push mode via the federation client

// TestPushSubscription: publishing batches through the Subscription
// client produces the oracle's results.
func TestPushSubscription(t *testing.T) {
	events := evTable(5, 200, 4)
	pk := diffPipelines()[1] // sliding
	want := sortedRows(t, inProcOracle(t, events, pk, 0, 1))
	eng := relational.New("push")
	tr := NewInProc(eng)
	sp, err := pk.build(stream.NewReplay(events, "ts")).Spec()
	if err != nil {
		t.Fatal(err)
	}
	s, err := tr.Subscribe(wire.StreamSub{
		SourceKind: wire.StreamSrcPush,
		TimeCol:    "ts", SrcSchema: evSchema(),
		Spec: sp, Credit: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for lo := 0; lo < events.NumRows(); lo += 32 {
			hi := lo + 32
			if hi > events.NumRows() {
				hi = events.NumRows()
			}
			if err := s.Publish(events.Slice(lo, hi)); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
		if err := s.EndInput(); err != nil {
			t.Errorf("end input: %v", err)
		}
	}()
	collect := stream.NewCollect(s.OutputSchema())
	for b := range s.Batches() {
		if b.Table != nil {
			if err := collect.Emit(b.Table); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	out, err := collect.Table()
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(t, out); !reflect.DeepEqual(got, want) {
		t.Fatalf("push-mode rows differ: got %d want %d", len(got), len(want))
	}
}

// ---------------------------------------------------------------------------
// Hello handshake leak

// TestDialTCPNoLeakOnBadHello: a server that answers the hello with
// garbage must leave no open client connection behind — the server side
// observes EOF promptly after the failed dial.
func TestDialTCPNoLeakOnBadHello(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sawEOF := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			sawEOF <- err
			return
		}
		defer conn.Close()
		if _, _, _, err := wire.ReadFrame(conn); err != nil { // the hello
			sawEOF <- err
			return
		}
		// Reply with the wrong frame type.
		if _, err := wire.WriteFrame(conn, wire.MsgResult, []byte{1, 2, 3}); err != nil {
			sawEOF <- err
			return
		}
		// If the client closed its side, this read sees EOF.
		_, _, _, err = wire.ReadFrame(conn)
		sawEOF <- err
	}()

	if _, err := DialTCP(ln.Addr().String()); err == nil {
		t.Fatal("dial succeeded against a broken hello")
	}
	select {
	case err := <-sawEOF:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("server saw %v, want EOF proving the client closed its socket", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client connection leaked: server never saw EOF")
	}
}

// ---------------------------------------------------------------------------
// Race/soak

// TestSoakPartitionedConcurrent exercises the concurrency surface under
// -race: partitioned fan-out across 3 in-proc transports with a
// mid-window detach + resume on one partition, while a push-mode
// subscription with 4 concurrent producers runs on the side. The merged
// outputs must still match the oracles exactly.
func TestSoakPartitionedConcurrent(t *testing.T) {
	events := evTable(31, 900, 6)
	pk := diffPipelines()[0] // tumbling
	const parts = 3
	want := oracleRows(t, events, pk, parts)
	trs := inprocTransports(t, events, parts)
	sp, err := pk.build(stream.NewReplay(events, "ts")).Spec()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var all []string

	// Partitions 0 and 1: drain straight through.
	for i := 0; i < 2; i++ {
		sub := wire.StreamSub{
			SourceKind: wire.StreamSrcDataset, Dataset: "events", TimeCol: "ts",
			Spec: sp, Credit: 8,
			PartKey: "k", PartIdx: uint32(i), PartCnt: parts,
		}
		s, err := trs[i].Subscribe(sub)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Subscription) {
			defer wg.Done()
			for b := range s.Batches() {
				if b.Table == nil {
					continue
				}
				rows := sortedRowsNoT(b.Table)
				mu.Lock()
				all = append(all, rows...)
				mu.Unlock()
			}
			if _, err := s.Wait(); err != nil {
				t.Errorf("partition drain: %v", err)
			}
		}(s)
	}

	// Partition 2: read a little, detach mid-window, resume, drain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub := wire.StreamSub{
			SourceKind: wire.StreamSrcDataset, Dataset: "events", TimeCol: "ts",
			Spec: sp, Credit: 2,
			PartKey: "k", PartIdx: 2, PartCnt: parts,
		}
		s, err := trs[2].Subscribe(sub)
		if err != nil {
			t.Error(err)
			return
		}
		got := 0
		for b := range s.Batches() {
			if b.Table == nil {
				continue
			}
			rows := sortedRowsNoT(b.Table)
			mu.Lock()
			all = append(all, rows...)
			mu.Unlock()
			if got++; got == 2 {
				break
			}
		}
		state, pending, err := s.Detach()
		if err != nil {
			t.Errorf("detach: %v", err)
			return
		}
		for _, b := range pending {
			if b.Table != nil {
				rows := sortedRowsNoT(b.Table)
				mu.Lock()
				all = append(all, rows...)
				mu.Unlock()
			}
		}
		sub.Resume = state
		sub.Credit = 16
		s2, err := trs[2].Subscribe(sub)
		if err != nil {
			t.Error(err)
			return
		}
		for b := range s2.Batches() {
			if b.Table == nil {
				continue
			}
			rows := sortedRowsNoT(b.Table)
			mu.Lock()
			all = append(all, rows...)
			mu.Unlock()
		}
		if _, err := s2.Wait(); err != nil {
			t.Errorf("resumed drain: %v", err)
		}
	}()

	// Side stream: push mode with 4 concurrent producers publishing
	// disjoint slices (Publish is safe for concurrent use).
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := trs[0].Subscribe(wire.StreamSub{
			SourceKind: wire.StreamSrcPush, TimeCol: "ts", SrcSchema: evSchema(),
			Spec: sp, Credit: 16,
		})
		if err != nil {
			t.Error(err)
			return
		}
		var pwg sync.WaitGroup
		for w := 0; w < 4; w++ {
			pwg.Add(1)
			go func(w int) {
				defer pwg.Done()
				for lo := w * 64; lo < events.NumRows(); lo += 4 * 64 {
					hi := lo + 64
					if hi > events.NumRows() {
						hi = events.NumRows()
					}
					if err := s.Publish(events.Slice(lo, hi)); err != nil {
						t.Errorf("producer %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range s.Batches() {
			}
		}()
		pwg.Wait()
		if err := s.EndInput(); err != nil {
			t.Errorf("end input: %v", err)
		}
		<-drained
		if _, err := s.Wait(); err != nil {
			t.Errorf("push soak: %v", err)
		}
	}()

	wg.Wait()
	mu.Lock()
	sort.Strings(all)
	got := all
	mu.Unlock()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("soak output differs from oracle: got %d rows, want %d", len(got), len(want))
	}
}

// sortedRowsNoT is sortedRows without the testing.T (goroutine use).
func sortedRowsNoT(tab *table.Table) []string {
	rows := make([]string, tab.NumRows())
	var buf []byte
	for i := 0; i < tab.NumRows(); i++ {
		buf = buf[:0]
		for c := 0; c < tab.NumCols(); c++ {
			buf = value.AppendKey(buf, tab.Value(i, c))
		}
		rows[i] = string(buf)
	}
	sort.Strings(rows)
	return rows
}
