package federation

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"nexus/internal/wire"
)

// ErrTimeout is the sentinel every federation timeout matches:
// errors.Is(err, ErrTimeout) holds for a connect that exceeded its
// timeout and for a handshake read that hit its deadline alike.
var ErrTimeout = errors.New("federation: timeout")

// TimeoutError is the typed error for a dial or handshake that ran out
// of time. It matches ErrTimeout under errors.Is and reports
// Timeout() == true, so callers using the net.Error convention see it
// too.
type TimeoutError struct {
	Op      string        // "dial", "hello", "subscribe"
	Addr    string        // peer address
	Elapsed time.Duration // the budget that ran out
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("federation: %s %s timed out after %v", e.Op, e.Addr, e.Elapsed)
}

// Timeout implements the net.Error convention.
func (e *TimeoutError) Timeout() bool { return true }

// Is makes errors.Is(err, ErrTimeout) match.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// DialOpts configures the network budgets of DialTCPContext, DialMux
// and SubscribeContext. The zero value gets the defaults.
type DialOpts struct {
	// ConnectTimeout bounds the TCP connect (default 5s).
	ConnectTimeout time.Duration
	// HandshakeTimeout bounds the request/reply exchange that follows
	// the connect — hello ack, subscribe ack (default: ConnectTimeout).
	HandshakeTimeout time.Duration
	// RequestTimeout bounds each request/reply exchange after the
	// handshake — Execute, Store, Append, Drop (default 60s; negative
	// disables). A server that accepts a request and then goes silent
	// fails the call with a *TimeoutError instead of hanging it
	// forever; the connection is poisoned afterwards, since a late
	// reply would desynchronize the framing.
	RequestTimeout time.Duration
	// Tenant is the admission-control token sent in the hello exchange.
	// Servers with per-tenant quotas account this connection's
	// subscriptions, appends and scans against it; empty means the
	// anonymous tenant.
	Tenant string
	// Trace, when valid, is propagated on the hello exchange: the dial
	// records a client span under it and the server parents its
	// handshake span there, so connection setup shows up inside the
	// caller's trace. The zero value costs nothing.
	Trace wire.TraceCtx
}

// DefaultConnectTimeout bounds a federation dial when the caller did
// not choose one: a dead or blackholed peer fails fast instead of
// hanging the coordinator on the kernel's connect timeout.
const DefaultConnectTimeout = 5 * time.Second

// DefaultRequestTimeout bounds a post-handshake request/reply exchange
// when the caller did not choose one. Generous — a federated Execute
// may scan a large dataset — but finite, so a hung server cannot stall
// a coordinator forever.
const DefaultRequestTimeout = 60 * time.Second

func (o DialOpts) withDefaults() DialOpts {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = DefaultConnectTimeout
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = o.ConnectTimeout
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	return o
}

// dialConn connects with the configured budget, classifying timeouts.
func dialConn(ctx context.Context, addr string, o DialOpts) (net.Conn, error) {
	d := net.Dialer{Timeout: o.ConnectTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if isTimeout(err) {
			return nil, &TimeoutError{Op: "dial", Addr: addr, Elapsed: o.ConnectTimeout}
		}
		return nil, fmt.Errorf("federation: dial %s: %w", addr, err)
	}
	return conn, nil
}

// isTimeout reports whether err is a deadline/timeout failure.
func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}
