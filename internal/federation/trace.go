package federation

import (
	"nexus/internal/obs/trace"
	"nexus/internal/wire"
)

// Client-side half of distributed tracing. A caller that wants a
// request traced hands the federation layer a wire.TraceCtx — on
// DialOpts for the hello handshake, on Metrics for coordinator-driven
// execution, on StreamSub for subscriptions. The transport wraps each
// exchange in a client span recorded into the local tracer and sends
// the client span's context on the wire, so server-side spans parent
// under the client operation that caused them and the whole exchange
// stitches into one trace id. A zero TraceCtx costs nothing.

// wireToTrace converts the wire trace context to the tracer's.
func wireToTrace(tc wire.TraceCtx) trace.Context {
	return trace.Context{TraceID: trace.TraceID(tc.TraceID), SpanID: trace.SpanID(tc.SpanID)}
}

// traceToWire converts a tracer context to its wire form.
func traceToWire(c trace.Context) wire.TraceCtx {
	return wire.TraceCtx{TraceID: [16]byte(c.TraceID), SpanID: uint64(c.SpanID)}
}

// TraceID renders the execution's trace id as lowercase hex ("" when
// untraced) — the value to paste into /debug/traces?trace= on any
// node the execution touched.
func (m *Metrics) TraceID() string {
	if m == nil || !m.Trace.Valid() {
		return ""
	}
	return trace.TraceID(m.Trace.TraceID).String()
}

// metricsTrace returns the trace context riding on a Metrics, zero
// when the caller passed none.
func metricsTrace(m *Metrics) wire.TraceCtx {
	if m == nil {
		return wire.TraceCtx{}
	}
	return m.Trace
}

// clientSpan starts a client span under tc (nil when tc carries no
// trace) and returns the wire context the request should carry so the
// server's spans parent under this one.
func clientSpan(tc wire.TraceCtx, name string, attrs ...trace.Attr) (*trace.Span, wire.TraceCtx) {
	if !tc.Valid() {
		return nil, wire.TraceCtx{}
	}
	sp := trace.Default.StartChild(wireToTrace(tc), name)
	sp.Set(attrs...)
	return sp, traceToWire(sp.Context())
}
