package federation

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"nexus/internal/core"
	"nexus/internal/obs"
	"nexus/internal/obs/trace"
	"nexus/internal/provider"
	"nexus/internal/server"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// Mux is the multiplexed front-door transport: N concurrent
// subscriptions and request/response calls share ONE TCP connection,
// demultiplexed by the per-sub wire IDs the protocol already carries.
// This is what "millions of users" needs — thousands of subscriptions
// per server must not mean thousands of sockets.
//
// Demultiplexing rules:
//
//   - Stream frames (batch, watermark, window state, credit, end) carry
//     a subscription ID and are routed to that subscription's inbox.
//     Each inbox is sized to the stream's whole credit window, so the
//     demux loop NEVER blocks on a slow consumer — per-stream credit
//     stays independent and one stalled subscriber cannot stall its
//     siblings. An inbox that overflows on a must-deliver frame means
//     the server overran the credit protocol, which poisons the mux.
//   - Watermark-only progress frames are droppable (the next batch
//     carries the mark), so they are discarded instead of overflowing a
//     busy inbox.
//   - Request/response replies (result, ack) answer calls in FIFO
//     order. This is sound because the server's dispatch loop is
//     sequential per connection: replies come back in request order.
//     Errors and refusals are routed by ID first (live stream, pending
//     subscribe, then the oldest call when the ID matches or is 0).
//
// Calls are bounded by DialOpts.RequestTimeout. A timed-out call
// poisons the whole mux: FIFO correlation cannot skip a late reply
// without crediting it to the next caller.
type Mux struct {
	name  string
	addr  string
	opts  DialOpts
	hello *wire.HelloInfo

	conn net.Conn

	// wmu serializes frame writes. Call registration happens under it,
	// so the FIFO call queue order always matches the order requests
	// hit the wire.
	wmu sync.Mutex

	mu          sync.Mutex
	failErr     error
	nextID      uint64
	calls       []*muxCall
	pendingSubs map[uint64]chan muxReply
	subs        map[uint64]chan subFrame

	done chan struct{} // demux loop exited; failErr final
}

var (
	_ Transport       = (*Mux)(nil)
	_ StreamTransport = (*Mux)(nil)
)

// muxWMSlack is the number of inbox slots watermark-only progress
// frames may occupy. Watermarks are not credit-bound (a replay sends
// one per micro-batch even when the consumer reads nothing), so they
// must never take the slots reserved for credit-bound frames — at most
// this many sit buffered; the rest are dropped and counted, and the
// next batch carries the mark anyway.
const muxWMSlack = 4

var (
	metMuxConns = obs.Default.Gauge("nexus_mux_connections",
		"Multiplexed client connections currently open.")
	metMuxSubs = obs.Default.Gauge("nexus_mux_subscriptions",
		"Subscriptions currently multiplexed over shared connections.")
	metMuxCalls = obs.Default.Counter("nexus_mux_calls_total",
		"Request/response calls sent over multiplexed connections.")
	metMuxDroppedWM = obs.Default.Counter("nexus_mux_dropped_watermarks_total",
		"Watermark-only progress frames dropped because a subscription's inbox was full (the next batch carries the mark).")
	metMuxRefusals = obs.Default.Counter("nexus_mux_refusals_total",
		"Admission-control refusals received over multiplexed connections.")
)

// muxCall is one in-flight request/response exchange.
type muxCall struct {
	op string
	id uint64 // the request's wire ID; 0 for store/append/drop
	ch chan muxReply
}

// muxReply is a demultiplexed answer to a call or subscribe handshake.
type muxReply struct {
	typ     wire.MsgType
	payload []byte
	err     error
}

// DialMux connects a multiplexed transport to a server: one hello
// exchange (carrying opts.Tenant), then any number of concurrent
// subscriptions and calls over the single connection.
func DialMux(addr string, opts DialOpts) (*Mux, error) {
	return DialMuxContext(context.Background(), addr, opts)
}

// DialMuxContext is DialMux with a caller-supplied context. The connect
// and hello exchange run under the DialOpts budgets, surfacing
// *TimeoutError like DialTCPContext; a mid-handshake failure closes the
// connection before returning.
func DialMuxContext(ctx context.Context, addr string, opts DialOpts) (mx *Mux, err error) {
	opts = opts.withDefaults()
	sp, htc := clientSpan(opts.Trace, "client.dial_mux", trace.String("addr", addr))
	defer func() { sp.End(err) }()
	conn, err := dialConn(ctx, addr, opts)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			conn.Close()
		}
	}()
	_ = conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	if _, err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHelloTrace(opts.Tenant, htc)); err != nil {
		if isTimeout(err) {
			return nil, &TimeoutError{Op: "hello", Addr: addr, Elapsed: opts.HandshakeTimeout}
		}
		return nil, err
	}
	typ, payload, _, err := wire.ReadFrame(conn)
	if err != nil {
		if isTimeout(err) {
			return nil, &TimeoutError{Op: "hello", Addr: addr, Elapsed: opts.HandshakeTimeout}
		}
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	if typ != wire.MsgHelloAck {
		return nil, fmt.Errorf("federation: server replied %v to hello", typ)
	}
	h, err := wire.DecodeHelloAck(payload)
	if err != nil {
		return nil, err
	}
	m := &Mux{
		name:        h.Name,
		addr:        addr,
		opts:        opts,
		hello:       &h,
		conn:        conn,
		pendingSubs: map[uint64]chan muxReply{},
		subs:        map[uint64]chan subFrame{},
		done:        make(chan struct{}),
	}
	ok = true
	metMuxConns.Inc()
	go m.readLoop()
	return m, nil
}

// allocID hands out wire IDs. Calls and subscriptions draw from ONE
// counter, so an error frame's ID is unambiguous across both spaces.
func (m *Mux) allocID() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return m.nextID
}

// readLoop is the single demultiplexer: every inbound frame is routed
// without blocking, so no stream or call can stall another.
func (m *Mux) readLoop() {
	defer metMuxConns.Dec()
	defer close(m.done)
	for {
		typ, payload, _, err := wire.ReadFrame(m.conn)
		if err != nil {
			m.failAll(fmt.Errorf("federation: mux read: %w", err))
			return
		}
		if rerr := m.route(typ, payload); rerr != nil {
			m.failAll(rerr)
			return
		}
	}
}

// peekID reads the leading u64 ID every routable payload starts with.
func peekID(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// route dispatches one inbound frame. A non-nil error is a protocol
// violation that poisons the mux.
func (m *Mux) route(typ wire.MsgType, payload []byte) error {
	switch typ {
	case wire.MsgStreamBatch, wire.MsgWindowState, wire.MsgStreamEnd, wire.MsgCredit, wire.MsgWatermark:
		id := peekID(payload)
		m.mu.Lock()
		defer m.mu.Unlock()
		inbox, ok := m.subs[id]
		if !ok {
			// The stream just ended or was cancelled locally; late
			// frames for it are expected and harmless.
			return nil
		}
		if typ == wire.MsgWatermark {
			// Watermark-only progress is NOT credit-bound — a replay can
			// send one per micro-batch while the consumer reads nothing —
			// so watermarks may only use the inbox's dedicated slack,
			// never the slots reserved for credit-bound frames. route is
			// the sole writer, so len is an upper bound on occupancy and
			// the send below cannot block.
			if len(inbox) >= muxWMSlack {
				metMuxDroppedWM.Inc()
				return nil
			}
			inbox <- subFrame{typ: typ, payload: payload}
			return nil
		}
		select {
		case inbox <- subFrame{typ: typ, payload: payload}:
			return nil
		default:
		}
		// Batches are bounded by the credit window, publish credits by
		// the publish window, and the terminal frame is one — the inbox
		// is sized for all of them plus the watermark slack, so a full
		// inbox on a must-deliver frame means the server broke the
		// credit protocol.
		return fmt.Errorf("federation: mux: subscription %d inbox overflow on %v (server overran credit)", id, typ)
	case wire.MsgSubAck:
		id := peekID(payload)
		m.mu.Lock()
		ch, ok := m.pendingSubs[id]
		if ok {
			delete(m.pendingSubs, id)
		}
		m.mu.Unlock()
		if !ok {
			return fmt.Errorf("federation: mux: subscribe ack for unknown subscription %d", id)
		}
		ch <- muxReply{typ: typ, payload: payload}
		return nil
	case wire.MsgError, wire.MsgRefused:
		if typ == wire.MsgRefused {
			metMuxRefusals.Inc()
		}
		id := peekID(payload)
		m.mu.Lock()
		if id != 0 {
			// A still-pending subscribe wins over the inbox (both are
			// registered before the request is written): the error IS the
			// handshake answer — e.g. an admission refusal.
			if ch, ok := m.pendingSubs[id]; ok {
				delete(m.pendingSubs, id)
				m.mu.Unlock()
				ch <- muxReply{typ: typ, payload: payload}
				return nil
			}
			if inbox, ok := m.subs[id]; ok {
				// Terminal error for a live stream: must-deliver, and the
				// inbox's terminal slot is reserved for exactly this.
				select {
				case inbox <- subFrame{typ: typ, payload: payload}:
					m.mu.Unlock()
					return nil
				default:
					m.mu.Unlock()
					return fmt.Errorf("federation: mux: subscription %d inbox overflow on %v", id, typ)
				}
			}
		}
		// A reply to the oldest call — but only when the ID agrees
		// (execute errors echo the call's ID; store/append/drop errors
		// carry 0). Anything else is an error for a stream that already
		// ended locally: drop it.
		if len(m.calls) > 0 && (id == 0 || id == m.calls[0].id) {
			c := m.calls[0]
			m.calls = m.calls[1:]
			m.mu.Unlock()
			c.ch <- muxReply{typ: typ, payload: payload}
			return nil
		}
		m.mu.Unlock()
		return nil
	default:
		// Result, ack, and every other request/response reply: answer
		// the oldest in-flight call (the server replies in FIFO order).
		m.mu.Lock()
		if len(m.calls) == 0 {
			m.mu.Unlock()
			return fmt.Errorf("federation: mux: unexpected %v with no call in flight", typ)
		}
		c := m.calls[0]
		m.calls = m.calls[1:]
		m.mu.Unlock()
		c.ch <- muxReply{typ: typ, payload: payload}
		return nil
	}
}

// failAll poisons the mux: every in-flight call and pending subscribe
// gets err, every live subscription's inbox is closed (their readers
// surface err via subSeverErr), and the connection is closed. The first
// error wins; later calls are no-ops for state already cleared.
func (m *Mux) failAll(err error) {
	m.mu.Lock()
	if m.failErr == nil {
		m.failErr = err
	}
	calls := m.calls
	m.calls = nil
	pend := m.pendingSubs
	m.pendingSubs = map[uint64]chan muxReply{}
	subs := m.subs
	m.subs = map[uint64]chan subFrame{}
	for _, c := range calls {
		c.ch <- muxReply{err: err}
	}
	for _, ch := range pend {
		ch <- muxReply{err: err}
	}
	for _, inbox := range subs {
		close(inbox)
	}
	m.mu.Unlock()
	m.conn.Close()
}

// severSub cuts one subscription loose from the demultiplexer (its
// reader sees a closed inbox). Idempotent.
func (m *Mux) severSub(id uint64) {
	m.mu.Lock()
	if inbox, ok := m.subs[id]; ok {
		delete(m.subs, id)
		close(inbox)
	}
	m.mu.Unlock()
}

// forgetSub is the per-subscription reader's cleanup: deregister and
// account. Runs exactly once per started subscription.
func (m *Mux) forgetSub(id uint64) {
	m.severSub(id)
	metMuxSubs.Dec()
}

// subSeverErr is the error a subscription reader reports when its inbox
// closed under it: the mux's terminal error, or a local close.
func (m *Mux) subSeverErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failErr != nil {
		return m.failErr
	}
	return fmt.Errorf("federation: subscription closed")
}

// Err returns the mux's terminal error, if any.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failErr
}

// Done is closed once the mux's demultiplexer has exited (Err final).
func (m *Mux) Done() <-chan struct{} { return m.done }

// Close shuts the mux down: all streams and calls fail promptly.
func (m *Mux) Close() {
	m.failAll(fmt.Errorf("federation: mux %s closed", m.name))
}

// writeRaw sends one frame that expects no direct reply (credits,
// publishes, stream closes) under the shared write lock.
func (m *Mux) writeRaw(t wire.MsgType, payload []byte) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.mu.Lock()
	ferr := m.failErr
	m.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	if _, err := wire.WriteFrame(m.conn, t, payload); err != nil {
		return err
	}
	return nil
}

// call runs one request/response exchange: register in the FIFO queue
// and write under one lock hold (so queue order is wire order), then
// wait for the demux loop to deliver the answer, bounded by
// RequestTimeout.
func (m *Mux) call(op string, id uint64, msg wire.MsgType, payload []byte, met *Metrics) (wire.MsgType, []byte, error) {
	c := &muxCall{op: op, id: id, ch: make(chan muxReply, 1)}
	m.wmu.Lock()
	m.mu.Lock()
	if m.failErr != nil {
		err := m.failErr
		m.mu.Unlock()
		m.wmu.Unlock()
		return 0, nil, err
	}
	m.calls = append(m.calls, c)
	m.mu.Unlock()
	out, werr := wire.WriteFrame(m.conn, msg, payload)
	m.wmu.Unlock()
	if werr != nil {
		// A partial frame corrupts the connection's framing for every
		// stream sharing it; fail everything.
		m.failAll(fmt.Errorf("federation: mux write: %w", werr))
		return 0, nil, werr
	}
	metMuxCalls.Inc()
	var timeout <-chan time.Time
	if m.opts.RequestTimeout > 0 {
		tm := time.NewTimer(m.opts.RequestTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case r := <-c.ch:
		if r.err != nil {
			return 0, nil, r.err
		}
		if met != nil {
			met.ClientBytesOut += int64(out)
			met.ClientBytesIn += int64(5 + len(r.payload))
			met.RoundTrips++
		}
		return r.typ, r.payload, nil
	case <-timeout:
		terr := &TimeoutError{Op: op, Addr: m.addr, Elapsed: m.opts.RequestTimeout}
		// FIFO correlation cannot abandon one reply: a late answer
		// would be credited to the next call. Poison the whole mux.
		m.failAll(terr)
		return 0, nil, terr
	}
}

// ProviderName implements Transport.
func (m *Mux) ProviderName() string { return m.name }

// PeerAddr implements Transport.
func (m *Mux) PeerAddr() string { return m.addr }

// Hello returns the server's hello info (capabilities, datasets).
func (m *Mux) Hello() wire.HelloInfo { return *m.hello }

// Capabilities reconstructs the remote provider's capability set.
func (m *Mux) Capabilities() provider.Capabilities {
	return provider.FromBits(m.hello.CapBits, m.hello.Kernels)
}

// Execute implements Transport.
func (m *Mux) Execute(plan core.Node, met *Metrics) (tab *table.Table, err error) {
	id := m.allocID()
	sp, tc := clientSpan(metricsTrace(met), "client.execute", trace.String("provider", m.name))
	defer func() { sp.End(err) }()
	typ, reply, err := m.call("execute", id, wire.MsgExecute, wire.EncodeExecuteTrace(id, plan, tc), met)
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.MsgResult:
		_, tab, err := wire.DecodeResult(reply)
		return tab, err
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(reply)
		return nil, fmt.Errorf("federation: server %s: %s", m.name, msg)
	case wire.MsgRefused:
		return nil, decodeRefused("execute", reply)
	}
	return nil, fmt.Errorf("federation: server %s replied %v to execute", m.name, typ)
}

// ExecuteTo implements Transport.
func (m *Mux) ExecuteTo(plan core.Node, peer Transport, storeAs string, met *Metrics) (err error) {
	peerAddr := peer.PeerAddr()
	if peerAddr == "" {
		return fmt.Errorf("federation: peer %s has no dialable address", peer.ProviderName())
	}
	id := m.allocID()
	sp, _ := clientSpan(metricsTrace(met), "client.executeto",
		trace.String("provider", m.name), trace.String("peer", peer.ProviderName()))
	defer func() { sp.End(err) }()
	typ, reply, err := m.call("executeto", id, wire.MsgExecuteTo, wire.EncodeExecuteTo(id, peerAddr, storeAs, plan), met)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgAck:
		_, _, shipped, err := wire.DecodeAck(reply)
		if err != nil {
			return err
		}
		if met != nil {
			met.PeerBytes += shipped
		}
		return nil
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(reply)
		return fmt.Errorf("federation: server %s: %s", m.name, msg)
	case wire.MsgRefused:
		return decodeRefused("executeto", reply)
	}
	return fmt.Errorf("federation: server %s replied %v to executeto", m.name, typ)
}

// Store implements Transport.
func (m *Mux) Store(name string, tab *table.Table, met *Metrics) (err error) {
	sp, tc := clientSpan(metricsTrace(met), "client.store",
		trace.String("provider", m.name), trace.String("dataset", name))
	defer func() { sp.End(err) }()
	typ, reply, err := m.call("store", 0, wire.MsgStore, wire.EncodeStoreTrace(name, tab, tc), met)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgAck:
		return nil
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(reply)
		return fmt.Errorf("federation: server %s: %s", m.name, msg)
	case wire.MsgRefused:
		return decodeRefused("store", reply)
	}
	return fmt.Errorf("federation: server %s replied %v to store", m.name, typ)
}

// Drop implements Transport (best effort).
func (m *Mux) Drop(name string, met *Metrics) {
	_, _, _ = m.call("drop", 0, wire.MsgDrop, wire.EncodeDrop(name), met)
}

// Append adds rows to a remote dataset without replacing it.
func (m *Mux) Append(name string, tab *table.Table, met *Metrics) (err error) {
	sp, tc := clientSpan(metricsTrace(met), "client.append",
		trace.String("provider", m.name), trace.String("dataset", name))
	defer func() { sp.End(err) }()
	typ, reply, err := m.call("append", 0, wire.MsgAppend, wire.EncodeStoreTrace(name, tab, tc), met)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgAck:
		return nil
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(reply)
		return fmt.Errorf("federation: server %s: %s", m.name, msg)
	case wire.MsgRefused:
		return decodeRefused("append", reply)
	}
	return fmt.Errorf("federation: server %s replied %v to append", m.name, typ)
}

// Subscribe implements StreamTransport: the subscription shares this
// mux's connection with every sibling. Its inbox reserves the whole
// credit window plus the publish window and the terminal frame for
// credit-bound frames, plus a bounded slack for droppable watermarks,
// so the demux loop can always route its frames without blocking —
// one stalled consumer stalls only its own stream.
func (m *Mux) Subscribe(sub wire.StreamSub) (_ *Subscription, err error) {
	sub.ID = m.allocID()
	if sub.Credit == 0 {
		sub.Credit = DefaultCredit
	}
	// A traced subscription gets a client span that lives as long as
	// the stream; the server parents its subscription spans under it.
	// The span ends with the stream (reader teardown) — or here, with
	// the error, when the handshake never completes.
	sp, tc := clientSpan(sub.Trace, "client.subscribe", trace.String("provider", m.name))
	sub.Trace = tc
	defer func() {
		if err != nil {
			sp.End(err)
		}
	}()
	inbox := make(chan subFrame, int(sub.Credit)+server.PublishWindow+2+muxWMSlack)
	ack := make(chan muxReply, 1)
	m.wmu.Lock()
	m.mu.Lock()
	if m.failErr != nil {
		err := m.failErr
		m.mu.Unlock()
		m.wmu.Unlock()
		return nil, err
	}
	m.pendingSubs[sub.ID] = ack
	m.subs[sub.ID] = inbox
	m.mu.Unlock()
	_, werr := wire.WriteFrame(m.conn, wire.MsgSubscribeStream, wire.EncodeSubscribeStream(sub))
	m.wmu.Unlock()
	if werr != nil {
		m.failAll(fmt.Errorf("federation: mux write: %w", werr))
		return nil, werr
	}
	var timeout <-chan time.Time
	if m.opts.HandshakeTimeout > 0 {
		tm := time.NewTimer(m.opts.HandshakeTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case r := <-ack:
		if r.err != nil {
			return nil, r.err
		}
		switch r.typ {
		case wire.MsgSubAck:
			ackID, outSch, err := wire.DecodeSubAck(r.payload)
			if err != nil {
				m.severSub(sub.ID)
				return nil, err
			}
			if ackID != sub.ID {
				m.severSub(sub.ID)
				return nil, fmt.Errorf("federation: subscribe ack for id %d, want %d", ackID, sub.ID)
			}
			s := &Subscription{
				mx:        m,
				inbox:     inbox,
				id:        sub.ID,
				outSch:    outSch,
				sp:        sp,
				out:       make(chan SubBatch, 1),
				done:      make(chan struct{}),
				closed:    make(chan struct{}),
				pubCredit: server.PublishWindow,
			}
			s.pubCond = sync.NewCond(&s.mu)
			metMuxSubs.Inc()
			go s.readLoop()
			return s, nil
		case wire.MsgError:
			m.severSub(sub.ID)
			_, msg, _ := wire.DecodeError(r.payload)
			return nil, fmt.Errorf("federation: subscribe: %s", msg)
		case wire.MsgRefused:
			m.severSub(sub.ID)
			return nil, decodeRefused("subscribe", r.payload)
		default:
			rerr := fmt.Errorf("federation: server replied %v to subscribe", r.typ)
			m.failAll(rerr)
			return nil, rerr
		}
	case <-timeout:
		// The server never acknowledged; if its pipeline starts later it
		// would stall on credit with nobody consuming. Poison the mux
		// rather than leak a half-open stream.
		terr := &TimeoutError{Op: "subscribe", Addr: m.addr, Elapsed: m.opts.HandshakeTimeout}
		m.failAll(terr)
		return nil, terr
	}
}
