package federation

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"nexus/internal/core"
	"nexus/internal/obs/trace"
	"nexus/internal/provider"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// TCP is the socket transport: a client-side connection to one
// nexus server (internal/server). One request is in flight per
// connection at a time, guarded by a mutex — the coordinator executes
// fragments sequentially anyway.
type TCP struct {
	name string
	addr string
	opts DialOpts

	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
	hello  *wire.HelloInfo
}

var _ Transport = (*TCP)(nil)

// DialTCP connects to a server and performs the hello exchange, learning
// the provider's name, capabilities and datasets, under the default
// connect/handshake timeouts (see DialOpts).
func DialTCP(addr string) (*TCP, error) {
	return DialTCPContext(context.Background(), addr, DialOpts{})
}

// DialTCPContext is DialTCP with a caller-supplied context and network
// budgets: the connect respects both ctx and opts.ConnectTimeout, and
// the hello exchange runs under opts.HandshakeTimeout, so a peer that
// accepts the connection but never answers cannot hang the caller. A
// budget that runs out surfaces as a *TimeoutError (matches ErrTimeout).
// A failure anywhere in the handshake closes the connection before
// returning — the deferred cleanup covers every exit path, so a
// mid-handshake error (short reply, wrong frame, corrupt payload)
// cannot leak the socket.
func DialTCPContext(ctx context.Context, addr string, opts DialOpts) (tp *TCP, err error) {
	opts = opts.withDefaults()
	sp, htc := clientSpan(opts.Trace, "client.dial", trace.String("addr", addr))
	defer func() { sp.End(err) }()
	conn, err := dialConn(ctx, addr, opts)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			conn.Close()
		}
	}()
	t := &TCP{addr: addr, conn: conn, opts: opts}
	_ = conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	if _, err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHelloTrace(opts.Tenant, htc)); err != nil {
		if isTimeout(err) {
			return nil, &TimeoutError{Op: "hello", Addr: addr, Elapsed: opts.HandshakeTimeout}
		}
		return nil, err
	}
	typ, payload, _, err := wire.ReadFrame(conn)
	if err != nil {
		if isTimeout(err) {
			return nil, &TimeoutError{Op: "hello", Addr: addr, Elapsed: opts.HandshakeTimeout}
		}
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	if typ != wire.MsgHelloAck {
		return nil, fmt.Errorf("federation: server replied %v to hello", typ)
	}
	h, err := wire.DecodeHelloAck(payload)
	if err != nil {
		return nil, err
	}
	t.name = h.Name
	t.hello = &h
	ok = true
	return t, nil
}

// Close shuts the connection.
func (t *TCP) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn != nil {
		t.conn.Close()
		t.conn = nil
	}
}

// ProviderName implements Transport.
func (t *TCP) ProviderName() string { return t.name }

// PeerAddr implements Transport.
func (t *TCP) PeerAddr() string { return t.addr }

// Hello returns the server's hello info (capabilities, datasets).
func (t *TCP) Hello() wire.HelloInfo { return *t.hello }

// Capabilities reconstructs the remote provider's capability set.
func (t *TCP) Capabilities() provider.Capabilities {
	return provider.FromBits(t.hello.CapBits, t.hello.Kernels)
}

// call sends one frame and reads one reply, accounting bytes. Each
// exchange runs under the transport's RequestTimeout: a server that
// accepted the connection but stopped answering fails the call with a
// typed *TimeoutError instead of hanging it forever. A timed-out (or
// otherwise failed) exchange poisons the connection — the reply may
// still arrive later and would desynchronize the framing, so the
// socket is closed and every later call fails fast.
func (t *TCP) call(op string, msg wire.MsgType, payload []byte, m *Metrics) (wire.MsgType, []byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		return 0, nil, fmt.Errorf("federation: transport %s closed", t.name)
	}
	if t.opts.RequestTimeout > 0 {
		_ = t.conn.SetDeadline(time.Now().Add(t.opts.RequestTimeout))
	}
	fail := func(err error) (wire.MsgType, []byte, error) {
		t.conn.Close()
		t.conn = nil
		if isTimeout(err) {
			return 0, nil, &TimeoutError{Op: op, Addr: t.addr, Elapsed: t.opts.RequestTimeout}
		}
		return 0, nil, err
	}
	out, err := wire.WriteFrame(t.conn, msg, payload)
	if err != nil {
		return fail(err)
	}
	typ, reply, in, err := wire.ReadFrame(t.conn)
	if err != nil {
		return fail(err)
	}
	if t.opts.RequestTimeout > 0 {
		_ = t.conn.SetDeadline(time.Time{})
	}
	if m != nil {
		m.ClientBytesOut += int64(out)
		m.ClientBytesIn += int64(in)
		m.RoundTrips++
	}
	return typ, reply, nil
}

// Execute implements Transport.
func (t *TCP) Execute(plan core.Node, m *Metrics) (tab *table.Table, err error) {
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.mu.Unlock()
	sp, tc := clientSpan(metricsTrace(m), "client.execute", trace.String("provider", t.name))
	defer func() { sp.End(err) }()
	typ, reply, err := t.call("execute", wire.MsgExecute, wire.EncodeExecuteTrace(id, plan, tc), m)
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.MsgResult:
		_, tab, err := wire.DecodeResult(reply)
		return tab, err
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(reply)
		return nil, fmt.Errorf("federation: server %s: %s", t.name, msg)
	case wire.MsgRefused:
		return nil, decodeRefused("execute", reply)
	}
	return nil, fmt.Errorf("federation: server %s replied %v to execute", t.name, typ)
}

// ExecuteTo implements Transport: the remote server pushes the result to
// the peer's address itself.
func (t *TCP) ExecuteTo(plan core.Node, peer Transport, storeAs string, m *Metrics) (err error) {
	peerAddr := peer.PeerAddr()
	if peerAddr == "" {
		return fmt.Errorf("federation: peer %s has no dialable address", peer.ProviderName())
	}
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.mu.Unlock()
	sp, _ := clientSpan(metricsTrace(m), "client.executeto",
		trace.String("provider", t.name), trace.String("peer", peer.ProviderName()))
	defer func() { sp.End(err) }()
	typ, reply, err := t.call("executeto", wire.MsgExecuteTo, wire.EncodeExecuteTo(id, peerAddr, storeAs, plan), m)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgAck:
		_, _, shipped, err := wire.DecodeAck(reply)
		if err != nil {
			return err
		}
		if m != nil {
			m.PeerBytes += shipped
		}
		return nil
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(reply)
		return fmt.Errorf("federation: server %s: %s", t.name, msg)
	case wire.MsgRefused:
		return decodeRefused("executeto", reply)
	}
	return fmt.Errorf("federation: server %s replied %v to executeto", t.name, typ)
}

// Store implements Transport.
func (t *TCP) Store(name string, tab *table.Table, m *Metrics) (err error) {
	sp, tc := clientSpan(metricsTrace(m), "client.store",
		trace.String("provider", t.name), trace.String("dataset", name))
	defer func() { sp.End(err) }()
	typ, reply, err := t.call("store", wire.MsgStore, wire.EncodeStoreTrace(name, tab, tc), m)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgAck:
		return nil
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(reply)
		return fmt.Errorf("federation: server %s: %s", t.name, msg)
	case wire.MsgRefused:
		return decodeRefused("store", reply)
	}
	return fmt.Errorf("federation: server %s replied %v to store", t.name, typ)
}

// Drop implements Transport (best effort).
func (t *TCP) Drop(name string, m *Metrics) {
	_, _, _ = t.call("drop", wire.MsgDrop, wire.EncodeDrop(name), m)
}

// Append adds rows to a remote dataset without replacing it. The ack
// arrives only after the server committed the rows — on a durable
// server, after the WAL fsync.
func (t *TCP) Append(name string, tab *table.Table, m *Metrics) (err error) {
	sp, tc := clientSpan(metricsTrace(m), "client.append",
		trace.String("provider", t.name), trace.String("dataset", name))
	defer func() { sp.End(err) }()
	typ, reply, err := t.call("append", wire.MsgAppend, wire.EncodeStoreTrace(name, tab, tc), m)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgAck:
		return nil
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(reply)
		return fmt.Errorf("federation: server %s: %s", t.name, msg)
	case wire.MsgRefused:
		return decodeRefused("append", reply)
	}
	return fmt.Errorf("federation: server %s replied %v to append", t.name, typ)
}
