package replication

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"

	"nexus/internal/core"
	"nexus/internal/errfs"
	"nexus/internal/expr"
	"nexus/internal/netfault"
	"nexus/internal/obs"
	"nexus/internal/schema"
	"nexus/internal/server"
	"nexus/internal/storage"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

func eventSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64},
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "v", Kind: value.KindInt64},
	)
}

func eventsTable(n int) *table.Table {
	b := table.NewBuilder(eventSchema(), n)
	for i := 0; i < n; i++ {
		b.MustAppend(value.NewInt(int64(i)), value.NewInt(int64(i%4)), value.NewInt(int64(i)*3))
	}
	return b.Build()
}

func windowedSpec(t *testing.T) stream.Spec {
	t.Helper()
	v, err := core.NewVar(stream.BatchVar, eventSchema())
	if err != nil {
		t.Fatal(err)
	}
	return stream.Spec{
		Pre:      v,
		Windowed: true,
		Win:      core.StreamWindow{Kind: core.WindowTumbling, Size: 100, Slide: 100},
		Keys:     []string{"k"},
		Aggs: []core.AggSpec{
			{Func: core.AggSum, Arg: expr.Column("v"), As: "s"},
			{Func: core.AggCount, As: "n"},
		},
		BatchSize: 50,
	}
}

// oracleRun executes the spec in-process over a replay of the events —
// the uninterrupted reference a failed-over stream must match.
func oracleRun(t *testing.T, events *table.Table, sp stream.Spec) *table.Table {
	t.Helper()
	p, err := stream.FromSpec(stream.NewReplay(events, "ts"), sp)
	if err != nil {
		t.Fatal(err)
	}
	sink := stream.NewCollect(p.OutputSchema())
	if _, err := p.Run(context.Background(), sink); err != nil {
		t.Fatal(err)
	}
	out, err := sink.Table()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func rowString(tb *table.Table, r int) string {
	var b strings.Builder
	for c := 0; c < tb.NumCols(); c++ {
		fmt.Fprintf(&b, "%v|", tb.Value(r, c))
	}
	return b.String()
}

// dedupeWindows keys every row by (window_start, k), keeping the last —
// delivery across a failover is at-least-once, so replayed windows
// overwrite their earlier copies.
func dedupeWindows(t *testing.T, tabs []*table.Table) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, tb := range tabs {
		if tb == nil {
			continue
		}
		ws := tb.Schema().IndexOf(stream.WindowStartCol)
		kc := tb.Schema().IndexOf("k")
		if ws < 0 || kc < 0 {
			t.Fatalf("window table lacks key columns: %v", tb.Schema())
		}
		for r := 0; r < tb.NumRows(); r++ {
			key := fmt.Sprintf("%v|%v", tb.Value(r, ws), tb.Value(r, kc))
			out[key] = rowString(tb, r)
		}
	}
	return out
}

func openEngine(t *testing.T, name, dir string) *storage.Engine {
	t.Helper()
	eng, err := storage.OpenEngine(name, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func serveEngine(t *testing.T, eng *storage.Engine) *server.Server {
	t.Helper()
	srv, err := server.ServeWithCheckpoints(eng, "127.0.0.1:0", eng.Backing(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	t.Cleanup(srv.Close)
	return srv
}

func datasetRows(t *testing.T, eng *storage.Engine, name string) *table.Table {
	t.Helper()
	tb, ok, err := eng.Backing().Dataset(name)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("dataset %q missing", name)
	}
	return tb
}

// TestReplicatorSyncs: a follower converges to the primary's catalog
// byte-for-byte — initial sync, then an incremental delta — and refuses
// local writes while replicating.
func TestReplicatorSyncs(t *testing.T) {
	primary := openEngine(t, "p", t.TempDir())
	if err := primary.Store("events", eventsTable(1000)); err != nil {
		t.Fatal(err)
	}
	srv := serveEngine(t, primary)

	follower := openEngine(t, "p", t.TempDir())
	follower.SetReplica(true)
	rep := New(follower, Config{Primary: srv.Addr(), Logf: t.Logf})
	defer rep.Stop()

	if err := rep.SyncOnce(); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	if got, want := follower.CurrentGen(), primary.CurrentGen(); got != want {
		t.Fatalf("follower gen %d, primary gen %d", got, want)
	}
	want := datasetRows(t, primary, "events")
	got := datasetRows(t, follower, "events")
	if wire.EncodeTable(got) == nil || string(wire.EncodeTable(got)) != string(wire.EncodeTable(want)) {
		t.Fatal("replicated dataset differs from primary")
	}

	// Incremental delta: new dataset, new generation, only new segments
	// fetched.
	if err := primary.Store("more", eventsTable(200)); err != nil {
		t.Fatal(err)
	}
	fetched := metSegsFetched.Value()
	if err := rep.SyncOnce(); err != nil {
		t.Fatalf("delta sync: %v", err)
	}
	if follower.CurrentGen() != primary.CurrentGen() {
		t.Fatalf("follower gen %d after delta, primary %d", follower.CurrentGen(), primary.CurrentGen())
	}
	if metSegsFetched.Value() == fetched {
		t.Fatal("delta sync fetched no segments")
	}
	got2 := datasetRows(t, follower, "more")
	if got2.NumRows() != 200 {
		t.Fatalf("delta dataset has %d rows, want 200", got2.NumRows())
	}

	// Replica mode refuses local mutations with the typed error.
	if err := follower.Store("x", eventsTable(1)); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("replica Store returned %v, want ErrReplicaReadOnly", err)
	}
	st := rep.Status()
	if st.Err != "" || st.Gen != st.PrimaryGen || st.LastSyncUnixNano == 0 {
		t.Fatalf("unexpected status after sync: %+v", st)
	}
	if err := rep.Health(); err != nil {
		t.Fatalf("healthy replicator reports %v", err)
	}
}

// chaosSeed returns the fault-schedule seed: NEXUS_CHAOS_SEED if set
// (CI's randomized smoke), else the fixed default. It is always logged,
// so a failing run can be replayed exactly.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := def
	if env := os.Getenv("NEXUS_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("NEXUS_CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (rerun with NEXUS_CHAOS_SEED=%d)", seed, seed)
	return seed
}

// TestReplicatorConvergesUnderNetworkFaults: with a seeded schedule
// cutting ~30%% of replication-link writes mid-frame, the follower
// still converges — every torn sync leaves the previous generation
// live and the next round resumes idempotently.
func TestReplicatorConvergesUnderNetworkFaults(t *testing.T) {
	primary := openEngine(t, "p", t.TempDir())
	for i := 0; i < 4; i++ {
		if err := primary.Store(fmt.Sprintf("d%d", i), eventsTable(300)); err != nil {
			t.Fatal(err)
		}
		if err := primary.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	srv := serveEngine(t, primary)

	faults := netfault.NewFaults(chaosSeed(t, 1))
	faults.DropWrites(0.3, true)

	follower := openEngine(t, "p", t.TempDir())
	follower.SetReplica(true)
	rep := New(follower, Config{
		Primary: srv.Addr(),
		Dial:    faults.Dialer(nil),
	})
	defer rep.Stop()

	converged := false
	for round := 0; round < 200; round++ {
		if err := rep.SyncOnce(); err != nil {
			continue
		}
		if follower.CurrentGen() == primary.CurrentGen() {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("follower never converged under faults (gen %d vs %d, %d cuts)",
			follower.CurrentGen(), primary.CurrentGen(), faults.Cuts.Load())
	}
	if faults.Cuts.Load() == 0 {
		t.Fatal("fault schedule injected no cuts — the test exercised nothing")
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("d%d", i)
		if string(wire.EncodeTable(datasetRows(t, follower, name))) != string(wire.EncodeTable(datasetRows(t, primary, name))) {
			t.Fatalf("dataset %s differs after faulted sync", name)
		}
	}
}

// TestFollowerFsyncFailureDegradesPrimary: failing the follower's fsyncs
// makes its sync rounds fail; the primary's monitor sees the sick
// status and degrades /healthz to 503 while the primary itself keeps
// serving queries; clearing the fault re-syncs and /healthz recovers.
func TestFollowerFsyncFailureDegradesPrimary(t *testing.T) {
	primary := openEngine(t, "p", t.TempDir())
	if err := primary.Store("events", eventsTable(500)); err != nil {
		t.Fatal(err)
	}
	primarySrv := serveEngine(t, primary)

	followerDir := t.TempDir()
	follower := openEngine(t, "p", followerDir)
	follower.SetReplica(true)
	rep := New(follower, Config{Primary: primarySrv.Addr(), Logf: t.Logf})
	defer rep.Stop()
	followerSrv := serveEngine(t, follower)
	followerSrv.SetReplStatus(rep.Status)
	if err := rep.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor([]string{followerSrv.Addr()}, Config{Logf: t.Logf})
	defer mon.Stop()
	mon.ProbeAll()
	if err := mon.Health(); err != nil {
		t.Fatalf("healthy replica reported sick: %v", err)
	}

	// The primary's /healthz carries the replicas check.
	bound, stopObs, err := obs.Serve("127.0.0.1:0", obs.Default, map[string]obs.HealthCheck{"replicas": mon.Health})
	if err != nil {
		t.Fatal(err)
	}
	defer stopObs()
	healthz := func() int {
		resp, err := http.Get("http://" + bound + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := healthz(); code != http.StatusOK {
		t.Fatalf("healthz %d before faults", code)
	}

	// Break the follower's storage fsyncs, advance the primary, and let
	// a sync round fail.
	faults := errfs.NewFaults(0)
	faults.FailSync(fmt.Errorf("injected: disk gone"))
	remove := errfs.Install(followerDir, faults)
	defer remove()
	if err := primary.Store("more", eventsTable(100)); err != nil {
		t.Fatal(err)
	}
	if err := rep.SyncOnce(); err == nil {
		t.Fatal("sync succeeded with failing fsyncs")
	}
	mon.ProbeAll()
	if err := mon.Health(); err == nil {
		t.Fatal("monitor missed the sick follower")
	}
	if code := healthz(); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with sick replica, want 503", code)
	}

	// Degraded, not down: the primary still answers queries.
	sc, err := core.NewScan("events", eventSchema())
	if err != nil {
		t.Fatal(err)
	}
	res, err := primary.Execute(sc)
	if err != nil || res.NumRows() != 500 {
		t.Fatalf("primary stopped serving while degraded: %v (%d rows)", err, res.NumRows())
	}

	// Heal: clear the fault, re-sync, re-probe.
	faults.FailSync(nil)
	if err := rep.SyncOnce(); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
	if follower.CurrentGen() != primary.CurrentGen() {
		t.Fatalf("follower gen %d after heal, primary %d", follower.CurrentGen(), primary.CurrentGen())
	}
	mon.ProbeAll()
	if err := mon.Health(); err != nil {
		t.Fatalf("monitor still sick after heal: %v", err)
	}
	if code := healthz(); code != http.StatusOK {
		t.Fatalf("healthz %d after heal, want 200", code)
	}
	if faults.SyncFaults.Load() == 0 {
		t.Fatal("no fsync faults were injected — the test exercised nothing")
	}
}
