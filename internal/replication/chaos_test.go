package replication

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"nexus/internal/federation"
	"nexus/internal/server"
	"nexus/internal/storage"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// TestChaosPrimaryHelper is the child process: a durable primary on an
// ephemeral port, checkpointing hosted subscriptions at every batch,
// serving replication to any follower that asks. Runs until killed.
func TestChaosPrimaryHelper(t *testing.T) {
	dir := os.Getenv("NEXUS_REPL_PRIMARY_DIR")
	if dir == "" {
		t.Skip("chaos primary helper (only runs re-executed)")
	}
	eng, err := storage.OpenEngine("p", dir)
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	srv, err := server.ServeWithCheckpoints(eng, "127.0.0.1:0", eng.Backing(), 0)
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	srv.Logf = func(string, ...any) {}
	fmt.Println("ADDR", srv.Addr())
	select {} // run until killed
}

// spawnPrimary re-executes the test binary as a durable primary and
// returns its address and a SIGKILL function.
func spawnPrimary(t *testing.T, dir string) (addr string, kill func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestChaosPrimaryHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "NEXUS_REPL_PRIMARY_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ERR") {
			cmd.Process.Kill()
			t.Fatalf("primary helper: %s", line)
		}
		if strings.HasPrefix(line, "ADDR ") {
			addr = strings.TrimSpace(strings.TrimPrefix(line, "ADDR "))
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		t.Fatal("primary helper printed no address")
	}
	go func() {
		for sc.Scan() {
		}
	}()
	var once sync.Once
	return addr, func() {
		once.Do(func() {
			cmd.Process.Kill() // SIGKILL: no shutdown path runs
			cmd.Wait()
		})
	}
}

// TestSIGKILLPrimaryFailover is the headline chaos scenario: a real
// primary process is SIGKILLed while a durable windowed subscription is
// mid-stream; the failover client redials the follower, which restores
// the stream from the replicated checkpoint, and after deduping the
// at-least-once overlap the delivered windows are byte-identical to an
// uninterrupted run.
func TestSIGKILLPrimaryFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	primaryAddr, kill := spawnPrimary(t, t.TempDir())
	defer kill()

	events := eventsTable(5000)
	tcp, err := federation.DialTCP(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tcp.Store("events", events, nil); err != nil {
		t.Fatal(err)
	}
	tcp.Close()

	// Local follower: replica engine + continuous replicator + a server
	// for failed-over subscribers. The dataset is fully replicated before
	// the stream starts, so the chaos outcome is deterministic.
	follower := openEngine(t, "p", t.TempDir())
	follower.SetReplica(true)
	rep := New(follower, Config{
		Primary:  primaryAddr,
		Interval: 25 * time.Millisecond,
	})
	rep.Start()
	defer rep.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := rep.Status()
		if st.Err == "" && st.Gen > 0 && st.Gen == st.PrimaryGen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	followerSrv := serveEngine(t, follower)
	followerSrv.SetReplStatus(rep.Status)

	// Subscribe with failover across {primary, follower}; small credit
	// and a slow consumer keep the stream far from finished at the kill.
	b := federation.NewBackoff(1)
	b.Base, b.Max = 10*time.Millisecond, 100*time.Millisecond
	fo, err := federation.SubscribeFailover(context.Background(),
		[]string{primaryAddr, followerSrv.Addr()},
		wire.StreamSub{
			SourceKind: wire.StreamSrcDataset,
			Dataset:    "events", TimeCol: "ts",
			Spec: windowedSpec(t), Durable: "job", Credit: 2,
		},
		federation.FailoverOpts{Backoff: b, Logf: t.Logf},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()

	var tabs []*table.Table
	batches := 0
	for sb := range fo.Batches() {
		if sb.Table == nil {
			continue
		}
		tabs = append(tabs, sb.Table)
		batches++
		if batches == 3 {
			kill() // SIGKILL the primary mid-stream
		}
		if batches >= 3 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := fo.Err(); err != nil {
		t.Fatalf("stream failed terminally: %v", err)
	}
	if fo.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", fo.Failovers())
	}
	if fo.Addr() != followerSrv.Addr() {
		t.Fatalf("stream finished on %s, want the follower %s", fo.Addr(), followerSrv.Addr())
	}

	got := dedupeWindows(t, tabs)
	want := dedupeWindows(t, []*table.Table{oracleRun(t, events, windowedSpec(t))})
	if len(got) != len(want) {
		t.Fatalf("recovered %d distinct windows, uninterrupted run has %d", len(got), len(want))
	}
	for k, w := range want {
		switch g, ok := got[k]; {
		case !ok:
			t.Fatalf("window %s lost across the SIGKILL", k)
		case g != w:
			t.Fatalf("window %s differs: got %s want %s", k, g, w)
		}
	}
}
