package replication

import "nexus/internal/obs"

// Replication metrics on the process-wide registry. The gauges make the
// one number operators page on — how far behind is the follower —
// directly scrapeable on both sides of the link.
var (
	// Follower side.
	metFollowerGen = obs.Default.Gauge("nexus_repl_follower_gen",
		"Manifest generation currently applied on this follower.")
	metPrimaryGen = obs.Default.Gauge("nexus_repl_primary_gen",
		"Primary's manifest generation as of the last sync round.")
	metLag = obs.Default.Gauge("nexus_repl_lag_generations",
		"Generations this follower is behind its primary (primary - follower).")
	metLastSync = obs.Default.Gauge("nexus_repl_last_sync_timestamp_seconds",
		"Unix time of the last successful sync round.")
	metRounds = obs.Default.CounterVec("nexus_repl_sync_rounds_total",
		"Sync rounds by result.", "result")
	metSegsFetched = obs.Default.Counter("nexus_repl_segments_fetched_total",
		"Segment files fetched from the primary.")
	metFetchBytes = obs.Default.Counter("nexus_repl_fetch_bytes_total",
		"Segment bytes fetched from the primary.")

	// Primary side (monitor).
	metProbes = obs.Default.CounterVec("nexus_repl_probes_total",
		"Follower status probes by result.", "result")
	metReplicaUp = obs.Default.GaugeVec("nexus_repl_replica_up",
		"1 while the follower answers probes with a clean sync status, else 0.", "replica")
	metReplicaLag = obs.Default.GaugeVec("nexus_repl_replica_lag_generations",
		"Follower's self-reported generation lag, by replica.", "replica")
)
