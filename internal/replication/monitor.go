package replication

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"nexus/internal/wire"
)

// ReplicaState is one follower's condition as last probed by the
// primary's monitor.
type ReplicaState struct {
	Addr string
	// Status is the follower's self-reported sync state (zero when the
	// probe failed before a reply).
	Status wire.ReplStatus
	// ProbeErr is the probe failure ("" when the follower answered).
	ProbeErr string
	// LastOK is when the follower last answered a probe with a clean
	// status (zero if never).
	LastOK time.Time
}

// healthy reports whether the follower is reachable and syncing.
func (s ReplicaState) healthy() bool {
	return s.ProbeErr == "" && s.Status.Err == ""
}

// Monitor is the primary-side watchdog: it probes each configured
// follower's main port for its replication status and folds the result
// into a health check. A sick follower degrades the primary's /healthz
// to 503 — the primary keeps serving; the signal is for operators and
// load balancers — and recovers it when the follower returns.
type Monitor struct {
	replicas []string
	cfg      Config

	mu     sync.Mutex
	states map[string]ReplicaState

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewMonitor builds a monitor probing the given follower addresses.
// Config.Primary is unused here; Interval is the probe cadence.
func NewMonitor(replicas []string, cfg Config) *Monitor {
	m := &Monitor{
		replicas: append([]string(nil), replicas...),
		cfg:      cfg.withDefaults(),
		states:   map[string]ReplicaState{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, addr := range m.replicas {
		m.states[addr] = ReplicaState{Addr: addr, ProbeErr: "not probed yet"}
	}
	return m
}

// Start launches the background probe loop.
func (m *Monitor) Start() {
	m.startOnce.Do(func() { go m.loop() })
}

// Stop ends the loop. Safe to call without Start.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	select {
	case <-m.done:
	default:
		m.startOnce.Do(func() { close(m.done) })
	}
	<-m.done
}

func (m *Monitor) loop() {
	defer close(m.done)
	for {
		m.ProbeAll()
		select {
		case <-m.stop:
			return
		case <-time.After(m.cfg.Interval):
		}
	}
}

// ProbeAll probes every follower once and updates the states.
func (m *Monitor) ProbeAll() {
	for _, addr := range m.replicas {
		st, err := m.probe(addr)
		now := time.Now()
		m.mu.Lock()
		cur := m.states[addr]
		cur.Addr = addr
		if err != nil {
			cur.ProbeErr = err.Error()
			cur.Status = wire.ReplStatus{}
			metProbes.With("error").Inc()
		} else {
			cur.ProbeErr = ""
			cur.Status = st
			if st.Err == "" {
				cur.LastOK = now
			}
			metProbes.With("ok").Inc()
		}
		m.states[addr] = cur
		m.mu.Unlock()
		if err != nil || st.Err != "" {
			metReplicaUp.With(addr).Set(0)
		} else {
			metReplicaUp.With(addr).Set(1)
		}
		metReplicaLag.With(addr).Set(int64(st.PrimaryGen) - int64(st.Gen))
	}
}

// probe asks one follower for its replication status over a one-shot
// connection with connect and request deadlines.
func (m *Monitor) probe(addr string) (wire.ReplStatus, error) {
	conn, err := m.cfg.Dial(addr, m.cfg.ConnectTimeout)
	if err != nil {
		return wire.ReplStatus{}, fmt.Errorf("replication: probe dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(m.cfg.RequestTimeout))
	if _, err := wire.WriteFrame(conn, wire.MsgReplStatus, nil); err != nil {
		return wire.ReplStatus{}, fmt.Errorf("replication: probe %s: %w", addr, err)
	}
	rt, rp, _, err := wire.ReadFrame(conn)
	if err != nil {
		return wire.ReplStatus{}, fmt.Errorf("replication: probe %s: %w", addr, err)
	}
	if rt == wire.MsgError {
		_, msg, _ := wire.DecodeError(rp)
		return wire.ReplStatus{}, fmt.Errorf("replication: probe %s refused: %s", addr, msg)
	}
	if rt != wire.MsgReplStatusData {
		return wire.ReplStatus{}, fmt.Errorf("replication: probe %s replied %v", addr, rt)
	}
	return wire.DecodeReplStatus(rp)
}

// States snapshots every follower's last probed state, sorted by
// address.
func (m *Monitor) States() []ReplicaState {
	m.mu.Lock()
	out := make([]ReplicaState, 0, len(m.states))
	for _, st := range m.states {
		out = append(out, st)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Health implements an obs health check for the primary: failing while
// any follower is unreachable or reporting a sync error. The primary
// keeps serving regardless — the check degrades /healthz, it does not
// gate requests.
func (m *Monitor) Health() error {
	var sick []string
	for _, st := range m.States() {
		switch {
		case st.ProbeErr != "":
			sick = append(sick, fmt.Sprintf("%s: %s", st.Addr, st.ProbeErr))
		case st.Status.Err != "":
			sick = append(sick, fmt.Sprintf("%s: sync error: %s", st.Addr, st.Status.Err))
		}
	}
	if len(sick) > 0 {
		return fmt.Errorf("replication: unhealthy replicas: %s", strings.Join(sick, "; "))
	}
	return nil
}
