// Package replication keeps follower servers in sync with a primary by
// shipping the primary's immutable segment files and generation-numbered
// manifests over the existing wire protocol, and lets the primary watch
// its followers' health. The design piggybacks entirely on the storage
// engine's crash-consistency machinery: segments are immutable and
// CRC-armored, the manifest names exactly the files of a generation, and
// CURRENT swaps atomically — so a follower that fetches missing segments,
// verifies them, and applies the manifest with the same
// files-before-swap ordering a local flush uses is crash-consistent at
// every instant, and a sync interrupted anywhere resumes idempotently.
//
// The follower pulls: replication granularity is the primary's flush
// granularity (each manifest request asks the primary to flush first),
// and durable stream checkpoints are mirrored every round so a
// failed-over durable subscriber resumes on the follower from the
// primary's last persisted position.
package replication

import (
	"fmt"
	"net"
	"sync"
	"time"

	"nexus/internal/federation"
	"nexus/internal/obs/trace"
	"nexus/internal/storage"
	"nexus/internal/wire"
)

// Applier is the follower-side surface the replicator drives.
// *storage.Engine implements it.
type Applier interface {
	CurrentGen() uint64
	HasSegmentFile(name string) bool
	PutReplicatedSegment(name string, data []byte) error
	ApplyReplicatedCheckpoints(set map[string][]byte) error
	ApplyReplicated(rawManifest []byte) error
}

// Config tunes a Replicator.
type Config struct {
	// Primary is the primary server's wire address.
	Primary string
	// Interval between successful sync rounds. Default 500ms.
	Interval time.Duration
	// ConnectTimeout bounds each dial. Default 5s.
	ConnectTimeout time.Duration
	// RequestTimeout bounds each request/response exchange. Default 10s.
	RequestTimeout time.Duration
	// Dial overrides the dialer (fault-injection tests wrap it).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = federation.DefaultConnectTimeout
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Replicator is the follower-side sync loop: it dials the primary,
// pulls manifest deltas and missing segments, mirrors checkpoints, and
// reports its lag.
type Replicator struct {
	cfg Config
	dst Applier

	mu     sync.Mutex
	conn   net.Conn
	status wire.ReplStatus

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a replicator pulling from cfg.Primary into dst. Call Start
// to begin syncing, or SyncOnce to drive rounds manually (tests).
func New(dst Applier, cfg Config) *Replicator {
	return &Replicator{
		cfg:  cfg.withDefaults(),
		dst:  dst,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the background sync loop.
func (r *Replicator) Start() {
	r.startOnce.Do(func() { go r.loop() })
}

// Stop ends the loop and closes the primary connection. Safe to call
// without Start.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.dropConn()
	select {
	case <-r.done:
	default:
		r.startOnce.Do(func() { close(r.done) }) // loop never ran
	}
	<-r.done
}

func (r *Replicator) loop() {
	defer close(r.done)
	// Errors back off exponentially (with jitter) instead of hammering a
	// dead or struggling primary at the sync interval.
	b := federation.NewBackoff(time.Now().UnixNano())
	b.Base = r.cfg.Interval
	b.Max = 10 * r.cfg.Interval
	for {
		err := r.SyncOnce()
		wait := r.cfg.Interval
		if err != nil {
			r.cfg.Logf("replication: sync from %s: %v", r.cfg.Primary, err)
			wait = b.Next()
		} else {
			b.Reset()
		}
		select {
		case <-r.stop:
			return
		case <-time.After(wait):
		}
	}
}

// SyncOnce runs one full sync round and records its outcome in the
// replicator's status (served to the primary's monitor via
// wire.MsgReplStatus).
func (r *Replicator) SyncOnce() error {
	// Each sync round is its own root span when tracing is on — the
	// provenance trail for "where did this segment come from". Rounds
	// are background work, so they start fresh traces rather than
	// joining any client's.
	sp := trace.Default.StartRoot("repl.sync")
	err := r.syncOnce()
	r.mu.Lock()
	if err != nil {
		r.status.Err = err.Error()
		metRounds.With("error").Inc()
	} else {
		r.status.Err = ""
		r.status.LastSyncUnixNano = time.Now().UnixNano()
		metRounds.With("ok").Inc()
		metLastSync.Set(r.status.LastSyncUnixNano / 1e9)
	}
	st := r.status
	r.mu.Unlock()
	metFollowerGen.Set(int64(st.Gen))
	metPrimaryGen.Set(int64(st.PrimaryGen))
	metLag.Set(int64(st.PrimaryGen) - int64(st.Gen))
	sp.Set(trace.String("primary", r.cfg.Primary),
		trace.Int("gen", int64(st.Gen)),
		trace.Int("primary_gen", int64(st.PrimaryGen)))
	sp.End(err)
	return err
}

func (r *Replicator) syncOnce() error {
	conn, err := r.ensureConn()
	if err != nil {
		return err
	}
	// A wire-level failure poisons the connection (a half-read frame
	// cannot be resynchronized); drop it so the next round redials.
	fail := func(err error) error {
		r.dropConn()
		return err
	}

	raw, err := r.request(conn, wire.MsgReplManifest, wire.EncodeReplManifest(true), wire.MsgReplManifestData)
	if err != nil {
		return fail(err)
	}
	m, err := storage.DecodeManifest(raw)
	if err != nil {
		return fail(fmt.Errorf("replication: primary manifest: %w", err))
	}
	local := r.dst.CurrentGen()
	r.setGens(local, m.Gen)

	if m.Gen > local {
		// Fetch every referenced segment we are missing, verifying each
		// (CRC, page checksums) before it lands under its name. Segments
		// already present are content-identical by construction — they are
		// immutable and named once.
		for _, ds := range m.Datasets {
			for _, ref := range ds.Segments {
				if r.dst.HasSegmentFile(ref.File) {
					continue
				}
				payload, err := r.request(conn, wire.MsgReplFetch, wire.EncodeReplFetch(ref.File), wire.MsgReplFile)
				if err != nil {
					return fail(err)
				}
				name, data, err := wire.DecodeReplFile(payload)
				if err != nil {
					return fail(err)
				}
				if name != ref.File {
					return fail(fmt.Errorf("replication: asked for %s, got %s", ref.File, name))
				}
				if err := r.dst.PutReplicatedSegment(name, data); err != nil {
					return err
				}
				metSegsFetched.Inc()
				metFetchBytes.Add(int64(len(data)))
			}
		}
	}

	// Mirror durable stream checkpoints every round — they advance
	// without a manifest generation bump.
	ckRaw, err := r.request(conn, wire.MsgReplCkpts, nil, wire.MsgReplCkptData)
	if err != nil {
		return fail(err)
	}
	set, err := wire.DecodeReplCkptData(ckRaw)
	if err != nil {
		return fail(err)
	}
	if err := r.dst.ApplyReplicatedCheckpoints(set); err != nil {
		return err
	}

	if m.Gen > local {
		if err := r.dst.ApplyReplicated(raw); err != nil {
			return err
		}
	}
	r.setGens(r.dst.CurrentGen(), m.Gen)
	return nil
}

func (r *Replicator) setGens(local, primary uint64) {
	r.mu.Lock()
	r.status.Gen = local
	r.status.PrimaryGen = primary
	r.mu.Unlock()
}

// ensureConn returns the live primary connection, dialing if needed.
func (r *Replicator) ensureConn() (net.Conn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		return r.conn, nil
	}
	conn, err := r.cfg.Dial(r.cfg.Primary, r.cfg.ConnectTimeout)
	if err != nil {
		return nil, fmt.Errorf("replication: dial primary %s: %w", r.cfg.Primary, err)
	}
	r.conn = conn
	return conn, nil
}

func (r *Replicator) dropConn() {
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.mu.Unlock()
}

// request performs one framed request/response exchange under the
// per-request deadline.
func (r *Replicator) request(conn net.Conn, typ wire.MsgType, payload []byte, want wire.MsgType) ([]byte, error) {
	conn.SetDeadline(time.Now().Add(r.cfg.RequestTimeout))
	defer conn.SetDeadline(time.Time{})
	if _, err := wire.WriteFrame(conn, typ, payload); err != nil {
		return nil, fmt.Errorf("replication: send %v: %w", typ, err)
	}
	rt, rp, _, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("replication: read %v reply: %w", typ, err)
	}
	if rt == wire.MsgError {
		_, msg, _ := wire.DecodeError(rp)
		return nil, fmt.Errorf("replication: primary refused %v: %s", typ, msg)
	}
	if rt != want {
		return nil, fmt.Errorf("replication: primary replied %v to %v, want %v", rt, typ, want)
	}
	return rp, nil
}

// Status snapshots the replicator's sync state — wire this into
// server.SetReplStatus so the primary's monitor can read it.
func (r *Replicator) Status() wire.ReplStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Health implements an obs health check for the follower: failing while
// the last sync round errored or no round has succeeded yet.
func (r *Replicator) Health() error {
	st := r.Status()
	if st.Err != "" {
		return fmt.Errorf("replication: last sync failed: %s", st.Err)
	}
	if st.LastSyncUnixNano == 0 {
		return fmt.Errorf("replication: no successful sync from %s yet", r.cfg.Primary)
	}
	return nil
}
