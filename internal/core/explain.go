package core

import (
	"fmt"
	"strings"

	"nexus/internal/expr"
	"nexus/internal/value"
)

// Explain renders the plan as an indented operator tree, one node per
// line, with schemas. This is the human-readable form of the algebraic
// intermediate form; the shell's `explain` command prints it.
func Explain(n Node) string {
	var b strings.Builder
	explainInto(&b, n, 0)
	return b.String()
}

func explainInto(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	fmt.Fprintf(b, "  → %v\n", n.Schema())
	for _, c := range n.Children() {
		explainInto(b, c, depth+1)
	}
}

// Equal reports structural equality of two plans: same operators, same
// parameters, same children. Literal tables compare by content.
func Equal(a, b Node) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Kind() != b.Kind() {
		return false
	}
	ac, bc := a.Children(), b.Children()
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !Equal(ac[i], bc[i]) {
			return false
		}
	}
	return paramsEqual(a, b)
}

func paramsEqual(a, b Node) bool {
	switch x := a.(type) {
	case *Scan:
		y := b.(*Scan)
		return x.Dataset == y.Dataset && x.Schema().Equal(y.Schema())
	case *Literal:
		y := b.(*Literal)
		return x.Table.Schema().Equal(y.Table.Schema()) &&
			x.Table.OrderedChecksum() == y.Table.OrderedChecksum()
	case *Var:
		y := b.(*Var)
		return x.Name == y.Name && x.Schema().Equal(y.Schema())
	case *Filter:
		y := b.(*Filter)
		return expr.Equal(x.Pred, y.Pred)
	case *Project:
		y := b.(*Project)
		return strsEqual(x.Cols, y.Cols)
	case *Rename:
		y := b.(*Rename)
		return strsEqual(x.From, y.From) && strsEqual(x.To, y.To)
	case *Extend:
		y := b.(*Extend)
		if len(x.Defs) != len(y.Defs) {
			return false
		}
		for i := range x.Defs {
			if x.Defs[i].Name != y.Defs[i].Name || !expr.Equal(x.Defs[i].E, y.Defs[i].E) {
				return false
			}
		}
		return true
	case *Join:
		y := b.(*Join)
		return x.Type == y.Type && strsEqual(x.LeftKeys, y.LeftKeys) &&
			strsEqual(x.RightKeys, y.RightKeys) && expr.Equal(x.Residual, y.Residual)
	case *Product:
		return true
	case *GroupAgg:
		y := b.(*GroupAgg)
		return strsEqual(x.Keys, y.Keys) && aggsEqual(x.Aggs, y.Aggs)
	case *Distinct:
		return true
	case *Sort:
		y := b.(*Sort)
		if len(x.Specs) != len(y.Specs) {
			return false
		}
		for i := range x.Specs {
			if x.Specs[i] != y.Specs[i] {
				return false
			}
		}
		return true
	case *Limit:
		y := b.(*Limit)
		return x.N == y.N && x.Offset == y.Offset
	case *Union:
		y := b.(*Union)
		return x.All == y.All
	case *Except, *Intersect, *DropDims:
		return true
	case *AsArray:
		y := b.(*AsArray)
		return strsEqual(x.Dims, y.Dims)
	case *SliceDim:
		y := b.(*SliceDim)
		return x.Dim == y.Dim && x.At == y.At
	case *Dice:
		y := b.(*Dice)
		if len(x.Bounds) != len(y.Bounds) {
			return false
		}
		for i := range x.Bounds {
			if x.Bounds[i] != y.Bounds[i] {
				return false
			}
		}
		return true
	case *Transpose:
		y := b.(*Transpose)
		return strsEqual(x.Perm, y.Perm)
	case *Window:
		y := b.(*Window)
		if len(x.Extents) != len(y.Extents) {
			return false
		}
		for i := range x.Extents {
			if x.Extents[i] != y.Extents[i] {
				return false
			}
		}
		return x.Agg == y.Agg && x.Arg == y.Arg && x.As == y.As
	case *ReduceDims:
		y := b.(*ReduceDims)
		return strsEqual(x.Over, y.Over) && aggsEqual(x.Aggs, y.Aggs)
	case *Fill:
		y := b.(*Fill)
		return value.Equal(x.Default, y.Default) && x.Default.Kind() == y.Default.Kind()
	case *Shift:
		y := b.(*Shift)
		return x.Dim == y.Dim && x.Offset == y.Offset
	case *MatMul:
		y := b.(*MatMul)
		return x.As == y.As
	case *ElemWise:
		y := b.(*ElemWise)
		return x.Op == y.Op && x.As == y.As
	case *Iterate:
		y := b.(*Iterate)
		if x.LoopVar != y.LoopVar || x.MaxIters != y.MaxIters {
			return false
		}
		if (x.Conv == nil) != (y.Conv == nil) {
			return false
		}
		return x.Conv == nil || *x.Conv == *y.Conv
	case *Let:
		y := b.(*Let)
		return x.Name == y.Name
	}
	return false
}

func strsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func aggsEqual(a, b []AggSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Func != b[i].Func || a[i].As != b[i].As || !expr.Equal(a[i].Arg, b[i].Arg) {
			return false
		}
	}
	return true
}

// HashPlan returns a structural hash consistent with Equal, used by the
// planner's memo and by servers caching prepared fragments.
func HashPlan(n Node) uint64 {
	h := uint64(14695981039346656037)
	mix := func(u uint64) { h = (h ^ u) * 1099511628211 }
	mixs := func(s string) {
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
		mix(0xff)
	}
	if n == nil {
		return h
	}
	mix(uint64(n.Kind()))
	switch x := n.(type) {
	case *Scan:
		mixs(x.Dataset)
	case *Literal:
		mix(x.Table.OrderedChecksum())
	case *Var:
		mixs(x.Name)
	case *Filter:
		mix(expr.Hash(x.Pred))
	case *Project:
		for _, c := range x.Cols {
			mixs(c)
		}
	case *Rename:
		for i := range x.From {
			mixs(x.From[i])
			mixs(x.To[i])
		}
	case *Extend:
		for _, d := range x.Defs {
			mixs(d.Name)
			mix(expr.Hash(d.E))
		}
	case *Join:
		mix(uint64(x.Type))
		for i := range x.LeftKeys {
			mixs(x.LeftKeys[i])
			mixs(x.RightKeys[i])
		}
		if x.Residual != nil {
			mix(expr.Hash(x.Residual))
		}
	case *GroupAgg:
		for _, k := range x.Keys {
			mixs(k)
		}
		for _, a := range x.Aggs {
			mix(uint64(a.Func))
			mixs(a.As)
			if a.Arg != nil {
				mix(expr.Hash(a.Arg))
			}
		}
	case *Sort:
		for _, s := range x.Specs {
			mixs(s.Col)
			if s.Desc {
				mix(1)
			}
		}
	case *Limit:
		mix(uint64(x.N))
		mix(uint64(x.Offset))
	case *Union:
		if x.All {
			mix(1)
		}
	case *AsArray:
		for _, d := range x.Dims {
			mixs(d)
		}
	case *SliceDim:
		mixs(x.Dim)
		mix(uint64(x.At))
	case *Dice:
		for _, b := range x.Bounds {
			mixs(b.Dim)
			mix(uint64(b.Lo))
			mix(uint64(b.Hi))
		}
	case *Transpose:
		for _, p := range x.Perm {
			mixs(p)
		}
	case *Window:
		for _, e := range x.Extents {
			mixs(e.Dim)
			mix(uint64(e.Before))
			mix(uint64(e.After))
		}
		mix(uint64(x.Agg))
		mixs(x.Arg)
		mixs(x.As)
	case *ReduceDims:
		for _, d := range x.Over {
			mixs(d)
		}
		for _, a := range x.Aggs {
			mix(uint64(a.Func))
			mixs(a.As)
			if a.Arg != nil {
				mix(expr.Hash(a.Arg))
			}
		}
	case *Fill:
		mix(value.Hash(x.Default))
	case *Shift:
		mixs(x.Dim)
		mix(uint64(x.Offset))
	case *MatMul:
		mixs(x.As)
	case *ElemWise:
		mix(uint64(x.Op))
		mixs(x.As)
	case *Iterate:
		mixs(x.LoopVar)
		mix(uint64(x.MaxIters))
		if x.Conv != nil {
			mix(uint64(x.Conv.Metric))
			mixs(x.Conv.Col)
		}
	case *Let:
		mixs(x.Name)
	}
	for _, c := range n.Children() {
		mix(HashPlan(c))
	}
	return h
}
