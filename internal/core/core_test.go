package core

import (
	"strings"
	"testing"

	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

func salesSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "id", Kind: value.KindInt64},
		schema.Attribute{Name: "region", Kind: value.KindString},
		schema.Attribute{Name: "qty", Kind: value.KindInt64},
		schema.Attribute{Name: "price", Kind: value.KindFloat64},
	)
}

func matSchema(d1, d2 string) schema.Schema {
	return schema.New(
		schema.Attribute{Name: d1, Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: d2, Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: "v", Kind: value.KindFloat64},
	)
}

func TestSchemaInferenceChain(t *testing.T) {
	s, err := NewScan("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFilter(s, expr.Gt(expr.Column("qty"), expr.CInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Schema().Equal(s.Schema()) {
		t.Fatal("filter changed schema")
	}
	e, err := NewExtend(f, []ColDef{{Name: "rev", E: expr.Mul(expr.Column("price"), expr.Column("qty"))}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Schema().Len() != 5 || e.Schema().At(4).Kind != value.KindFloat64 {
		t.Fatalf("extend schema %v", e.Schema())
	}
	g, err := NewGroupAgg(e, []string{"region"}, []AggSpec{
		{Func: AggSum, Arg: expr.Column("rev"), As: "total"},
		{Func: AggAvg, Arg: expr.Column("qty"), As: "mean_qty"},
		{Func: AggCount, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "(region:string, total:float64, mean_qty:float64, n:int64)"
	if g.Schema().String() != want {
		t.Fatalf("groupagg schema %v, want %s", g.Schema(), want)
	}
}

func TestTypeErrorsAtConstruction(t *testing.T) {
	s, _ := NewScan("sales", salesSchema())
	if _, err := NewFilter(s, expr.Add(expr.Column("qty"), expr.CInt(1))); err == nil {
		t.Error("non-bool filter accepted")
	}
	if _, err := NewFilter(s, expr.Gt(expr.Column("ghost"), expr.CInt(1))); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := NewProject(s, nil); err == nil {
		t.Error("empty project accepted")
	}
	if _, err := NewProject(s, []string{"ghost"}); err == nil {
		t.Error("projecting missing column accepted")
	}
	if _, err := NewGroupAgg(s, []string{"region"}, []AggSpec{{Func: AggSum, Arg: expr.Column("region"), As: "x"}}); err == nil {
		t.Error("sum over string accepted")
	}
	if _, err := NewGroupAgg(s, nil, []AggSpec{{Func: AggMin, As: "x"}}); err == nil {
		t.Error("min without argument accepted")
	}
	if _, err := NewLimit(s, -1, 0); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := NewSort(s, nil); err == nil {
		t.Error("empty sort accepted")
	}
}

func TestJoinSchemas(t *testing.T) {
	l, _ := NewScan("sales", salesSchema())
	r, _ := NewScan("sales2", salesSchema())
	j, err := NewJoin(l, r, JoinInner, []string{"id"}, []string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All right names collide and get suffixed.
	if !j.Schema().Has("id_r") || !j.Schema().Has("region_r") {
		t.Fatalf("join schema %v", j.Schema())
	}
	semi, err := NewJoin(l, r, JoinSemi, []string{"id"}, []string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !semi.Schema().Equal(l.Schema()) {
		t.Fatal("semi join must keep only left schema")
	}
	if _, err := NewJoin(l, r, JoinInner, []string{"id"}, []string{"id", "qty"}, nil); err == nil {
		t.Error("mismatched key lists accepted")
	}
	if _, err := NewJoin(l, r, JoinInner, []string{"region"}, []string{"qty"}, nil); err == nil {
		t.Error("string==int join keys accepted")
	}
}

func TestArrayNodeValidation(t *testing.T) {
	m, _ := NewScan("A", matSchema("i", "j"))
	if _, err := NewSliceDim(m, "v", 0); err == nil {
		t.Error("slicing a non-dimension accepted")
	}
	if _, err := NewDice(m, []DimBound{{Dim: "i", Lo: 5, Hi: 2}}); err == nil {
		t.Error("empty dice range accepted")
	}
	if _, err := NewTranspose(m, []string{"i"}); err == nil {
		t.Error("partial transpose accepted")
	}
	if _, err := NewTranspose(m, []string{"i", "i"}); err == nil {
		t.Error("duplicate transpose accepted")
	}
	if _, err := NewWindow(m, []DimExtent{{Dim: "i", Before: -1}}, AggSum, "v", "w"); err == nil {
		t.Error("negative extent accepted")
	}
	if _, err := NewWindow(m, []DimExtent{{Dim: "i", Before: 1, After: 1}}, AggSum, "i", "w"); err == nil {
		t.Error("windowing a dimension accepted")
	}
	if _, err := NewReduceDims(m, nil, []AggSpec{{Func: AggSum, Arg: expr.Column("v"), As: "s"}}); err == nil {
		t.Error("reduce over nothing accepted")
	}
	rel, _ := NewScan("sales", salesSchema())
	if _, err := NewFill(rel, value.NewFloat(0)); err == nil {
		t.Error("fill without dimensions accepted")
	}
	if _, err := NewAsArray(rel, []string{"region"}); err == nil {
		t.Error("string dimension accepted")
	}
}

func TestMatMulValidation(t *testing.T) {
	a, _ := NewScan("A", matSchema("i", "k"))
	b, _ := NewScan("B", matSchema("k", "j"))
	mm, err := NewMatMul(a, b, "c")
	if err != nil {
		t.Fatal(err)
	}
	if got := mm.Schema().String(); got != "(i:int64#, j:int64#, c:float64)" {
		t.Fatalf("matmul schema %s", got)
	}
	bad, _ := NewScan("C", matSchema("x", "y"))
	if _, err := NewMatMul(a, bad, "c"); err == nil {
		t.Error("inner-dimension mismatch accepted")
	}
	rel, _ := NewScan("sales", salesSchema())
	if _, err := NewMatMul(rel, b, "c"); err == nil {
		t.Error("non-array matmul operand accepted")
	}
	// Same outer dims: output disambiguates.
	sq1, _ := NewScan("S", matSchema("i", "k"))
	sq2t, _ := NewScan("S2", matSchema("k", "i"))
	mm2, err := NewMatMul(sq1, sq2t, "c")
	if err != nil {
		t.Fatal(err)
	}
	if !mm2.Schema().Has("i_r") {
		t.Fatalf("colliding output dims not suffixed: %v", mm2.Schema())
	}
}

func TestIterateValidation(t *testing.T) {
	sch := schema.New(
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "x", Kind: value.KindFloat64},
	)
	init, _ := NewLiteral(table.Empty(sch))
	loop, _ := NewVar("s", sch)
	if _, err := NewIterate(init, loop, "s", 0, nil); err == nil {
		t.Error("zero max iterations accepted")
	}
	if _, err := NewIterate(init, loop, "", 5, nil); err == nil {
		t.Error("empty loop var accepted")
	}
	// Body schema mismatch.
	narrow, _ := NewProject(loop, []string{"k"})
	if _, err := NewIterate(init, narrow, "s", 5, nil); err == nil {
		t.Error("body schema mismatch accepted")
	}
	// Var with wrong schema inside body.
	wrongVar, _ := NewVar("s", schema.New(schema.Attribute{Name: "z", Kind: value.KindInt64}))
	if _, err := NewIterate(init, wrongVar, "s", 5, nil); err == nil {
		t.Error("var schema mismatch accepted")
	}
	// Convergence on a string column.
	strSch := schema.New(schema.Attribute{Name: "name", Kind: value.KindString})
	sInit, _ := NewLiteral(table.Empty(strSch))
	sLoop, _ := NewVar("s", strSch)
	if _, err := NewIterate(sInit, sLoop, "s", 5, &Convergence{Metric: MetricL1, Col: "name"}); err == nil {
		t.Error("L1 over string accepted")
	}
	// RowDelta needs no column.
	if _, err := NewIterate(sInit, sLoop, "s", 5, &Convergence{Metric: MetricRowDelta}); err != nil {
		t.Errorf("rowdelta rejected: %v", err)
	}
}

func TestFreeVars(t *testing.T) {
	sch := salesSchema()
	v, _ := NewVar("free", sch)
	if fv := FreeVars(v); len(fv) != 1 || fv[0] != "free" {
		t.Fatalf("FreeVars = %v", fv)
	}
	lit, _ := NewLiteral(table.Empty(sch))
	let, _ := NewLet("free", lit, v)
	if fv := FreeVars(let); len(fv) != 0 {
		t.Fatalf("let-bound var reported free: %v", fv)
	}
	// Iterate binds its loop var in the body only.
	loop, _ := NewVar("st", sch)
	it, _ := NewIterate(lit, loop, "st", 3, nil)
	if fv := FreeVars(it); len(fv) != 0 {
		t.Fatalf("iterate loop var reported free: %v", fv)
	}
}

func TestWalkRewriteAndCounts(t *testing.T) {
	s, _ := NewScan("sales", salesSchema())
	f, _ := NewFilter(s, expr.Gt(expr.Column("qty"), expr.CInt(2)))
	l, _ := NewLimit(f, 10, 0)
	if CountNodes(l) != 3 || Depth(l) != 3 {
		t.Fatalf("count=%d depth=%d", CountNodes(l), Depth(l))
	}
	// Rewrite: replace the limit bound.
	out, err := Rewrite(l, func(n Node) (Node, error) {
		if lim, ok := n.(*Limit); ok {
			return NewLimit(lim.Children()[0], 5, 0)
		}
		return n, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.(*Limit).N != 5 {
		t.Fatal("rewrite did not apply")
	}
	if l.N != 10 {
		t.Fatal("rewrite mutated the original")
	}
}

func TestEqualAndHashPlan(t *testing.T) {
	build := func(qty int64) Node {
		s, _ := NewScan("sales", salesSchema())
		f, _ := NewFilter(s, expr.Gt(expr.Column("qty"), expr.CInt(qty)))
		g, _ := NewGroupAgg(f, []string{"region"}, []AggSpec{{Func: AggCount, As: "n"}})
		return g
	}
	a, b, c := build(2), build(2), build(3)
	if !Equal(a, b) {
		t.Fatal("equal plans differ")
	}
	if Equal(a, c) {
		t.Fatal("different plans equal")
	}
	if HashPlan(a) != HashPlan(b) {
		t.Fatal("hash of equal plans differs")
	}
	if HashPlan(a) == HashPlan(c) {
		t.Fatal("hash collision on different plans (parameter not hashed)")
	}
}

func TestExplainOutput(t *testing.T) {
	s, _ := NewScan("sales", salesSchema())
	f, _ := NewFilter(s, expr.Eq(expr.Column("region"), expr.CStr("EU")))
	srt, _ := NewSort(f, []SortSpec{{Col: "price", Desc: true}})
	out := Explain(srt)
	for _, want := range []string{"sort price desc", "filter", "scan sales", "region:string"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	// Indentation: scan is two levels deep.
	if !strings.Contains(out, "    scan") {
		t.Fatalf("explain indentation broken:\n%s", out)
	}
}

func TestDatasetNames(t *testing.T) {
	a, _ := NewScan("zeta", salesSchema())
	b, _ := NewScan("alpha", salesSchema())
	u, _ := NewUnion(a, b, true)
	got := DatasetNames(u)
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("DatasetNames = %v (want sorted unique)", got)
	}
}

func TestAggFuncParsing(t *testing.T) {
	for _, name := range []string{"sum", "count", "min", "max", "avg", "countd"} {
		f, err := ParseAggFunc(name)
		if err != nil {
			t.Fatal(err)
		}
		if f.String() != name {
			t.Fatalf("%s round trip -> %s", name, f)
		}
	}
	if _, err := ParseAggFunc("median"); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}

func TestOpKindNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range AllOpKinds() {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "opkind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate op name %s", name)
		}
		seen[name] = true
		if !k.Valid() {
			t.Fatalf("%s invalid", name)
		}
	}
	if len(seen) != 29 {
		t.Fatalf("expected 29 operators, got %d", len(seen))
	}
}

func TestWithChildrenArityChecks(t *testing.T) {
	s, _ := NewScan("sales", salesSchema())
	f, _ := NewFilter(s, expr.Gt(expr.Column("qty"), expr.CInt(1)))
	if _, err := f.WithChildren(nil); err == nil {
		t.Fatal("filter with 0 children accepted")
	}
	if _, err := s.WithChildren([]Node{f}); err == nil {
		t.Fatal("scan with a child accepted")
	}
}
