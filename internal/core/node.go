// Package core implements the paper's central abstraction: the Big Data
// algebra, an algebraic intermediate form whose operators span standard
// relational algebra, dimension-aware array operations over the fused
// tabular/array model, and control iteration (repeated execution of an
// expression until a convergence criterion is met).
//
// Plans are immutable trees of Node values. Every node infers and caches
// its output schema at construction time, so an ill-typed plan cannot be
// built; rewrites (internal/planner) rebuild nodes via WithChildren and
// re-run inference. Plans serialize to expression trees on the wire
// (internal/wire) — the LINQ property the paper highlights: queries
// travel as one tree, not as a series of remote calls.
package core

import (
	"fmt"

	"nexus/internal/schema"
)

// OpKind identifies an operator for capability checks (internal/provider)
// and wire encoding. The numbering is part of the wire format; append
// only.
type OpKind uint8

// Operator kinds of the Big Data algebra.
const (
	KInvalid OpKind = iota

	// Leaves.
	KScan    // named dataset
	KLiteral // inline table
	KVar     // loop / let variable reference

	// Relational core.
	KFilter
	KProject
	KRename
	KExtend
	KJoin
	KProduct
	KGroupAgg
	KDistinct
	KSort
	KLimit
	KUnion
	KExcept
	KIntersect

	// Dimension-aware array operations.
	KAsArray
	KDropDims
	KSlice
	KDice
	KTranspose
	KWindow
	KReduceDims
	KFill
	KShift
	KMatMul
	KElemWise

	// Control iteration.
	KIterate
	KLet

	numOpKinds
)

var opNames = [...]string{
	KInvalid:    "invalid",
	KScan:       "scan",
	KLiteral:    "literal",
	KVar:        "var",
	KFilter:     "filter",
	KProject:    "project",
	KRename:     "rename",
	KExtend:     "extend",
	KJoin:       "join",
	KProduct:    "product",
	KGroupAgg:   "groupagg",
	KDistinct:   "distinct",
	KSort:       "sort",
	KLimit:      "limit",
	KUnion:      "union",
	KExcept:     "except",
	KIntersect:  "intersect",
	KAsArray:    "asarray",
	KDropDims:   "dropdims",
	KSlice:      "slice",
	KDice:       "dice",
	KTranspose:  "transpose",
	KWindow:     "window",
	KReduceDims: "reducedims",
	KFill:       "fill",
	KShift:      "shift",
	KMatMul:     "matmul",
	KElemWise:   "elemwise",
	KIterate:    "iterate",
	KLet:        "let",
}

// String returns the operator's lower-case name.
func (k OpKind) String() string {
	if int(k) < len(opNames) && opNames[k] != "" {
		return opNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Valid reports whether k names a defined operator.
func (k OpKind) Valid() bool { return k > KInvalid && k < numOpKinds }

// AllOpKinds returns every defined operator kind, in wire order. Used by
// the translatability experiment (E2) to enumerate the operator axis.
func AllOpKinds() []OpKind {
	out := make([]OpKind, 0, int(numOpKinds)-1)
	for k := KScan; k < numOpKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Node is one operator of the Big Data algebra. Nodes are immutable and
// carry their inferred output schema.
type Node interface {
	// Kind returns the operator kind.
	Kind() OpKind
	// Schema returns the node's output schema, inferred at construction.
	Schema() schema.Schema
	// Children returns the node's inputs in order. The returned slice
	// must not be mutated.
	Children() []Node
	// WithChildren rebuilds the node with new children, re-running
	// schema inference. len(children) must match Children().
	WithChildren(children []Node) (Node, error)
	// Describe renders the node's own parameters (one line, no children).
	Describe() string
}

// Walk visits n and its descendants pre-order; fn returning false prunes.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// Rewrite rebuilds the plan bottom-up: children are rewritten first, the
// node is rebuilt if any child changed, then fn maps the node. fn may
// return its argument unchanged.
func Rewrite(n Node, fn func(Node) (Node, error)) (Node, error) {
	if n == nil {
		return nil, nil
	}
	kids := n.Children()
	if len(kids) > 0 {
		newKids := kids
		changed := false
		for i, c := range kids {
			rc, err := Rewrite(c, fn)
			if err != nil {
				return nil, err
			}
			if rc != c {
				if !changed {
					newKids = make([]Node, len(kids))
					copy(newKids, kids)
					changed = true
				}
				newKids[i] = rc
			}
		}
		if changed {
			var err error
			n, err = n.WithChildren(newKids)
			if err != nil {
				return nil, err
			}
		}
	}
	return fn(n)
}

// CountNodes returns the number of operators in the plan.
func CountNodes(n Node) int {
	c := 0
	Walk(n, func(Node) bool { c++; return true })
	return c
}

// Depth returns the height of the plan tree.
func Depth(n Node) int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children() {
		if cd := Depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// DatasetNames returns the sorted set of dataset names scanned by the
// plan; the planner uses this for data-locality placement.
func DatasetNames(n Node) []string {
	set := map[string]bool{}
	Walk(n, func(x Node) bool {
		if s, ok := x.(*Scan); ok {
			set[s.Dataset] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// checkArity validates a WithChildren call.
func checkArity(k OpKind, got, want int) error {
	if got != want {
		return fmt.Errorf("core: %v takes %d children, got %d", k, want, got)
	}
	return nil
}
