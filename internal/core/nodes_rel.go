package core

import (
	"fmt"
	"strings"

	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// ---------------------------------------------------------------------------
// Leaves

// Scan reads a named dataset. The schema is bound at construction (the
// session resolves names against the provider catalog before building the
// plan), so a plan is self-contained when shipped.
type Scan struct {
	Dataset string
	sch     schema.Schema
}

// NewScan returns a scan of the named dataset with the given schema.
func NewScan(dataset string, sch schema.Schema) (*Scan, error) {
	if dataset == "" {
		return nil, fmt.Errorf("core: scan with empty dataset name")
	}
	return &Scan{Dataset: dataset, sch: sch}, nil
}

// Kind implements Node.
func (n *Scan) Kind() OpKind { return KScan }

// Schema implements Node.
func (n *Scan) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Scan) Children() []Node { return nil }

// WithChildren implements Node.
func (n *Scan) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KScan, len(c), 0); err != nil {
		return nil, err
	}
	return n, nil
}

// Describe implements Node.
func (n *Scan) Describe() string { return fmt.Sprintf("scan %s %v", n.Dataset, n.sch) }

// Literal is an inline table (the algebra's VALUES).
type Literal struct {
	Table *table.Table
}

// NewLiteral wraps a table as a leaf node.
func NewLiteral(t *table.Table) (*Literal, error) {
	if t == nil {
		return nil, fmt.Errorf("core: literal with nil table")
	}
	return &Literal{Table: t}, nil
}

// Kind implements Node.
func (n *Literal) Kind() OpKind { return KLiteral }

// Schema implements Node.
func (n *Literal) Schema() schema.Schema { return n.Table.Schema() }

// Children implements Node.
func (n *Literal) Children() []Node { return nil }

// WithChildren implements Node.
func (n *Literal) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KLiteral, len(c), 0); err != nil {
		return nil, err
	}
	return n, nil
}

// Describe implements Node.
func (n *Literal) Describe() string {
	return fmt.Sprintf("literal %d rows %v", n.Table.NumRows(), n.Table.Schema())
}

// Var references a bound plan: the loop variable of an Iterate or the
// binding of a Let. Its schema is fixed by the binder.
type Var struct {
	Name string
	sch  schema.Schema
}

// NewVar returns a variable reference with the binder-declared schema.
func NewVar(name string, sch schema.Schema) (*Var, error) {
	if name == "" {
		return nil, fmt.Errorf("core: var with empty name")
	}
	return &Var{Name: name, sch: sch}, nil
}

// Kind implements Node.
func (n *Var) Kind() OpKind { return KVar }

// Schema implements Node.
func (n *Var) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Var) Children() []Node { return nil }

// WithChildren implements Node.
func (n *Var) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KVar, len(c), 0); err != nil {
		return nil, err
	}
	return n, nil
}

// Describe implements Node.
func (n *Var) Describe() string { return fmt.Sprintf("var %s %v", n.Name, n.sch) }

// ---------------------------------------------------------------------------
// Relational operators

// Filter keeps rows satisfying a boolean predicate (relational selection;
// named Filter to avoid the LINQ/SQL "select" ambiguity).
type Filter struct {
	Pred  expr.Expr
	child Node
	sch   schema.Schema
}

// NewFilter type-checks the predicate against the child's schema.
func NewFilter(child Node, pred expr.Expr) (*Filter, error) {
	k, err := expr.InferKind(pred, child.Schema())
	if err != nil {
		return nil, fmt.Errorf("core: filter: %w", err)
	}
	if k != value.KindBool && k != value.KindNull {
		return nil, fmt.Errorf("core: filter predicate must be bool, got %v (%s)", k, pred)
	}
	return &Filter{Pred: pred, child: child, sch: child.Schema()}, nil
}

// Kind implements Node.
func (n *Filter) Kind() OpKind { return KFilter }

// Schema implements Node.
func (n *Filter) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Filter) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Filter) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KFilter, len(c), 1); err != nil {
		return nil, err
	}
	return NewFilter(c[0], n.Pred)
}

// Describe implements Node.
func (n *Filter) Describe() string { return "filter " + n.Pred.String() }

// Project keeps the named columns, in the given order.
type Project struct {
	Cols  []string
	child Node
	sch   schema.Schema
}

// NewProject validates the column list against the child's schema.
func NewProject(child Node, cols []string) (*Project, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("core: project with no columns")
	}
	sch, err := child.Schema().ProjectNames(cols)
	if err != nil {
		return nil, fmt.Errorf("core: project: %w", err)
	}
	return &Project{Cols: append([]string(nil), cols...), child: child, sch: sch}, nil
}

// Kind implements Node.
func (n *Project) Kind() OpKind { return KProject }

// Schema implements Node.
func (n *Project) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Project) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Project) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KProject, len(c), 1); err != nil {
		return nil, err
	}
	return NewProject(c[0], n.Cols)
}

// Describe implements Node.
func (n *Project) Describe() string { return "project " + strings.Join(n.Cols, ", ") }

// Rename renames columns. From and To are parallel slices (a map would
// not have a deterministic wire encoding).
type Rename struct {
	From, To []string
	child    Node
	sch      schema.Schema
}

// NewRename validates and applies the renaming to the schema.
func NewRename(child Node, from, to []string) (*Rename, error) {
	if len(from) != len(to) || len(from) == 0 {
		return nil, fmt.Errorf("core: rename with mismatched or empty name lists")
	}
	m := make(map[string]string, len(from))
	for i := range from {
		m[from[i]] = to[i]
	}
	sch, err := child.Schema().Rename(m)
	if err != nil {
		return nil, fmt.Errorf("core: rename: %w", err)
	}
	return &Rename{
		From:  append([]string(nil), from...),
		To:    append([]string(nil), to...),
		child: child, sch: sch,
	}, nil
}

// Mapping returns the renaming as a map.
func (n *Rename) Mapping() map[string]string {
	m := make(map[string]string, len(n.From))
	for i := range n.From {
		m[n.From[i]] = n.To[i]
	}
	return m
}

// Kind implements Node.
func (n *Rename) Kind() OpKind { return KRename }

// Schema implements Node.
func (n *Rename) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Rename) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Rename) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KRename, len(c), 1); err != nil {
		return nil, err
	}
	return NewRename(c[0], n.From, n.To)
}

// Describe implements Node.
func (n *Rename) Describe() string {
	parts := make([]string, len(n.From))
	for i := range n.From {
		parts[i] = n.From[i] + "→" + n.To[i]
	}
	return "rename " + strings.Join(parts, ", ")
}

// ColDef names a computed column.
type ColDef struct {
	Name string
	E    expr.Expr
}

// Extend appends computed columns to the child's schema (the map/Select
// of LINQ, restricted to width-extension; combine with Project for
// arbitrary maps).
type Extend struct {
	Defs  []ColDef
	child Node
	sch   schema.Schema
}

// NewExtend type-checks each definition against the child's schema
// (definitions may not reference each other; they see only the child).
func NewExtend(child Node, defs []ColDef) (*Extend, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("core: extend with no definitions")
	}
	attrs := child.Schema().Attrs()
	for _, d := range defs {
		k, err := expr.InferKind(d.E, child.Schema())
		if err != nil {
			return nil, fmt.Errorf("core: extend %q: %w", d.Name, err)
		}
		if k == value.KindNull {
			k = value.KindInt64
		}
		attrs = append(attrs, schema.Attribute{Name: d.Name, Kind: k})
	}
	sch, err := schema.TryNew(attrs...)
	if err != nil {
		return nil, fmt.Errorf("core: extend: %w", err)
	}
	return &Extend{Defs: append([]ColDef(nil), defs...), child: child, sch: sch}, nil
}

// Kind implements Node.
func (n *Extend) Kind() OpKind { return KExtend }

// Schema implements Node.
func (n *Extend) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Extend) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Extend) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KExtend, len(c), 1); err != nil {
		return nil, err
	}
	return NewExtend(c[0], n.Defs)
}

// Describe implements Node.
func (n *Extend) Describe() string {
	parts := make([]string, len(n.Defs))
	for i, d := range n.Defs {
		parts[i] = d.Name + " = " + d.E.String()
	}
	return "extend " + strings.Join(parts, ", ")
}

// JoinType enumerates the supported join variants.
type JoinType uint8

// Join variants. Full outer join is intentionally absent (see DESIGN.md).
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinSemi
	JoinAnti
)

// String returns the join type's name.
func (t JoinType) String() string {
	switch t {
	case JoinInner:
		return "inner"
	case JoinLeft:
		return "left"
	case JoinSemi:
		return "semi"
	case JoinAnti:
		return "anti"
	}
	return fmt.Sprintf("jointype(%d)", uint8(t))
}

// Join is an equijoin on parallel key lists with an optional residual
// predicate evaluated over the concatenated schema. Semi and anti joins
// output only left columns.
type Join struct {
	Type      JoinType
	LeftKeys  []string
	RightKeys []string
	Residual  expr.Expr // may be nil
	left      Node
	right     Node
	sch       schema.Schema
}

// NewJoin validates key lists (same length, comparable kinds) and the
// residual predicate.
func NewJoin(left, right Node, typ JoinType, leftKeys, rightKeys []string, residual expr.Expr) (*Join, error) {
	if len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("core: join key lists differ in length: %d vs %d", len(leftKeys), len(rightKeys))
	}
	ls, rs := left.Schema(), right.Schema()
	for i := range leftKeys {
		li := ls.IndexOf(leftKeys[i])
		if li < 0 {
			return nil, fmt.Errorf("core: join: no left column %q", leftKeys[i])
		}
		ri := rs.IndexOf(rightKeys[i])
		if ri < 0 {
			return nil, fmt.Errorf("core: join: no right column %q", rightKeys[i])
		}
		lk, rk := ls.At(li).Kind, rs.At(ri).Kind
		if lk != rk && !(lk.Numeric() && rk.Numeric()) {
			return nil, fmt.Errorf("core: join key kind mismatch: %s:%v vs %s:%v", leftKeys[i], lk, rightKeys[i], rk)
		}
	}
	var sch schema.Schema
	switch typ {
	case JoinSemi, JoinAnti:
		sch = ls
	case JoinLeft:
		// Left join may introduce NULLs on the right; kinds are unchanged.
		sch = ls.Concat(rs)
	default:
		sch = ls.Concat(rs)
	}
	if residual != nil {
		resSch := ls.Concat(rs) // residual always sees both sides
		k, err := expr.InferKind(residual, resSch)
		if err != nil {
			return nil, fmt.Errorf("core: join residual: %w", err)
		}
		if k != value.KindBool && k != value.KindNull {
			return nil, fmt.Errorf("core: join residual must be bool, got %v", k)
		}
	}
	return &Join{
		Type:      typ,
		LeftKeys:  append([]string(nil), leftKeys...),
		RightKeys: append([]string(nil), rightKeys...),
		Residual:  residual,
		left:      left, right: right, sch: sch,
	}, nil
}

// Kind implements Node.
func (n *Join) Kind() OpKind { return KJoin }

// Schema implements Node.
func (n *Join) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Join) Children() []Node { return []Node{n.left, n.right} }

// WithChildren implements Node.
func (n *Join) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KJoin, len(c), 2); err != nil {
		return nil, err
	}
	return NewJoin(c[0], c[1], n.Type, n.LeftKeys, n.RightKeys, n.Residual)
}

// Describe implements Node.
func (n *Join) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "join %s on ", n.Type)
	for i := range n.LeftKeys {
		if i > 0 {
			b.WriteString(" && ")
		}
		fmt.Fprintf(&b, "%s == %s", n.LeftKeys[i], n.RightKeys[i])
	}
	if n.Residual != nil {
		b.WriteString(" where " + n.Residual.String())
	}
	return b.String()
}

// Product is the cross product of two inputs.
type Product struct {
	left, right Node
	sch         schema.Schema
}

// NewProduct builds a cross product.
func NewProduct(left, right Node) (*Product, error) {
	return &Product{left: left, right: right, sch: left.Schema().Concat(right.Schema())}, nil
}

// Kind implements Node.
func (n *Product) Kind() OpKind { return KProduct }

// Schema implements Node.
func (n *Product) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Product) Children() []Node { return []Node{n.left, n.right} }

// WithChildren implements Node.
func (n *Product) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KProduct, len(c), 2); err != nil {
		return nil, err
	}
	return NewProduct(c[0], c[1])
}

// Describe implements Node.
func (n *Product) Describe() string { return "product" }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions for GroupAgg, ReduceDims and Window.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
	AggCountDistinct
)

// String returns the function's surface name.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggCountDistinct:
		return "countd"
	}
	return fmt.Sprintf("agg(%d)", uint8(f))
}

// ParseAggFunc parses an aggregate function name.
func ParseAggFunc(s string) (AggFunc, error) {
	switch s {
	case "sum":
		return AggSum, nil
	case "count":
		return AggCount, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "avg", "mean":
		return AggAvg, nil
	case "countd", "count_distinct":
		return AggCountDistinct, nil
	}
	return AggSum, fmt.Errorf("core: unknown aggregate %q", s)
}

// ResultKind returns the aggregate's output kind given its argument kind.
func (f AggFunc) ResultKind(arg value.Kind) (value.Kind, error) {
	switch f {
	case AggCount, AggCountDistinct:
		return value.KindInt64, nil
	case AggAvg:
		if !arg.Numeric() && arg != value.KindNull {
			return value.KindNull, fmt.Errorf("core: avg over %v", arg)
		}
		return value.KindFloat64, nil
	case AggSum:
		if !arg.Numeric() && arg != value.KindNull {
			return value.KindNull, fmt.Errorf("core: sum over %v", arg)
		}
		if arg == value.KindNull {
			return value.KindInt64, nil
		}
		return arg, nil
	case AggMin, AggMax:
		if arg == value.KindNull {
			return value.KindInt64, nil
		}
		return arg, nil
	}
	return value.KindNull, fmt.Errorf("core: unknown aggregate %v", f)
}

// AggSpec is one aggregate output column: func, argument expression
// (nil for count(*)), and output name.
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr // nil allowed for AggCount
	As   string
}

// String renders the spec.
func (a AggSpec) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	return fmt.Sprintf("%s = %s(%s)", a.As, a.Func, arg)
}

// GroupAgg groups by key columns and computes aggregates per group. With
// no keys it aggregates the whole input to one row. Key columns keep
// their dimension tags (grouping by dimensions is the array "regrid"
// pattern); aggregate outputs are untagged.
type GroupAgg struct {
	Keys  []string
	Aggs  []AggSpec
	child Node
	sch   schema.Schema
}

// NewGroupAgg validates keys and aggregate specs.
func NewGroupAgg(child Node, keys []string, aggs []AggSpec) (*GroupAgg, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("core: groupagg with no aggregates")
	}
	cs := child.Schema()
	var attrs []schema.Attribute
	for _, k := range keys {
		i := cs.IndexOf(k)
		if i < 0 {
			return nil, fmt.Errorf("core: groupagg: no key column %q", k)
		}
		attrs = append(attrs, cs.At(i))
	}
	for _, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("core: groupagg: aggregate without output name")
		}
		argKind := value.KindNull
		if a.Arg != nil {
			k, err := expr.InferKind(a.Arg, cs)
			if err != nil {
				return nil, fmt.Errorf("core: groupagg %q: %w", a.As, err)
			}
			argKind = k
		} else if a.Func != AggCount {
			return nil, fmt.Errorf("core: groupagg: %v requires an argument", a.Func)
		}
		rk, err := a.Func.ResultKind(argKind)
		if err != nil {
			return nil, fmt.Errorf("core: groupagg %q: %w", a.As, err)
		}
		attrs = append(attrs, schema.Attribute{Name: a.As, Kind: rk})
	}
	sch, err := schema.TryNew(attrs...)
	if err != nil {
		return nil, fmt.Errorf("core: groupagg: %w", err)
	}
	return &GroupAgg{
		Keys:  append([]string(nil), keys...),
		Aggs:  append([]AggSpec(nil), aggs...),
		child: child, sch: sch,
	}, nil
}

// Kind implements Node.
func (n *GroupAgg) Kind() OpKind { return KGroupAgg }

// Schema implements Node.
func (n *GroupAgg) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *GroupAgg) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *GroupAgg) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KGroupAgg, len(c), 1); err != nil {
		return nil, err
	}
	return NewGroupAgg(c[0], n.Keys, n.Aggs)
}

// Describe implements Node.
func (n *GroupAgg) Describe() string {
	parts := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		parts[i] = a.String()
	}
	if len(n.Keys) == 0 {
		return "agg " + strings.Join(parts, ", ")
	}
	return "group by " + strings.Join(n.Keys, ", ") + " agg " + strings.Join(parts, ", ")
}

// Distinct removes duplicate rows.
type Distinct struct {
	child Node
	sch   schema.Schema
}

// NewDistinct builds a duplicate-elimination node.
func NewDistinct(child Node) (*Distinct, error) {
	return &Distinct{child: child, sch: child.Schema()}, nil
}

// Kind implements Node.
func (n *Distinct) Kind() OpKind { return KDistinct }

// Schema implements Node.
func (n *Distinct) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Distinct) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Distinct) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KDistinct, len(c), 1); err != nil {
		return nil, err
	}
	return NewDistinct(c[0])
}

// Describe implements Node.
func (n *Distinct) Describe() string { return "distinct" }

// SortSpec is one sort key.
type SortSpec struct {
	Col  string
	Desc bool
}

// Sort orders rows by the given keys (stable).
type Sort struct {
	Specs []SortSpec
	child Node
	sch   schema.Schema
}

// NewSort validates the sort keys.
func NewSort(child Node, specs []SortSpec) (*Sort, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: sort with no keys")
	}
	for _, s := range specs {
		if child.Schema().IndexOf(s.Col) < 0 {
			return nil, fmt.Errorf("core: sort: no column %q", s.Col)
		}
	}
	return &Sort{Specs: append([]SortSpec(nil), specs...), child: child, sch: child.Schema()}, nil
}

// Kind implements Node.
func (n *Sort) Kind() OpKind { return KSort }

// Schema implements Node.
func (n *Sort) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Sort) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Sort) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KSort, len(c), 1); err != nil {
		return nil, err
	}
	return NewSort(c[0], n.Specs)
}

// Describe implements Node.
func (n *Sort) Describe() string {
	parts := make([]string, len(n.Specs))
	for i, s := range n.Specs {
		parts[i] = s.Col
		if s.Desc {
			parts[i] += " desc"
		}
	}
	return "sort " + strings.Join(parts, ", ")
}

// Limit keeps rows [Offset, Offset+N).
type Limit struct {
	N      int64
	Offset int64
	child  Node
	sch    schema.Schema
}

// NewLimit validates the bounds.
func NewLimit(child Node, n, offset int64) (*Limit, error) {
	if n < 0 || offset < 0 {
		return nil, fmt.Errorf("core: limit with negative bound (n=%d offset=%d)", n, offset)
	}
	return &Limit{N: n, Offset: offset, child: child, sch: child.Schema()}, nil
}

// Kind implements Node.
func (n *Limit) Kind() OpKind { return KLimit }

// Schema implements Node.
func (n *Limit) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Limit) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Limit) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KLimit, len(c), 1); err != nil {
		return nil, err
	}
	return NewLimit(c[0], n.N, n.Offset)
}

// Describe implements Node.
func (n *Limit) Describe() string {
	if n.Offset == 0 {
		return fmt.Sprintf("limit %d", n.N)
	}
	return fmt.Sprintf("limit %d offset %d", n.N, n.Offset)
}

// setOpSchema checks union-compatibility (kinds position-wise) and
// returns the left schema.
func setOpSchema(op OpKind, left, right Node) (schema.Schema, error) {
	ls, rs := left.Schema(), right.Schema()
	if ls.Len() != rs.Len() {
		return schema.Schema{}, fmt.Errorf("core: %v arity mismatch: %d vs %d", op, ls.Len(), rs.Len())
	}
	for i := 0; i < ls.Len(); i++ {
		if ls.At(i).Kind != rs.At(i).Kind {
			return schema.Schema{}, fmt.Errorf("core: %v column %d kind mismatch: %v vs %v", op, i, ls.At(i).Kind, rs.At(i).Kind)
		}
	}
	return ls, nil
}

// Union concatenates two union-compatible inputs; All=false deduplicates.
type Union struct {
	All         bool
	left, right Node
	sch         schema.Schema
}

// NewUnion builds a union node.
func NewUnion(left, right Node, all bool) (*Union, error) {
	sch, err := setOpSchema(KUnion, left, right)
	if err != nil {
		return nil, err
	}
	return &Union{All: all, left: left, right: right, sch: sch}, nil
}

// Kind implements Node.
func (n *Union) Kind() OpKind { return KUnion }

// Schema implements Node.
func (n *Union) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Union) Children() []Node { return []Node{n.left, n.right} }

// WithChildren implements Node.
func (n *Union) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KUnion, len(c), 2); err != nil {
		return nil, err
	}
	return NewUnion(c[0], c[1], n.All)
}

// Describe implements Node.
func (n *Union) Describe() string {
	if n.All {
		return "union all"
	}
	return "union"
}

// Except is set difference (left rows not in right, set semantics).
type Except struct {
	left, right Node
	sch         schema.Schema
}

// NewExcept builds a set-difference node.
func NewExcept(left, right Node) (*Except, error) {
	sch, err := setOpSchema(KExcept, left, right)
	if err != nil {
		return nil, err
	}
	return &Except{left: left, right: right, sch: sch}, nil
}

// Kind implements Node.
func (n *Except) Kind() OpKind { return KExcept }

// Schema implements Node.
func (n *Except) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Except) Children() []Node { return []Node{n.left, n.right} }

// WithChildren implements Node.
func (n *Except) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KExcept, len(c), 2); err != nil {
		return nil, err
	}
	return NewExcept(c[0], c[1])
}

// Describe implements Node.
func (n *Except) Describe() string { return "except" }

// Intersect is set intersection (set semantics).
type Intersect struct {
	left, right Node
	sch         schema.Schema
}

// NewIntersect builds a set-intersection node.
func NewIntersect(left, right Node) (*Intersect, error) {
	sch, err := setOpSchema(KIntersect, left, right)
	if err != nil {
		return nil, err
	}
	return &Intersect{left: left, right: right, sch: sch}, nil
}

// Kind implements Node.
func (n *Intersect) Kind() OpKind { return KIntersect }

// Schema implements Node.
func (n *Intersect) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Intersect) Children() []Node { return []Node{n.left, n.right} }

// WithChildren implements Node.
func (n *Intersect) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KIntersect, len(c), 2); err != nil {
		return nil, err
	}
	return NewIntersect(c[0], c[1])
}

// Describe implements Node.
func (n *Intersect) Describe() string { return "intersect" }
