package core

import (
	"fmt"
	"strings"

	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/value"
)

// ---------------------------------------------------------------------------
// Dimension-aware array operators. These realize the paper's proposed
// "fusion of tabular and array models, with 0 or more attributes in a
// table structure being tagged as dimensions, and operators being
// dimension-aware".

// AsArray tags the named int64 attributes as dimensions, turning a table
// into a (sparse) array whose cells are the remaining attributes.
type AsArray struct {
	Dims  []string
	child Node
	sch   schema.Schema
}

// NewAsArray validates that the named attributes exist and are int64.
func NewAsArray(child Node, dims []string) (*AsArray, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("core: asarray with no dimensions")
	}
	sch, err := child.Schema().WithDims(dims...)
	if err != nil {
		return nil, fmt.Errorf("core: asarray: %w", err)
	}
	return &AsArray{Dims: append([]string(nil), dims...), child: child, sch: sch}, nil
}

// Kind implements Node.
func (n *AsArray) Kind() OpKind { return KAsArray }

// Schema implements Node.
func (n *AsArray) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *AsArray) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *AsArray) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KAsArray, len(c), 1); err != nil {
		return nil, err
	}
	return NewAsArray(c[0], n.Dims)
}

// Describe implements Node.
func (n *AsArray) Describe() string { return "asarray " + strings.Join(n.Dims, ", ") }

// DropDims clears every dimension tag, turning an array back into a plain
// relation (coordinates become ordinary attributes).
type DropDims struct {
	child Node
	sch   schema.Schema
}

// NewDropDims builds the tag-clearing node.
func NewDropDims(child Node) (*DropDims, error) {
	return &DropDims{child: child, sch: child.Schema().DropDims()}, nil
}

// Kind implements Node.
func (n *DropDims) Kind() OpKind { return KDropDims }

// Schema implements Node.
func (n *DropDims) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *DropDims) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *DropDims) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KDropDims, len(c), 1); err != nil {
		return nil, err
	}
	return NewDropDims(c[0])
}

// Describe implements Node.
func (n *DropDims) Describe() string { return "dropdims" }

// requireDim returns an error unless the child schema has the named
// dimension attribute.
func requireDim(op OpKind, child Node, dim string) error {
	s := child.Schema()
	i := s.IndexOf(dim)
	if i < 0 {
		return fmt.Errorf("core: %v: no attribute %q", op, dim)
	}
	if !s.At(i).Dim {
		return fmt.Errorf("core: %v: attribute %q is not a dimension", op, dim)
	}
	return nil
}

// SliceDim fixes one dimension at a coordinate and removes it from the
// schema (SciDB's slice).
type SliceDim struct {
	Dim   string
	At    int64
	child Node
	sch   schema.Schema
}

// NewSliceDim validates the dimension and computes the reduced schema.
func NewSliceDim(child Node, dim string, at int64) (*SliceDim, error) {
	if err := requireDim(KSlice, child, dim); err != nil {
		return nil, err
	}
	cs := child.Schema()
	var keep []int
	for i := 0; i < cs.Len(); i++ {
		if cs.At(i).Name != dim {
			keep = append(keep, i)
		}
	}
	return &SliceDim{Dim: dim, At: at, child: child, sch: cs.Project(keep)}, nil
}

// Kind implements Node.
func (n *SliceDim) Kind() OpKind { return KSlice }

// Schema implements Node.
func (n *SliceDim) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *SliceDim) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *SliceDim) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KSlice, len(c), 1); err != nil {
		return nil, err
	}
	return NewSliceDim(c[0], n.Dim, n.At)
}

// Describe implements Node.
func (n *SliceDim) Describe() string { return fmt.Sprintf("slice %s = %d", n.Dim, n.At) }

// DimBound restricts one dimension to the half-open range [Lo, Hi).
type DimBound struct {
	Dim    string
	Lo, Hi int64
}

// Dice restricts dimensions to a box (SciDB's subarray/between). The
// schema is unchanged; coordinates are preserved.
type Dice struct {
	Bounds []DimBound
	child  Node
	sch    schema.Schema
}

// NewDice validates each bound's dimension and range.
func NewDice(child Node, bounds []DimBound) (*Dice, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("core: dice with no bounds")
	}
	for _, b := range bounds {
		if err := requireDim(KDice, child, b.Dim); err != nil {
			return nil, err
		}
		if b.Hi < b.Lo {
			return nil, fmt.Errorf("core: dice: empty range [%d, %d) on %q", b.Lo, b.Hi, b.Dim)
		}
	}
	return &Dice{Bounds: append([]DimBound(nil), bounds...), child: child, sch: child.Schema()}, nil
}

// Kind implements Node.
func (n *Dice) Kind() OpKind { return KDice }

// Schema implements Node.
func (n *Dice) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Dice) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Dice) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KDice, len(c), 1); err != nil {
		return nil, err
	}
	return NewDice(c[0], n.Bounds)
}

// Describe implements Node.
func (n *Dice) Describe() string {
	parts := make([]string, len(n.Bounds))
	for i, b := range n.Bounds {
		parts[i] = fmt.Sprintf("%s ∈ [%d, %d)", b.Dim, b.Lo, b.Hi)
	}
	return "dice " + strings.Join(parts, ", ")
}

// Transpose reorders the dimension attributes to the given permutation
// (the value attributes keep their relative order). For a 2-D array with
// one value attribute this is matrix transposition.
type Transpose struct {
	Perm  []string
	child Node
	sch   schema.Schema
}

// NewTranspose validates that Perm is a permutation of the child's
// dimensions and computes the reordered schema.
func NewTranspose(child Node, perm []string) (*Transpose, error) {
	cs := child.Schema()
	dims := cs.DimNames()
	if len(perm) != len(dims) {
		return nil, fmt.Errorf("core: transpose: %d dims given, child has %d", len(perm), len(dims))
	}
	seen := map[string]bool{}
	for _, p := range perm {
		if err := requireDim(KTranspose, child, p); err != nil {
			return nil, err
		}
		if seen[p] {
			return nil, fmt.Errorf("core: transpose: duplicate dimension %q", p)
		}
		seen[p] = true
	}
	// New attribute order: permuted dims first, then non-dims in child order.
	var attrs []schema.Attribute
	for _, p := range perm {
		attrs = append(attrs, cs.At(cs.IndexOf(p)))
	}
	for i := 0; i < cs.Len(); i++ {
		if !cs.At(i).Dim {
			attrs = append(attrs, cs.At(i))
		}
	}
	sch, err := schema.TryNew(attrs...)
	if err != nil {
		return nil, fmt.Errorf("core: transpose: %w", err)
	}
	return &Transpose{Perm: append([]string(nil), perm...), child: child, sch: sch}, nil
}

// Kind implements Node.
func (n *Transpose) Kind() OpKind { return KTranspose }

// Schema implements Node.
func (n *Transpose) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Transpose) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Transpose) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KTranspose, len(c), 1); err != nil {
		return nil, err
	}
	return NewTranspose(c[0], n.Perm)
}

// Describe implements Node.
func (n *Transpose) Describe() string { return "transpose " + strings.Join(n.Perm, ", ") }

// DimExtent is a window extent along one dimension: Before cells below
// and After cells above the center, inclusive.
type DimExtent struct {
	Dim    string
	Before int64
	After  int64
}

// Window is a moving-window (stencil) aggregate over the dimension box:
// for each cell, aggregate Arg over the neighbourhood defined by the
// extents. Dimensions not listed default to extent 0 (that cell only).
type Window struct {
	Extents []DimExtent
	Agg     AggFunc
	Arg     string // value attribute to aggregate
	As      string // output attribute name
	child   Node
	sch     schema.Schema
}

// NewWindow validates extents and the aggregated attribute.
func NewWindow(child Node, extents []DimExtent, agg AggFunc, arg, as string) (*Window, error) {
	if len(extents) == 0 {
		return nil, fmt.Errorf("core: window with no extents")
	}
	cs := child.Schema()
	for _, e := range extents {
		if err := requireDim(KWindow, child, e.Dim); err != nil {
			return nil, err
		}
		if e.Before < 0 || e.After < 0 {
			return nil, fmt.Errorf("core: window: negative extent on %q", e.Dim)
		}
	}
	ai := cs.IndexOf(arg)
	if ai < 0 {
		return nil, fmt.Errorf("core: window: no attribute %q", arg)
	}
	if cs.At(ai).Dim {
		return nil, fmt.Errorf("core: window: cannot aggregate dimension %q", arg)
	}
	rk, err := agg.ResultKind(cs.At(ai).Kind)
	if err != nil {
		return nil, fmt.Errorf("core: window: %w", err)
	}
	if as == "" {
		return nil, fmt.Errorf("core: window without output name")
	}
	// Output: dimensions + the windowed aggregate.
	var attrs []schema.Attribute
	for _, i := range cs.DimIndexes() {
		attrs = append(attrs, cs.At(i))
	}
	attrs = append(attrs, schema.Attribute{Name: as, Kind: rk})
	sch, err := schema.TryNew(attrs...)
	if err != nil {
		return nil, fmt.Errorf("core: window: %w", err)
	}
	return &Window{
		Extents: append([]DimExtent(nil), extents...),
		Agg:     agg, Arg: arg, As: as,
		child: child, sch: sch,
	}, nil
}

// Kind implements Node.
func (n *Window) Kind() OpKind { return KWindow }

// Schema implements Node.
func (n *Window) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Window) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Window) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KWindow, len(c), 1); err != nil {
		return nil, err
	}
	return NewWindow(c[0], n.Extents, n.Agg, n.Arg, n.As)
}

// Describe implements Node.
func (n *Window) Describe() string {
	parts := make([]string, len(n.Extents))
	for i, e := range n.Extents {
		parts[i] = fmt.Sprintf("%s±(%d,%d)", e.Dim, e.Before, e.After)
	}
	return fmt.Sprintf("window %s %s = %s(%s)", strings.Join(parts, " "), n.As, n.Agg, n.Arg)
}

// ReduceDims aggregates away the listed dimensions, grouping by the
// remaining ones (SciDB's aggregate-over-dimensions). It is semantically
// a GroupAgg keyed on the surviving dimensions — the planner uses exactly
// that desugaring to run it on engines without array support, which is
// the paper's "translatable to ... a combination of such systems".
type ReduceDims struct {
	Over  []string
	Aggs  []AggSpec
	child Node
	sch   schema.Schema
}

// NewReduceDims validates the reduced dimensions and aggregate specs.
func NewReduceDims(child Node, over []string, aggs []AggSpec) (*ReduceDims, error) {
	if len(over) == 0 {
		return nil, fmt.Errorf("core: reducedims with no dimensions")
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("core: reducedims with no aggregates")
	}
	cs := child.Schema()
	reduced := map[string]bool{}
	for _, d := range over {
		if err := requireDim(KReduceDims, child, d); err != nil {
			return nil, err
		}
		reduced[d] = true
	}
	var attrs []schema.Attribute
	for _, i := range cs.DimIndexes() {
		if !reduced[cs.At(i).Name] {
			attrs = append(attrs, cs.At(i))
		}
	}
	for _, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("core: reducedims: aggregate without output name")
		}
		argKind := value.KindNull
		if a.Arg != nil {
			k, err := expr.InferKind(a.Arg, cs)
			if err != nil {
				return nil, fmt.Errorf("core: reducedims %q: %w", a.As, err)
			}
			argKind = k
		} else if a.Func != AggCount {
			return nil, fmt.Errorf("core: reducedims: %v requires an argument", a.Func)
		}
		rk, err := a.Func.ResultKind(argKind)
		if err != nil {
			return nil, fmt.Errorf("core: reducedims %q: %w", a.As, err)
		}
		attrs = append(attrs, schema.Attribute{Name: a.As, Kind: rk})
	}
	sch, err := schema.TryNew(attrs...)
	if err != nil {
		return nil, fmt.Errorf("core: reducedims: %w", err)
	}
	return &ReduceDims{
		Over:  append([]string(nil), over...),
		Aggs:  append([]AggSpec(nil), aggs...),
		child: child, sch: sch,
	}, nil
}

// Kind implements Node.
func (n *ReduceDims) Kind() OpKind { return KReduceDims }

// Schema implements Node.
func (n *ReduceDims) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *ReduceDims) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *ReduceDims) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KReduceDims, len(c), 1); err != nil {
		return nil, err
	}
	return NewReduceDims(c[0], n.Over, n.Aggs)
}

// Describe implements Node.
func (n *ReduceDims) Describe() string {
	parts := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		parts[i] = a.String()
	}
	return "reduce over " + strings.Join(n.Over, ", ") + " agg " + strings.Join(parts, ", ")
}

// Fill densifies the dimension box: every coordinate combination within
// the data's bounding box appears in the output, with missing cells'
// value attributes set to Default. Required before Window/MatMul on
// sparse inputs.
type Fill struct {
	Default value.Value
	child   Node
	sch     schema.Schema
}

// NewFill validates that the child has dimensions and that Default is
// compatible with every non-dimension attribute (or NULL).
func NewFill(child Node, def value.Value) (*Fill, error) {
	cs := child.Schema()
	if cs.NumDims() == 0 {
		return nil, fmt.Errorf("core: fill on input without dimensions")
	}
	if !def.IsNull() {
		for i := 0; i < cs.Len(); i++ {
			a := cs.At(i)
			if a.Dim {
				continue
			}
			if a.Kind != def.Kind() && !(a.Kind.Numeric() && def.Kind().Numeric()) {
				return nil, fmt.Errorf("core: fill default %v incompatible with %s:%v", def, a.Name, a.Kind)
			}
		}
	}
	return &Fill{Default: def, child: child, sch: cs}, nil
}

// Kind implements Node.
func (n *Fill) Kind() OpKind { return KFill }

// Schema implements Node.
func (n *Fill) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Fill) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Fill) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KFill, len(c), 1); err != nil {
		return nil, err
	}
	return NewFill(c[0], n.Default)
}

// Describe implements Node.
func (n *Fill) Describe() string { return "fill " + n.Default.String() }

// Shift translates one dimension's coordinates by a constant offset.
type Shift struct {
	Dim    string
	Offset int64
	child  Node
	sch    schema.Schema
}

// NewShift validates the dimension.
func NewShift(child Node, dim string, offset int64) (*Shift, error) {
	if err := requireDim(KShift, child, dim); err != nil {
		return nil, err
	}
	return &Shift{Dim: dim, Offset: offset, child: child, sch: child.Schema()}, nil
}

// Kind implements Node.
func (n *Shift) Kind() OpKind { return KShift }

// Schema implements Node.
func (n *Shift) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *Shift) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Shift) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KShift, len(c), 1); err != nil {
		return nil, err
	}
	return NewShift(c[0], n.Dim, n.Offset)
}

// Describe implements Node.
func (n *Shift) Describe() string { return fmt.Sprintf("shift %s by %+d", n.Dim, n.Offset) }

// MatMul multiplies two matrices: the left child must be a 2-D array with
// dims (i, k) and one numeric value attribute; the right child dims
// (k, j) likewise, where the left's second dimension name matches the
// right's first. The output has dims (i, j) and value attribute As.
//
// MatMul exists as a first-class node precisely for the paper's intent-
// preservation desideratum: "if the original function is matrix multiply,
// it should be recognizable as such at a server that has a direct
// implementation of matrix multiply". The fluent API can write it
// directly, and the planner recognizes the join+group-sum idiom and
// rewrites it to this node.
type MatMul struct {
	As          string
	left, right Node
	sch         schema.Schema
}

// matrixShape extracts (rowDim, colDim, valueAttr) from a 2-D array
// schema with exactly one numeric value attribute.
func matrixShape(s schema.Schema) (rowDim, colDim string, val schema.Attribute, err error) {
	dims := s.DimNames()
	if len(dims) != 2 {
		return "", "", schema.Attribute{}, fmt.Errorf("need a 2-D array, got %d dims in %v", len(dims), s)
	}
	var vals []schema.Attribute
	for i := 0; i < s.Len(); i++ {
		if !s.At(i).Dim {
			vals = append(vals, s.At(i))
		}
	}
	if len(vals) != 1 {
		return "", "", schema.Attribute{}, fmt.Errorf("need exactly one value attribute, got %d in %v", len(vals), s)
	}
	if !vals[0].Kind.Numeric() {
		return "", "", schema.Attribute{}, fmt.Errorf("value attribute %q must be numeric, got %v", vals[0].Name, vals[0].Kind)
	}
	return dims[0], dims[1], vals[0], nil
}

// NewMatMul validates both operand shapes and the shared inner dimension.
func NewMatMul(left, right Node, as string) (*MatMul, error) {
	if as == "" {
		as = "v"
	}
	li, lk, _, err := matrixShape(left.Schema())
	if err != nil {
		return nil, fmt.Errorf("core: matmul left: %w", err)
	}
	rk, rj, _, err := matrixShape(right.Schema())
	if err != nil {
		return nil, fmt.Errorf("core: matmul right: %w", err)
	}
	if lk != rk {
		return nil, fmt.Errorf("core: matmul inner dimension mismatch: left %q vs right %q", lk, rk)
	}
	outI, outJ := li, rj
	if outI == outJ {
		outJ = outJ + "_r"
	}
	sch, err := schema.TryNew(
		schema.Attribute{Name: outI, Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: outJ, Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: as, Kind: value.KindFloat64},
	)
	if err != nil {
		return nil, fmt.Errorf("core: matmul: %w", err)
	}
	return &MatMul{As: as, left: left, right: right, sch: sch}, nil
}

// Kind implements Node.
func (n *MatMul) Kind() OpKind { return KMatMul }

// Schema implements Node.
func (n *MatMul) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *MatMul) Children() []Node { return []Node{n.left, n.right} }

// WithChildren implements Node.
func (n *MatMul) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KMatMul, len(c), 2); err != nil {
		return nil, err
	}
	return NewMatMul(c[0], c[1], n.As)
}

// Describe implements Node.
func (n *MatMul) Describe() string { return "matmul as " + n.As }

// ElemWise aligns two arrays on their (identical) dimension lists and
// applies a binary operator to their single value attributes, producing
// value attribute As. Cells present in only one input are dropped (inner
// alignment); use Fill to densify first for outer behaviour.
type ElemWise struct {
	Op          value.BinOp
	As          string
	left, right Node
	sch         schema.Schema
}

// NewElemWise validates dimension alignment and operand kinds.
func NewElemWise(left, right Node, op value.BinOp, as string) (*ElemWise, error) {
	if as == "" {
		as = "v"
	}
	ls, rs := left.Schema(), right.Schema()
	ld, rd := ls.DimNames(), rs.DimNames()
	if len(ld) == 0 {
		return nil, fmt.Errorf("core: elemwise: left input has no dimensions")
	}
	if len(ld) != len(rd) {
		return nil, fmt.Errorf("core: elemwise: dimension count mismatch: %v vs %v", ld, rd)
	}
	for i := range ld {
		if ld[i] != rd[i] {
			return nil, fmt.Errorf("core: elemwise: dimension mismatch at %d: %q vs %q", i, ld[i], rd[i])
		}
	}
	_, _, lval, err := valueAttr1(ls)
	if err != nil {
		return nil, fmt.Errorf("core: elemwise left: %w", err)
	}
	_, _, rval, err := valueAttr1(rs)
	if err != nil {
		return nil, fmt.Errorf("core: elemwise right: %w", err)
	}
	rk, err := op.ResultKind(lval.Kind, rval.Kind)
	if err != nil {
		return nil, fmt.Errorf("core: elemwise: %w", err)
	}
	var attrs []schema.Attribute
	for _, i := range ls.DimIndexes() {
		attrs = append(attrs, ls.At(i))
	}
	attrs = append(attrs, schema.Attribute{Name: as, Kind: rk})
	sch, err := schema.TryNew(attrs...)
	if err != nil {
		return nil, fmt.Errorf("core: elemwise: %w", err)
	}
	return &ElemWise{Op: op, As: as, left: left, right: right, sch: sch}, nil
}

// valueAttr1 returns the single non-dimension attribute of a schema with
// any number of dims.
func valueAttr1(s schema.Schema) (nDims int, idx int, attr schema.Attribute, err error) {
	var vals []int
	for i := 0; i < s.Len(); i++ {
		if !s.At(i).Dim {
			vals = append(vals, i)
		}
	}
	if len(vals) != 1 {
		return 0, 0, schema.Attribute{}, fmt.Errorf("need exactly one value attribute, got %d in %v", len(vals), s)
	}
	return s.NumDims(), vals[0], s.At(vals[0]), nil
}

// Kind implements Node.
func (n *ElemWise) Kind() OpKind { return KElemWise }

// Schema implements Node.
func (n *ElemWise) Schema() schema.Schema { return n.sch }

// Children implements Node.
func (n *ElemWise) Children() []Node { return []Node{n.left, n.right} }

// WithChildren implements Node.
func (n *ElemWise) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KElemWise, len(c), 2); err != nil {
		return nil, err
	}
	return NewElemWise(c[0], c[1], n.Op, n.As)
}

// Describe implements Node.
func (n *ElemWise) Describe() string {
	return fmt.Sprintf("elemwise %s = l %s r", n.As, n.Op)
}
