package core

import "fmt"

// The paper asks for one algebra spanning "data at rest and data in
// motion". Stream windows are the algebra-level bridge: a StreamWindow
// spec turns an unbounded stream into a sequence of bounded relations,
// each of which the ordinary operators (Filter, GroupAgg, Join, ...)
// evaluate unchanged. The spec lives in core so both the streaming
// runtime (internal/stream) and future planner rules speak the same
// vocabulary.

// StreamWindowKind enumerates how a stream is cut into windows.
type StreamWindowKind uint8

// Window kinds.
const (
	// WindowTumbling partitions event time into fixed, non-overlapping
	// intervals of Size units: [0,Size), [Size,2*Size), ...
	WindowTumbling StreamWindowKind = iota
	// WindowSliding covers event time with overlapping intervals of Size
	// units whose starts are Slide units apart; an event belongs to every
	// window whose interval contains its timestamp.
	WindowSliding
	// WindowCount groups every Size consecutive events (arrival order
	// after the stateless stages), independent of event time.
	WindowCount
)

// String names the window kind.
func (k StreamWindowKind) String() string {
	switch k {
	case WindowTumbling:
		return "tumbling"
	case WindowSliding:
		return "sliding"
	case WindowCount:
		return "count"
	}
	return fmt.Sprintf("windowkind(%d)", uint8(k))
}

// StreamWindow is a validated window specification. Size and Slide are in
// event-time units for time windows (whatever unit the stream's time
// column carries) and in events for count windows.
type StreamWindow struct {
	Kind  StreamWindowKind
	Size  int64
	Slide int64 // sliding windows only; Slide == Size degenerates to tumbling
}

// NewTumblingWindow validates a tumbling window of the given size.
func NewTumblingWindow(size int64) (StreamWindow, error) {
	w := StreamWindow{Kind: WindowTumbling, Size: size, Slide: size}
	return w, w.Validate()
}

// NewSlidingWindow validates a sliding window: slide must be positive and
// no larger than size (gaps would silently drop events).
func NewSlidingWindow(size, slide int64) (StreamWindow, error) {
	w := StreamWindow{Kind: WindowSliding, Size: size, Slide: slide}
	return w, w.Validate()
}

// NewCountWindow validates a count window of n events.
func NewCountWindow(n int64) (StreamWindow, error) {
	w := StreamWindow{Kind: WindowCount, Size: n}
	return w, w.Validate()
}

// Validate checks the spec's invariants.
func (w StreamWindow) Validate() error {
	switch w.Kind {
	case WindowTumbling:
		if w.Size <= 0 {
			return fmt.Errorf("core: tumbling window size must be positive, got %d", w.Size)
		}
	case WindowSliding:
		if w.Size <= 0 {
			return fmt.Errorf("core: sliding window size must be positive, got %d", w.Size)
		}
		if w.Slide <= 0 || w.Slide > w.Size {
			return fmt.Errorf("core: sliding window slide must be in (0, size], got slide=%d size=%d", w.Slide, w.Size)
		}
	case WindowCount:
		if w.Size <= 0 {
			return fmt.Errorf("core: count window size must be positive, got %d", w.Size)
		}
	default:
		return fmt.Errorf("core: unknown window kind %v", w.Kind)
	}
	return nil
}

// String renders the spec.
func (w StreamWindow) String() string {
	switch w.Kind {
	case WindowSliding:
		return fmt.Sprintf("sliding(%d, %d)", w.Size, w.Slide)
	case WindowCount:
		return fmt.Sprintf("count(%d)", w.Size)
	}
	return fmt.Sprintf("tumbling(%d)", w.Size)
}

// TimeBased reports whether the window is driven by event time (and thus
// by watermarks) rather than by arrival count.
func (w StreamWindow) TimeBased() bool { return w.Kind != WindowCount }

// Assign appends to dst the start coordinates of every window containing
// event time t, in ascending order, and returns dst. Window [start,
// start+Size) contains t iff start <= t < start+Size. Only meaningful for
// time-based windows.
func (w StreamWindow) Assign(dst []int64, t int64) []int64 {
	switch w.Kind {
	case WindowTumbling:
		return append(dst, floorMultiple(t, w.Size))
	case WindowSliding:
		hi := floorMultiple(t, w.Slide)
		// Walk down from the latest window start covering t; collect in
		// ascending order.
		n := len(dst)
		for start := hi; start > t-w.Size; start -= w.Slide {
			dst = append(dst, start)
		}
		// Reverse the appended run.
		for i, j := n, len(dst)-1; i < j; i, j = i+1, j-1 {
			dst[i], dst[j] = dst[j], dst[i]
		}
		return dst
	}
	return dst
}

// floorMultiple rounds t down to a multiple of size (toward negative
// infinity, so pre-epoch timestamps window correctly).
func floorMultiple(t, size int64) int64 {
	m := t % size
	if m < 0 {
		m += size
	}
	return t - m
}
