package core

import (
	"fmt"

	"nexus/internal/schema"
)

// ---------------------------------------------------------------------------
// Control iteration. The paper: "Data algebras rightly encapsulate 'data
// iteration', but many areas, such as graph analytics and data mining,
// require repeated execution of an expression until some convergence
// criterion is met."

// MetricKind selects the convergence metric of an Iterate.
type MetricKind uint8

// Convergence metrics: norms of the per-key delta of a numeric column
// between successive iterations, or the count of changed rows.
const (
	MetricL1 MetricKind = iota
	MetricL2
	MetricLInf
	MetricRowDelta
)

// String returns the metric's name.
func (m MetricKind) String() string {
	switch m {
	case MetricL1:
		return "l1"
	case MetricL2:
		return "l2"
	case MetricLInf:
		return "linf"
	case MetricRowDelta:
		return "rowdelta"
	}
	return fmt.Sprintf("metric(%d)", uint8(m))
}

// ParseMetric parses a metric name.
func ParseMetric(s string) (MetricKind, error) {
	switch s {
	case "l1":
		return MetricL1, nil
	case "l2":
		return MetricL2, nil
	case "linf":
		return MetricLInf, nil
	case "rowdelta":
		return MetricRowDelta, nil
	}
	return MetricL1, fmt.Errorf("core: unknown convergence metric %q", s)
}

// Convergence is the stopping rule of an Iterate: stop when the metric of
// column Col between iteration t and t-1 drops to Tol or below. For the
// norm metrics the inputs are matched positionally after sorting by all
// non-Col columns, so the state relation must have a stable key.
type Convergence struct {
	Metric MetricKind
	Col    string
	Tol    float64
}

// String renders the rule.
func (c Convergence) String() string {
	return fmt.Sprintf("%s(Δ%s) <= %g", c.Metric, c.Col, c.Tol)
}

// Iterate repeatedly evaluates Body, in which Var(LoopVar) denotes the
// previous iteration's result, starting from Init, until the convergence
// rule fires or MaxIters is reached. The schema of the loop is Init's
// schema; Body must produce the same schema (so the loop is well-typed at
// every step).
type Iterate struct {
	LoopVar  string
	MaxIters int
	Conv     *Convergence // nil = run exactly MaxIters
	init     Node
	body     Node
	sch      schema.Schema
}

// NewIterate validates the loop: body schema must match init schema
// (ignoring dimension tags), the loop variable must be referenced with
// the right schema, and the convergence column (if any) must be numeric.
func NewIterate(init, body Node, loopVar string, maxIters int, conv *Convergence) (*Iterate, error) {
	if loopVar == "" {
		return nil, fmt.Errorf("core: iterate with empty loop variable")
	}
	if maxIters <= 0 {
		return nil, fmt.Errorf("core: iterate with non-positive max iterations %d", maxIters)
	}
	is, bs := init.Schema(), body.Schema()
	if !is.EqualIgnoreDims(bs) {
		return nil, fmt.Errorf("core: iterate body schema %v does not match init schema %v", bs, is)
	}
	// Every Var(loopVar) inside body must carry the init schema. Vars with
	// other names are allowed (enclosing Let bindings).
	var varErr error
	Walk(body, func(n Node) bool {
		if v, ok := n.(*Var); ok && v.Name == loopVar {
			if !v.Schema().EqualIgnoreDims(is) {
				varErr = fmt.Errorf("core: iterate: var %q has schema %v, want %v", loopVar, v.Schema(), is)
				return false
			}
		}
		return true
	})
	if varErr != nil {
		return nil, varErr
	}
	if conv != nil {
		i := is.IndexOf(conv.Col)
		if conv.Metric != MetricRowDelta {
			if i < 0 {
				return nil, fmt.Errorf("core: iterate: no convergence column %q", conv.Col)
			}
			if !is.At(i).Kind.Numeric() {
				return nil, fmt.Errorf("core: iterate: convergence column %q must be numeric, got %v", conv.Col, is.At(i).Kind)
			}
		}
		if conv.Tol < 0 {
			return nil, fmt.Errorf("core: iterate: negative tolerance %g", conv.Tol)
		}
	}
	return &Iterate{
		LoopVar: loopVar, MaxIters: maxIters, Conv: conv,
		init: init, body: body, sch: is,
	}, nil
}

// Kind implements Node.
func (n *Iterate) Kind() OpKind { return KIterate }

// Schema implements Node.
func (n *Iterate) Schema() schema.Schema { return n.sch }

// Children implements Node. Children are [init, body].
func (n *Iterate) Children() []Node { return []Node{n.init, n.body} }

// Init returns the initial-state plan.
func (n *Iterate) Init() Node { return n.init }

// Body returns the loop-body plan.
func (n *Iterate) Body() Node { return n.body }

// WithChildren implements Node.
func (n *Iterate) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KIterate, len(c), 2); err != nil {
		return nil, err
	}
	return NewIterate(c[0], c[1], n.LoopVar, n.MaxIters, n.Conv)
}

// Describe implements Node.
func (n *Iterate) Describe() string {
	s := fmt.Sprintf("iterate %s max %d", n.LoopVar, n.MaxIters)
	if n.Conv != nil {
		s += " until " + n.Conv.String()
	}
	return s
}

// Let binds a sub-plan to a name: In may reference it via Var(Name). The
// binding is evaluated once (common subexpression / DAG support).
type Let struct {
	Name  string
	bound Node
	in    Node
	sch   schema.Schema
}

// NewLet validates that Vars named Name inside In carry the bound plan's
// schema.
func NewLet(name string, bound, in Node) (*Let, error) {
	if name == "" {
		return nil, fmt.Errorf("core: let with empty name")
	}
	bs := bound.Schema()
	var varErr error
	Walk(in, func(n Node) bool {
		if v, ok := n.(*Var); ok && v.Name == name {
			if !v.Schema().EqualIgnoreDims(bs) {
				varErr = fmt.Errorf("core: let: var %q has schema %v, want %v", name, v.Schema(), bs)
				return false
			}
		}
		return true
	})
	if varErr != nil {
		return nil, varErr
	}
	return &Let{Name: name, bound: bound, in: in, sch: in.Schema()}, nil
}

// Kind implements Node.
func (n *Let) Kind() OpKind { return KLet }

// Schema implements Node.
func (n *Let) Schema() schema.Schema { return n.sch }

// Children implements Node. Children are [bound, in].
func (n *Let) Children() []Node { return []Node{n.bound, n.in} }

// Bound returns the bound plan.
func (n *Let) Bound() Node { return n.bound }

// In returns the plan that consumes the binding.
func (n *Let) In() Node { return n.in }

// WithChildren implements Node.
func (n *Let) WithChildren(c []Node) (Node, error) {
	if err := checkArity(KLet, len(c), 2); err != nil {
		return nil, err
	}
	return NewLet(n.Name, c[0], c[1])
}

// Describe implements Node.
func (n *Let) Describe() string { return "let " + n.Name }

// FreeVars returns the names of Var nodes in the plan that are not bound
// by an enclosing Iterate or Let; a shippable plan must have none.
func FreeVars(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var visit func(n Node, bound map[string]bool)
	visit = func(n Node, bound map[string]bool) {
		switch x := n.(type) {
		case *Var:
			if !bound[x.Name] && !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
			return
		case *Iterate:
			visit(x.init, bound)
			b2 := withName(bound, x.LoopVar)
			visit(x.body, b2)
			return
		case *Let:
			visit(x.bound, bound)
			b2 := withName(bound, x.Name)
			visit(x.in, b2)
			return
		}
		for _, c := range n.Children() {
			visit(c, bound)
		}
	}
	visit(n, map[string]bool{})
	sortStrings(out)
	return out
}

func withName(m map[string]bool, name string) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	out[name] = true
	return out
}
