package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the
// Prometheus text exposition format (version 0.0.4): counters and
// gauges as single samples, histograms as cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m := f.children[k]
			labels := renderLabels(f.labels, k)
			var err error
			switch x := m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labels, x.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labels, x.Value())
			case *FuncGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(x.Value()))
			case *Histogram:
				err = writePromHistogram(w, f.name, f.labels, k, x)
			}
			if err != nil {
				f.mu.Unlock()
				return err
			}
		}
		f.mu.Unlock()
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, labelNames []string, key string, h *Histogram) error {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		labels := renderLabelsWith(labelNames, key, "le", le)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, cum); err != nil {
			return err
		}
	}
	labels := renderLabels(labelNames, key)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// renderLabels renders {a="x",b="y"} from the family's label names and
// a child key, or "" when unlabeled.
func renderLabels(names []string, key string) string {
	return renderLabelsWith(names, key, "", "")
}

func renderLabelsWith(names []string, key, extraName, extraVal string) string {
	var vals []string
	if key != "" {
		vals = strings.Split(key, "\xff")
	}
	if len(vals) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		fmt.Fprintf(&b, "%s=%s", n, strconv.Quote(v))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", extraName, strconv.Quote(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// BucketCount is one cumulative histogram bucket in a JSON snapshot:
// the count of observations at or under the upper bound LE ("+Inf"
// for the terminal bucket). Buckets render in ascending bound order —
// stable across processes and scrapes.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramStats is the JSON summary of one histogram child.
type HistogramStats struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	P999    float64       `json:"p999"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Stats summarizes a histogram for JSON exposition and bench output.
// Buckets are cumulative and sorted ascending by bound (bounds are
// sorted once at construction, so iteration order is the sort order).
func (h *Histogram) Stats() HistogramStats {
	p50, p95, p99, p999 := h.Quantiles()
	buckets := make([]BucketCount, 0, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		buckets = append(buckets, BucketCount{LE: le, Count: cum})
	}
	return HistogramStats{Count: h.Count(), Sum: h.Sum(), P50: p50, P95: p95, P99: p99, P999: p999,
		Buckets: buckets}
}

// MetricSnapshot is one family in a Snapshot. Values maps a rendered
// label string (e.g. `{dataset="sales"}`, or "" for unlabeled) to an
// int64 for counters/gauges or a HistogramStats for histograms.
type MetricSnapshot struct {
	Type   string         `json:"type"`
	Help   string         `json:"help,omitempty"`
	Values map[string]any `json:"values"`
}

// Snapshot captures every metric in the registry as plain data, the
// payload of /debug/stats.
func (r *Registry) Snapshot() map[string]MetricSnapshot {
	out := make(map[string]MetricSnapshot)
	for _, f := range r.sortedFamilies() {
		ms := MetricSnapshot{Type: f.typ, Help: f.help, Values: make(map[string]any)}
		f.mu.Lock()
		for k, m := range f.children {
			label := renderLabels(f.labels, k)
			switch x := m.(type) {
			case *Counter:
				ms.Values[label] = x.Value()
			case *Gauge:
				ms.Values[label] = x.Value()
			case *FuncGauge:
				ms.Values[label] = x.Value()
			case *Histogram:
				ms.Values[label] = x.Stats()
			}
		}
		f.mu.Unlock()
		out[f.name] = ms
	}
	return out
}
