package obs

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCardinalityCap: past a vec's cap, unseen label sets aggregate
// under the "(other)" child instead of minting new series — a tenant
// creating datasets in a loop cannot bloat /metrics.
func TestCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("nexus_card_total", "per-dataset", "dataset").Cap(3)
	for i := 0; i < 10; i++ {
		v.With(fmt.Sprintf("ds%d", i)).Inc()
	}
	// Established children keep counting after the cap hits.
	v.With("ds0").Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	series := regexp.MustCompile(`nexus_card_total\{dataset="([^"]+)"\} (\d+)`).FindAllStringSubmatch(body, -1)
	got := map[string]int{}
	for _, m := range series {
		n, _ := strconv.Atoi(m[2])
		got[m[1]] = n
	}
	// Cap 3 = ds0..ds2 plus the overflow child ds3..ds9 share.
	want := map[string]int{"ds0": 2, "ds1": 1, "ds2": 1, CardinalityOverflow: 7}
	if len(got) != len(want) {
		t.Fatalf("series = %v, want %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("series %q = %d, want %d (all: %v)", k, got[k], n, got)
		}
	}

	// The overflow child is shared: a repeat stranger lands on it too.
	before := got[CardinalityOverflow]
	v.With("ds7").Add(5)
	sb.Reset()
	_ = reg.WritePrometheus(&sb)
	over := regexp.MustCompile(`nexus_card_total\{dataset="\(other\)"\} (\d+)`).FindStringSubmatch(sb.String())
	if over == nil {
		t.Fatal("overflow series vanished")
	}
	if n, _ := strconv.Atoi(over[1]); n != before+5 {
		t.Fatalf("overflow = %d, want %d", n, before+5)
	}
}

// TestCapOnGaugeAndHistogramVecs: the cap applies uniformly across vec
// types (the heat metrics use all three).
func TestCapOnGaugeAndHistogramVecs(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("nexus_gcap", "g", "k").Cap(1)
	gv.With("a").Set(1)
	gv.With("b").Set(9) // overflow
	hv := reg.HistogramVec("nexus_hcap", "h", []float64{1, 10}, "k").Cap(1)
	hv.With("a").Observe(0.5)
	hv.With("b").Observe(0.5) // overflow

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`nexus_gcap{k="(other)"} 9`,
		`nexus_hcap_count{k="(other)"} 1`,
		`nexus_hcap_count{k="a"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestBucketOrderStable: bucket bounds sort once at registration, so
// Stats() and the Prometheus text agree on one ascending order even
// when the caller registers bounds shuffled.
func TestBucketOrderStable(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("nexus_shuffled_seconds", "x", []float64{5, 0.1, 1, 0.5})
	for _, v := range []float64{0.05, 0.3, 0.7, 2, 10} {
		h.Observe(v)
	}

	st := h.Stats()
	wantLE := []string{"0.1", "0.5", "1", "5", "+Inf"}
	if len(st.Buckets) != len(wantLE) {
		t.Fatalf("got %d buckets, want %d", len(st.Buckets), len(wantLE))
	}
	prev := int64(-1)
	for i, b := range st.Buckets {
		if b.LE != wantLE[i] {
			t.Fatalf("bucket[%d].LE = %q, want %q", i, b.LE, wantLE[i])
		}
		if b.Count < prev {
			t.Fatalf("bucket counts not cumulative: %+v", st.Buckets)
		}
		prev = b.Count
	}
	if st.Buckets[len(st.Buckets)-1].Count != st.Count {
		t.Fatal("terminal +Inf bucket must equal total count")
	}

	// The Prometheus text renders the same ascending le= order.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	les := regexp.MustCompile(`nexus_shuffled_seconds_bucket\{le="([^"]+)"\}`).FindAllStringSubmatch(sb.String(), -1)
	if len(les) != len(wantLE) {
		t.Fatalf("exposition has %d buckets, want %d:\n%s", len(les), len(wantLE), sb.String())
	}
	for i, m := range les {
		if m[1] != wantLE[i] {
			t.Fatalf("exposition bucket[%d] le=%q, want %q", i, m[1], wantLE[i])
		}
	}
}

// TestBuildInfoGauges: nexus_build_info carries identity in labels
// with value 1, nexus_uptime_seconds advances on its own, and
// registration is idempotent.
func TestBuildInfoGauges(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "v1.2.3")
	RegisterBuildInfo(reg, "v1.2.3") // idempotent

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if !regexp.MustCompile(`nexus_build_info\{version="v1\.2\.3",go="go[^"]+"\} 1`).MatchString(body) {
		t.Fatalf("build info missing or malformed:\n%s", body)
	}
	if c := strings.Count(body, `version="v1.2.3"`); c != 1 {
		t.Fatalf("build info registered %d times, want 1", c)
	}

	up := regexp.MustCompile(`nexus_uptime_seconds ([0-9.e+-]+)`).FindStringSubmatch(body)
	if up == nil {
		t.Fatalf("uptime gauge missing:\n%s", body)
	}
	v1, err := strconv.ParseFloat(up[1], 64)
	if err != nil || v1 < 0 {
		t.Fatalf("uptime %q unparseable: %v", up[1], err)
	}
	time.Sleep(10 * time.Millisecond)
	sb.Reset()
	_ = reg.WritePrometheus(&sb)
	up = regexp.MustCompile(`nexus_uptime_seconds ([0-9.e+-]+)`).FindStringSubmatch(sb.String())
	v2, _ := strconv.ParseFloat(up[1], 64)
	if v2 <= v1 {
		t.Fatalf("uptime did not advance: %v -> %v", v1, v2)
	}

	// Empty version defaults rather than rendering an empty label.
	reg2 := NewRegistry()
	RegisterBuildInfo(reg2, "")
	snap := reg2.Snapshot()
	if _, ok := snap["nexus_build_info"].Values[`{version="dev",go="`+goVersionLabel()+`"}`]; !ok {
		t.Fatalf("empty version did not default to dev: %v", snap["nexus_build_info"].Values)
	}
}

// goVersionLabel mirrors what RegisterBuildInfo stamps.
func goVersionLabel() string {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "probe")
	for label := range reg.Snapshot()["nexus_build_info"].Values {
		m := regexp.MustCompile(`go="([^"]+)"`).FindStringSubmatch(label)
		if m != nil {
			return m[1]
		}
	}
	return ""
}

// TestSidecarUnderConcurrentMutation scrapes every sidecar endpoint in
// a loop while writers register new vec children, bump counters, and
// observe histograms — the -race proof that exposition and mutation
// can overlap, and that every scrape parses.
func TestSidecarUnderConcurrentMutation(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "test")
	cv := reg.CounterVec("nexus_mut_total", "c", "ds").Cap(8)
	hv := reg.HistogramVec("nexus_mut_seconds", "h", LatencyBuckets(), "ds").Cap(8)
	srv := httptest.NewServer(NewHandler(reg, map[string]HealthCheck{"ok": func() error { return nil }}))
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ds := fmt.Sprintf("ds%d", (w*97+i)%16) // half land past the cap
				cv.With(ds).Inc()
				hv.With(ds).Observe(float64(i%100) / 1000)
			}
		}(w)
	}

	client := http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(500 * time.Millisecond)
	scrapes := 0
	for time.Now().Before(deadline) {
		for _, path := range []string{"/metrics", "/debug/stats", "/healthz"} {
			resp, err := client.Get(srv.URL + path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			body := make([]byte, 0, 1<<16)
			buf := make([]byte, 4096)
			for {
				n, rerr := resp.Body.Read(buf)
				body = append(body, buf[:n]...)
				if rerr != nil {
					break
				}
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("%s = %d during mutation", path, resp.StatusCode)
			}
			if path == "/metrics" {
				checkScrapeConsistent(t, string(body))
			}
			scrapes++
		}
	}
	close(stop)
	writers.Wait()
	if scrapes < 6 {
		t.Fatalf("only %d scrapes completed", scrapes)
	}

	// The cap held under concurrency: at most 8 distinct ds labels plus
	// the overflow child.
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	labels := map[string]bool{}
	for _, m := range regexp.MustCompile(`nexus_mut_total\{ds="([^"]+)"\}`).FindAllStringSubmatch(sb.String(), -1) {
		labels[m[1]] = true
	}
	if len(labels) > 9 {
		t.Fatalf("cap leaked: %d distinct children: %v", len(labels), labels)
	}
	if !labels[CardinalityOverflow] {
		t.Fatalf("no overflow child after 16-dataset churn: %v", labels)
	}
}

// checkScrapeConsistent asserts structural invariants of one scrape:
// cumulative bucket counts ascend with their bounds.
func checkScrapeConsistent(t *testing.T, body string) {
	t.Helper()
	series := regexp.MustCompile(`nexus_mut_seconds_bucket\{ds="([^"]+)",le="([^"]+)"\} (\d+)`).
		FindAllStringSubmatch(body, -1)
	type bk struct {
		le    float64
		count int64
	}
	perDS := map[string][]bk{}
	for _, m := range series {
		le := math.Inf(1)
		if m[2] != "+Inf" {
			var err error
			le, err = strconv.ParseFloat(m[2], 64)
			if err != nil {
				t.Fatalf("bad le %q", m[2])
			}
		}
		n, _ := strconv.ParseInt(m[3], 10, 64)
		perDS[m[1]] = append(perDS[m[1]], bk{le, n})
	}
	for ds, bks := range perDS {
		if !sort.SliceIsSorted(bks, func(i, j int) bool { return bks[i].le < bks[j].le }) {
			t.Fatalf("%s: buckets out of bound order: %v", ds, bks)
		}
		for i := 1; i < len(bks); i++ {
			if bks[i].count < bks[i-1].count {
				t.Fatalf("%s: bucket counts not cumulative: %v", ds, bks)
			}
		}
	}
}
