// Package obs is nexus's dependency-free observability core: atomic
// counters, gauges, and fixed-bucket histograms behind a Registry that
// every layer registers into. The hot-path cost of a metric update is
// one (histogram: two) atomic adds — cheap enough to leave on in the
// kernels the BENCH suites measure. Exposition (Prometheus text,
// JSON snapshot, /healthz) lives in expo.go and http.go.
package obs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus contract; this is not
// enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed, ascending buckets and
// supports quantile extraction by linear interpolation within the
// crossing bucket. Observe costs two atomic adds plus a CAS loop for
// the float sum; all methods are safe for concurrent use.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; an implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); linear scan beats binary search for the
	// common small-latency case and branch-predicts well.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts, interpolating linearly within the bucket the quantile falls
// in. Returns 0 with no observations. Samples beyond the last bound
// are reported as the last finite bound (the histogram cannot see
// further).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Quantiles returns the standard tail summary: p50, p95, p99, p999.
func (h *Histogram) Quantiles() (p50, p95, p99, p999 float64) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Quantile(0.999)
}

// ExpBuckets returns n upper bounds starting at start, each factor
// times the previous — the usual shape for latency and size
// histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets spans 10µs to ~80s in powers of two — wide enough
// for an fsync and a slow compaction alike.
func LatencyBuckets() []float64 { return ExpBuckets(10e-6, 2, 24) }

// SizeBuckets spans 1 to ~4M in powers of four, for batch sizes and
// byte counts per event.
func SizeBuckets() []float64 { return ExpBuckets(1, 4, 12) }

// metric is anything a family can hold.
type metric interface{}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric with help text, a type, and zero or more
// labeled children.
type family struct {
	name   string
	help   string
	typ    string
	labels []string // label names, fixed at registration
	bounds []float64

	mu       sync.Mutex
	children map[string]metric // key: rendered label values ("" when unlabeled)
	maxCard  int               // 0 = unbounded; else overflow to "(other)"
}

// CardinalityOverflow is the label value that absorbs children beyond
// a vec's cardinality cap, mirroring the admission layer's bucket for
// unconfigured tenants.
const CardinalityOverflow = "(other)"

func (f *family) child(labelVals []string, create func() metric) metric {
	key := labelKey(labelVals)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[key]
	if !ok {
		if f.maxCard > 0 && len(f.labels) > 0 && len(f.children) >= f.maxCard {
			// At the cap, every unseen label set aggregates into one
			// overflow child, so a tenant minting thousands of datasets
			// cannot bloat /metrics.
			over := make([]string, len(f.labels))
			for i := range over {
				over[i] = CardinalityOverflow
			}
			key = labelKey(over)
			if m, ok = f.children[key]; ok {
				return m
			}
		}
		m = create()
		f.children[key] = m
	}
	return m
}

// setCap bounds the number of distinct label sets the family tracks.
func (f *family) setCap(n int) {
	f.mu.Lock()
	f.maxCard = n
	f.mu.Unlock()
}

// labelKey joins label values with a separator that cannot appear in
// a rendered label (0xff); the exposition layer re-splits it.
func labelKey(vals []string) string {
	if len(vals) == 0 {
		return ""
	}
	return strings.Join(vals, "\xff")
}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry. All registration methods are idempotent for the same
// (name, type) pair and panic on a type conflict — metric names are
// program constants, so a conflict is a programming error.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every nexus layer registers
// into; the nexus-server HTTP sidecar exposes it.
var Default = NewRegistry()

func (r *Registry) family(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		// Sort bounds at registration so every child histogram and both
		// exposition formats agree on one stable bucket order.
		if len(bounds) > 0 {
			b := make([]float64, len(bounds))
			copy(b, bounds)
			sort.Float64s(b)
			bounds = b
		}
		f = &family{name: name, help: help, typ: typ, labels: labels, bounds: bounds,
			children: make(map[string]metric)}
		r.families[name] = f
		return f
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
			name, typ, len(labels), f.typ, len(f.labels)))
	}
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil, nil)
	return f.child(nil, func() metric { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return f.child(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, typeHistogram, nil, bounds)
	return f.child(nil, func() metric { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a counter family with labels; With resolves one child.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typeCounter, labelNames, nil)}
}

// With returns the child counter for the given label values (one per
// label name, in registration order). Children are created on first
// use and cached; hot paths should hold on to the returned Counter.
func (v *CounterVec) With(labelVals ...string) *Counter {
	return v.f.child(labelVals, func() metric { return &Counter{} }).(*Counter)
}

// Cap bounds the vec to n distinct label sets; label sets past the
// cap aggregate under the "(other)" child. Returns the vec for
// fluent registration.
func (v *CounterVec) Cap(n int) *CounterVec { v.f.setCap(n); return v }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, typeGauge, labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return v.f.child(labelVals, func() metric { return &Gauge{} }).(*Gauge)
}

// Cap bounds the vec to n distinct label sets (see CounterVec.Cap).
func (v *GaugeVec) Cap(n int) *GaugeVec { v.f.setCap(n); return v }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, typeHistogram, labelNames, bounds)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return v.f.child(labelVals, func() metric { return newHistogram(v.f.bounds) }).(*Histogram)
}

// Cap bounds the vec to n distinct label sets (see CounterVec.Cap).
func (v *HistogramVec) Cap(n int) *HistogramVec { v.f.setCap(n); return v }

// FuncGauge is a gauge whose value is computed at collection time —
// for values the process already knows (uptime, ring depth) where a
// stored gauge would need a refresh goroutine.
type FuncGauge struct {
	fn func() float64
}

// Value evaluates the gauge.
func (g *FuncGauge) Value() float64 { return g.fn() }

// GaugeFunc registers an unlabeled gauge computed by fn at every
// collection.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *FuncGauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return f.child(nil, func() metric { return &FuncGauge{fn: fn} }).(*FuncGauge)
}

// processStart anchors the uptime gauge.
var processStart = time.Now()

// RegisterBuildInfo registers the fleet-inventory gauges:
// nexus_build_info{version,go} 1 and nexus_uptime_seconds. Idempotent
// per registry.
func RegisterBuildInfo(r *Registry, version string) {
	if version == "" {
		version = "dev"
	}
	r.GaugeVec("nexus_build_info",
		"Build inventory; value is always 1, identity is in the labels.",
		"version", "go").With(version, runtime.Version()).Set(1)
	r.GaugeFunc("nexus_uptime_seconds",
		"Seconds since the process started.",
		func() float64 { return time.Since(processStart).Seconds() })
}
