package obs

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives counters, gauges, histograms and vec
// lookups from many goroutines; run under -race this is the data-race
// proof for the whole hot path, and the final totals prove no update
// was lost.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "total ops")
	g := reg.Gauge("hammer_inflight", "in flight")
	h := reg.Histogram("hammer_seconds", "latency", LatencyBuckets())
	cv := reg.CounterVec("hammer_by_kind_total", "per kind", "kind")
	hv := reg.HistogramVec("hammer_by_kind_seconds", "per kind latency", LatencyBuckets(), "kind")

	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			kind := []string{"append", "scan", "subscribe"}[id%3]
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(j%100) * 1e-4)
				cv.With(kind).Inc()
				hv.With(kind).Observe(1e-3)
				g.Dec()
			}
		}(i)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: got %d want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge should settle at 0, got %d", got)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram lost observations: got %d want %d", got, goroutines*perG)
	}
	var byKind int64
	for _, k := range []string{"append", "scan", "subscribe"} {
		byKind += cv.With(k).Value()
	}
	if byKind != goroutines*perG {
		t.Fatalf("counter vec lost updates: got %d want %d", byKind, goroutines*perG)
	}
	// Concurrent float-sum accumulation must not lose additions.
	wantSum := float64(goroutines*perG) * 1e-3
	if got := hv.With("append").Sum() + hv.With("scan").Sum() + hv.With("subscribe").Sum(); !near(got, wantSum, 1e-9) {
		t.Fatalf("histogram sum drifted: got %g want %g", got, wantSum)
	}
}

func near(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps*(1+b)
}

// TestHistogramQuantileOracle checks bucket-interpolated quantiles
// against exact quantiles of the sorted sample. The histogram can
// only be as precise as its buckets, so the tolerance is one bucket
// width (factor 2 exponential buckets -> estimate within [oracle/2,
// oracle*2] plus interpolation slack).
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHistogram(LatencyBuckets())
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform latencies between 20µs and 1s — spans many buckets.
		v := 20e-6 * pow(50000, rng.Float64())
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		oracle := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		if got < oracle/2.1 || got > oracle*2.1 {
			t.Errorf("q=%v: histogram %g vs oracle %g outside one bucket width", q, got, oracle)
		}
	}
	if h.Count() != int64(len(samples)) {
		t.Fatalf("count %d want %d", h.Count(), len(samples))
	}
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// TestHistogramQuantileEdges covers empty and overflow behavior.
func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(1000) // beyond the last bound -> overflow bucket
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("overflow quantile = %g, want last bound 4", got)
	}
	h2 := newHistogram([]float64{10})
	for i := 0; i < 100; i++ {
		h2.Observe(5)
	}
	q := h2.Quantile(0.5)
	if q <= 0 || q > 10 {
		t.Fatalf("interpolated quantile %g out of bucket [0,10]", q)
	}
}

// TestPrometheusExposition checks the text format: HELP/TYPE headers,
// label rendering, cumulative histogram buckets with +Inf, _sum and
// _count series.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nexus_test_total", "a counter").Add(3)
	reg.GaugeVec("nexus_test_subs", "a gauge", "dataset").With("sales").Set(2)
	h := reg.Histogram("nexus_test_seconds", "a histogram", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP nexus_test_total a counter",
		"# TYPE nexus_test_total counter",
		"nexus_test_total 3",
		`nexus_test_subs{dataset="sales"} 2`,
		`nexus_test_seconds_bucket{le="0.001"} 1`,
		`nexus_test_seconds_bucket{le="0.01"} 1`,
		`nexus_test_seconds_bucket{le="+Inf"} 2`,
		"nexus_test_seconds_sum 0.5005",
		"nexus_test_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestHandlerEndpoints exercises /metrics, /healthz and /debug/stats
// through the HTTP handler, including a failing health check.
func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nexus_up_total", "ups").Inc()
	healthy := true
	h := NewHandler(reg, map[string]HealthCheck{
		"wal": func() error {
			if !healthy {
				return errUnhealthy
			}
			return nil
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "nexus_up_total 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/debug/stats"); code != 200 || !strings.Contains(body, "nexus_up_total") {
		t.Fatalf("/debug/stats = %d %q", code, body)
	}
	healthy = false
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "wal") {
		t.Fatalf("unhealthy /healthz = %d %q, want 503 naming the check", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

var errUnhealthy = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string { return "wal poisoned" }

// TestServe binds an ephemeral port and round-trips /metrics.
func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nexus_serve_total", "x").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
