package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nexus/internal/obs"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(16)
	tr.SetService("svc-a")

	root := tr.NewRoot("query")
	if root == nil {
		t.Fatal("NewRoot returned nil on an enabled-agnostic path")
	}
	root.Set(String("dataset", "sales"), Int("rows", 42))
	child := root.Child("exec:scan")
	if child == nil {
		t.Fatal("Child returned nil under a live root")
	}
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace id %v != root %v", child.TraceID(), root.TraceID())
	}
	child.End(errors.New("boom"))
	child.End(nil) // idempotent: second End must not record again
	root.End(nil)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans, want 2 (End must be idempotent)", len(spans))
	}
	if tr.Total() != 2 {
		t.Fatalf("Total = %d, want 2", tr.Total())
	}
	// Oldest first: the child ended before the root.
	c, r := spans[0], spans[1]
	if c.Name != "exec:scan" || r.Name != "query" {
		t.Fatalf("span order/names wrong: %q, %q", c.Name, r.Name)
	}
	if c.TraceID != r.TraceID {
		t.Fatalf("trace ids differ: %s vs %s", c.TraceID, r.TraceID)
	}
	if c.ParentID != r.SpanID {
		t.Fatalf("child parent %d != root span id %d", c.ParentID, r.SpanID)
	}
	if c.Error != "boom" {
		t.Fatalf("child error = %q, want boom", c.Error)
	}
	if c.Service != "svc-a" || r.Service != "svc-a" {
		t.Fatalf("service not stamped: %q / %q", c.Service, r.Service)
	}
	var gotDS, gotRows bool
	for _, a := range r.Attrs {
		switch a.Key {
		case "dataset":
			gotDS = a.Value == "sales"
		case "rows":
			gotRows = a.Value == int64(42)
		}
	}
	if !gotDS || !gotRows {
		t.Fatalf("root attrs missing: %+v", r.Attrs)
	}
}

func TestEnabledGatesRootsOnly(t *testing.T) {
	tr := NewTracer(16)
	if tr.Enabled() {
		t.Fatal("tracer starts enabled")
	}
	if sp := tr.StartRoot("ambient"); sp != nil {
		t.Fatal("StartRoot must return nil while disabled")
	}
	// Explicit opt-in roots and remote-context children ignore the flag.
	root := tr.NewRoot("explicit")
	if root == nil {
		t.Fatal("NewRoot must work while disabled")
	}
	if sp := tr.StartChild(root.Context(), "child"); sp == nil {
		t.Fatal("StartChild under a valid context must work while disabled")
	}
	if sp := tr.StartChild(Context{}, "orphan"); sp != nil {
		t.Fatal("StartChild with no trace must return nil")
	}
	tr.SetEnabled(true)
	if sp := tr.StartRoot("ambient"); sp == nil {
		t.Fatal("StartRoot must work once enabled")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.SetService("x")
	tr.SetEnabled(true)
	if tr.Enabled() || tr.Service() != "" || tr.Total() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must read as empty")
	}
	if tr.StartRoot("a") != nil || tr.NewRoot("b") != nil || tr.StartChild(Context{}, "c") != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	if tr.Emit(Context{}, "d", time.Now(), 0, nil, nil) != 0 {
		t.Fatal("nil tracer Emit must return 0")
	}

	var sp *Span
	sp.Set(String("k", "v"))
	sp.End(errors.New("ignored"))
	if sp.Child("sub") != nil {
		t.Fatal("nil span Child must be nil")
	}
	if sp.Context().Valid() || !sp.TraceID().IsZero() || !sp.Start().IsZero() {
		t.Fatal("nil span must read as zero")
	}
}

func TestEmit(t *testing.T) {
	tr := NewTracer(16)
	root := tr.NewRoot("root")
	start := time.Now().Add(-time.Second)
	id := tr.Emit(root.Context(), "exec:join", start, 250*time.Millisecond,
		[]Attr{Int("calls", 3)}, errors.New("spill"))
	if id == 0 {
		t.Fatal("Emit under a valid context must record")
	}
	if got := tr.Emit(Context{}, "orphan", start, 0, nil, nil); got != 0 {
		t.Fatalf("Emit with no trace recorded span %d", got)
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("ring holds %d spans, want 1", len(spans))
	}
	sd := spans[0]
	if sd.SpanID != id || sd.ParentID != root.Context().SpanID {
		t.Fatalf("emit ids wrong: %+v", sd)
	}
	if sd.Duration != 250*time.Millisecond || !sd.Start.Equal(start) {
		t.Fatalf("emit timing wrong: %+v", sd)
	}
	if sd.Error != "spill" {
		t.Fatalf("emit error = %q", sd.Error)
	}
}

func TestRingBounded(t *testing.T) {
	tr := NewTracer(4)
	root := tr.NewRoot("r")
	ctx := root.Context()
	for i := 0; i < 10; i++ {
		tr.Emit(ctx, fmt.Sprintf("s%d", i), time.Now(), 0, nil, nil)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want cap 4", len(spans))
	}
	// Oldest first, and only the newest four survive.
	for i, sd := range spans {
		want := fmt.Sprintf("s%d", 6+i)
		if sd.Name != want {
			t.Fatalf("spans[%d] = %q, want %q", i, sd.Name, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10 (drops must still count)", tr.Total())
	}
}

func TestParseTraceID(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	id := tr.StartRoot("r").TraceID()
	back, ok := ParseTraceID(id.String())
	if !ok || back != id {
		t.Fatalf("round trip failed: %v -> %s -> %v", id, id.String(), back)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("g", 32), strings.Repeat("ab", 15)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID(%q) accepted garbage", bad)
		}
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(16)
	tr.SetService("primary")
	a := tr.NewRoot("trace-a")
	b := tr.NewRoot("trace-b")
	tr.Emit(a.Context(), "a-child", time.Now(), time.Millisecond, nil, nil)
	a.End(nil)
	b.End(nil)

	h := TraceHandler(tr)
	get := func(url string) (*httptest.ResponseRecorder, tracesPayload) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var p tracesPayload
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
				t.Fatalf("bad JSON from %s: %v", url, err)
			}
		}
		return rec, p
	}

	rec, all := get("/debug/traces")
	if rec.Code != 200 || all.Service != "primary" || all.Total != 3 || len(all.Spans) != 3 {
		t.Fatalf("unfiltered: code=%d payload=%+v", rec.Code, all)
	}
	for i := 1; i < len(all.Spans); i++ {
		if all.Spans[i].Start.Before(all.Spans[i-1].Start) {
			t.Fatal("spans not sorted by start time")
		}
	}

	rec, one := get("/debug/traces?trace=" + a.TraceID().String())
	if rec.Code != 200 || len(one.Spans) != 2 {
		t.Fatalf("filtered: code=%d spans=%d, want 2", rec.Code, len(one.Spans))
	}
	for _, sd := range one.Spans {
		if sd.TraceID != a.TraceID().String() {
			t.Fatalf("filter leaked foreign span %+v", sd)
		}
	}

	rec, _ = get("/debug/traces?trace=nothex")
	if rec.Code != 400 {
		t.Fatalf("bad trace id served %d, want 400", rec.Code)
	}
}

func TestOpsRegistrySnapshotAndHandler(t *testing.T) {
	reg := NewOpsRegistry(obs.NewRegistry())
	tr := NewTracer(4)
	root := tr.NewRoot("sub")

	q := reg.Begin("query", "acme", "sales", -1, Context{})
	sub := reg.Begin("subscription", "acme", "events", 2, root.Context())
	sub.AddRows(10)
	sub.AddBytes(4096)
	sub.SetCredit(7)
	sub.SetWatermark(1000)
	sub.SetWatermark(2000) // advance: staleness clock restarts

	infos := reg.Snapshot()
	if len(infos) != 2 {
		t.Fatalf("snapshot holds %d ops, want 2", len(infos))
	}
	if infos[0].ID > infos[1].ID {
		t.Fatal("snapshot not ordered oldest-first")
	}
	qi, si := infos[0], infos[1]
	if qi.Kind != "query" || qi.Dataset != "sales" || qi.Partition != -1 || qi.Credit != -1 {
		t.Fatalf("query op wrong: %+v", qi)
	}
	if qi.TraceID != "" || qi.Watermark != nil {
		t.Fatalf("untraced query op leaked trace/watermark: %+v", qi)
	}
	if si.Kind != "subscription" || si.Rows != 10 || si.Bytes != 4096 || si.Credit != 7 {
		t.Fatalf("sub op wrong: %+v", si)
	}
	if si.TraceID != root.TraceID().String() || si.SpanID != root.Context().SpanID {
		t.Fatalf("sub op trace identity wrong: %+v", si)
	}
	if si.Watermark == nil || *si.Watermark != 2000 {
		t.Fatalf("sub watermark = %v, want 2000", si.Watermark)
	}
	if got := sub.Context(); got != root.Context() {
		t.Fatalf("op Context() = %+v, want %+v", got, root.Context())
	}

	rec := httptest.NewRecorder()
	OpsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/ops", nil))
	var p opsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad /debug/ops JSON: %v", err)
	}
	if p.Count != 2 || len(p.Ops) != 2 {
		t.Fatalf("/debug/ops payload wrong: %+v", p)
	}

	q.End(nil)
	sub.End(nil)
	if left := reg.Snapshot(); len(left) != 0 {
		t.Fatalf("%d ops leaked after End", len(left))
	}
}

func TestSlowOpLog(t *testing.T) {
	reg := NewOpsRegistry(obs.NewRegistry())
	var buf bytes.Buffer
	reg.SetSlowOpOutput(&buf)
	reg.SetSlowOpThreshold(time.Nanosecond)
	if reg.SlowOpThreshold() != time.Nanosecond {
		t.Fatal("threshold not set")
	}

	op := reg.Begin("query", "acme", "sales", 3, Context{})
	op.AddRows(5)
	time.Sleep(time.Millisecond)
	op.End(errors.New("deadline"))

	line := strings.TrimSpace(buf.String())
	var got slowOpLine
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("slow-op line is not JSON: %q (%v)", line, err)
	}
	if got.Kind != "query" || got.Tenant != "acme" || got.Dataset != "sales" ||
		got.Partition != 3 || got.Rows != 5 || got.Error != "deadline" {
		t.Fatalf("slow-op line wrong: %+v", got)
	}
	if got.DurationMs <= 0 {
		t.Fatalf("slow-op duration %v not positive", got.DurationMs)
	}

	// Rate limit: a storm of slow ops logs at most the burst, and the
	// next emitted line carries the suppressed count.
	buf.Reset()
	for i := 0; i < 50; i++ {
		reg.Begin("query", "", "storm", -1, Context{}).End(nil)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) > slowBurst {
		t.Fatalf("storm logged %d lines, burst cap is %v", len(lines), slowBurst)
	}
	if reg.slowDrops.Load() == 0 {
		t.Fatal("storm recorded no drops")
	}

	// Off means off.
	buf.Reset()
	reg.SetSlowOpThreshold(0)
	reg.Begin("query", "", "quiet", -1, Context{}).End(nil)
	if buf.Len() != 0 {
		t.Fatalf("disabled slow-op log still wrote %q", buf.String())
	}
}

func TestNilOpsRegistry(t *testing.T) {
	var reg *OpsRegistry
	reg.SetSlowOpThreshold(time.Second)
	if reg.SlowOpThreshold() != 0 || reg.Snapshot() != nil {
		t.Fatal("nil registry must read as empty")
	}
	op := reg.Begin("query", "", "x", -1, Context{})
	if op != nil {
		t.Fatal("nil registry Begin must return nil op")
	}
	op.AddRows(1)
	op.AddBytes(1)
	op.SetCredit(1)
	op.SetWatermark(1)
	if op.Context().Valid() {
		t.Fatal("nil op context must be zero")
	}
	op.End(nil)
}

// TestConcurrentTracerAndOps hammers the tracer ring and the ops
// registry from many goroutines while readers snapshot — the -race
// tripwire for the sidecar serving /debug/traces and /debug/ops during
// live traffic.
func TestConcurrentTracerAndOps(t *testing.T) {
	tr := NewTracer(64)
	tr.SetEnabled(true)
	reg := NewOpsRegistry(obs.NewRegistry())
	reg.SetSlowOpOutput(&bytes.Buffer{})
	reg.SetSlowOpThreshold(time.Nanosecond)

	const writers = 8
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < 200; i++ {
				root := tr.StartRoot("op")
				root.Set(Int("i", int64(i)))
				child := root.Child("child")
				op := reg.Begin("query", "t", fmt.Sprintf("ds%d", w%3), int32(w), root.Context())
				op.AddRows(1)
				op.SetWatermark(int64(i))
				tr.Emit(root.Context(), "emit", time.Now(), time.Microsecond, nil, nil)
				child.End(nil)
				op.End(nil)
				root.End(nil)
			}
		}(w)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.Spans()
			_ = tr.Total()
			_ = reg.Snapshot()
		}
	}()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if got := len(tr.Spans()); got != 64 {
		t.Fatalf("ring holds %d spans after hammer, want full cap 64", got)
	}
	if left := reg.Snapshot(); len(left) != 0 {
		t.Fatalf("%d ops leaked after hammer", len(left))
	}
}
