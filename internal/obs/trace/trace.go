// Package trace is a dependency-free distributed-tracing core: a span
// model (trace id, span id, parent, start/duration, typed attrs), a
// bounded in-memory ring of finished spans per process, and JSON
// export over the obs sidecar. Context propagates across the wire
// protocol as a compact trailing field (see wire.TraceCtx), so one
// trace id follows a query or stream window from the client session
// through the mux handshake, server admission, exec kernels, storage
// scans, partition fan-out, replication pulls, and failover redials.
//
// Everything is nil-safe: a nil *Span (tracing disabled, or a request
// that carried no context) makes every method a no-op, so call sites
// never branch on "is tracing on".
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across every process it
// touches. Zero means "no trace".
type TraceID [16]byte

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// String renders the id as lowercase hex — the form used in JSON
// export and in ?trace= queries against /debug/traces.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is the zero (no-trace) id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// ParseTraceID parses the lowercase-hex form produced by String.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, true
}

// Context is the propagated half of a span: the trace it belongs to
// and the span that becomes the parent of whatever happens next.
type Context struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context carries a real trace.
func (c Context) Valid() bool { return !c.TraceID.IsZero() }

// Attr is one typed key/value attribute on a span. Value is one of
// string, int64, float64, or bool.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// String, Int, Float, and Bool build typed attrs.
func String(k, v string) Attr        { return Attr{Key: k, Value: v} }
func Int(k string, v int64) Attr     { return Attr{Key: k, Value: v} }
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr     { return Attr{Key: k, Value: v} }

// SpanData is one finished span as it sits in the ring and as it
// exports to JSON at /debug/traces.
type SpanData struct {
	TraceID  string        `json:"trace_id"`
	SpanID   SpanID        `json:"span_id"`
	ParentID SpanID        `json:"parent_id,omitempty"`
	Service  string        `json:"service,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// DefaultRingSize bounds the per-process finished-span ring.
const DefaultRingSize = 4096

// Tracer owns a bounded ring of finished spans. The enabled flag
// gates *root* span creation (client-side overhead control); spans
// for requests that already carry a valid remote context are always
// recorded, so a server with tracing "off" still contributes its part
// of a trace some client started.
type Tracer struct {
	enabled atomic.Bool
	service atomic.Pointer[string]

	mu      sync.Mutex
	ring    []SpanData
	next    int
	total   uint64 // finished spans ever, for drop accounting
	nextSp  atomic.Uint64
	ringCap int
}

// NewTracer builds a tracer with a ring of the given capacity
// (DefaultRingSize if size <= 0).
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	t := &Tracer{ring: make([]SpanData, 0, size), ringCap: size}
	t.nextSp.Store(1)
	return t
}

// Default is the process-wide tracer, mirroring obs.Default.
var Default = NewTracer(DefaultRingSize)

// SetService names the process ("primary", "replica-1") on every span
// it records.
func (t *Tracer) SetService(name string) {
	if t == nil {
		return
	}
	t.service.Store(&name)
}

// Service returns the configured service name.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	if p := t.service.Load(); p != nil {
		return *p
	}
	return ""
}

// SetEnabled turns root-span creation on or off.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether root-span creation is on.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// newTraceID draws a random 16-byte trace id.
func newTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand failing is unrecoverable for uniqueness, but a
		// trace id only needs to be distinct within one debug session;
		// fall back to the span counter.
		for i := range id {
			id[i] = byte(i + 1)
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID { return SpanID(t.nextSp.Add(1)) }

// StartRoot opens a new trace. Returns nil when the tracer is nil or
// disabled — the nil span absorbs every later call.
func (t *Tracer) StartRoot(name string) *Span {
	if !t.Enabled() {
		return nil
	}
	return &Span{
		tr:    t,
		ctx:   Context{TraceID: newTraceID(), SpanID: t.newSpanID()},
		name:  name,
		start: time.Now(),
	}
}

// NewRoot opens a new trace regardless of the enabled flag — the
// explicit opt-in path (Query.Trace, the shell's \trace) where the
// caller asked for this specific trace by name, as opposed to the
// ambient sampling StartRoot honors.
func (t *Tracer) NewRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:    t,
		ctx:   Context{TraceID: newTraceID(), SpanID: t.newSpanID()},
		name:  name,
		start: time.Now(),
	}
}

// StartChild opens a span under a propagated context. Returns nil
// when the context carries no trace — a request without a trace field
// costs nothing. Child spans record regardless of the enabled flag:
// the sampling decision was the root's to make.
func (t *Tracer) StartChild(parent Context, name string) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return &Span{
		tr:     t,
		ctx:    Context{TraceID: parent.TraceID, SpanID: t.newSpanID()},
		parent: parent.SpanID,
		name:   name,
		start:  time.Now(),
	}
}

// Emit records an already-measured child span — the bridge from
// exec.Trace node stats, which are collected during execution and
// converted to spans after the fact.
func (t *Tracer) Emit(parent Context, name string, start time.Time, dur time.Duration, attrs []Attr, err error) SpanID {
	if t == nil || !parent.Valid() {
		return 0
	}
	id := t.newSpanID()
	sd := SpanData{
		TraceID:  parent.TraceID.String(),
		SpanID:   id,
		ParentID: parent.SpanID,
		Service:  t.Service(),
		Name:     name,
		Start:    start,
		Duration: dur,
		Attrs:    attrs,
	}
	if err != nil {
		sd.Error = err.Error()
	}
	t.record(sd)
	return id
}

// record appends a finished span to the bounded ring, overwriting the
// oldest entry once full.
func (t *Tracer) record(sd SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < t.ringCap {
		t.ring = append(t.ring, sd)
		return
	}
	t.ring[t.next] = sd
	t.next = (t.next + 1) % t.ringCap
}

// Spans snapshots every finished span in the ring, oldest first.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// TraceSpans returns the ring's spans for one trace id, oldest first.
func (t *Tracer) TraceSpans(id TraceID) []SpanData {
	want := id.String()
	var out []SpanData
	for _, sd := range t.Spans() {
		if sd.TraceID == want {
			out = append(out, sd)
		}
	}
	return out
}

// Total reports how many spans have ever finished (ring drops are
// Total - len(Spans())).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Span is one live operation. All methods are safe on a nil receiver.
type Span struct {
	tr     *Tracer
	ctx    Context
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Context returns the propagation context for children of this span.
// A nil span returns the zero (no-trace) context.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return s.ctx
}

// TraceID returns the span's trace id (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.ctx.TraceID
}

// Start returns when the span opened.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Set appends typed attributes to the span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Child opens a sub-span of this span on the same tracer.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartChild(s.ctx, name)
}

// End finishes the span with the given error (nil for success) and
// records it in the tracer's ring. End is idempotent: only the first
// call records.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	sd := SpanData{
		TraceID:  s.ctx.TraceID.String(),
		SpanID:   s.ctx.SpanID,
		ParentID: s.parent,
		Service:  s.tr.Service(),
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	}
	if err != nil {
		sd.Error = err.Error()
	}
	s.tr.record(sd)
}
