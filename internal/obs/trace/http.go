package trace

import (
	"encoding/json"
	"net/http"
	"sort"
)

// tracesPayload is the JSON shape of /debug/traces.
type tracesPayload struct {
	Service string     `json:"service,omitempty"`
	Total   uint64     `json:"total_spans"`
	Spans   []SpanData `json:"spans"`
}

// TraceHandler serves the tracer's finished-span ring as JSON.
// `?trace=<hex id>` filters to one trace; unfiltered output is the
// whole ring, oldest first. Spans within one response sort by start
// time so a trace reads top-down as a tree walk.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spans []SpanData
		if q := r.URL.Query().Get("trace"); q != "" {
			id, ok := ParseTraceID(q)
			if !ok {
				http.Error(w, "bad trace id (want 32 hex chars)", http.StatusBadRequest)
				return
			}
			spans = t.TraceSpans(id)
		} else {
			spans = t.Spans()
		}
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tracesPayload{Service: t.Service(), Total: t.Total(), Spans: spans})
	})
}

// opsPayload is the JSON shape of /debug/ops.
type opsPayload struct {
	Count int      `json:"count"`
	Ops   []OpInfo `json:"ops"`
}

// OpsHandler serves the live in-flight operation listing as JSON.
func OpsHandler(reg *OpsRegistry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ops := reg.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(opsPayload{Count: len(ops), Ops: ops})
	})
}
