package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/obs"
)

// heatCap bounds the per-dataset/per-partition heat vec cardinality;
// past it, heat aggregates under "(other)".
const heatCap = 256

// OpsRegistry tracks every in-flight query, append, and subscription
// on a node: who (tenant), what (dataset, partition), how far (rows,
// bytes, credit, watermark lag), and which span it belongs to. It is
// the data behind /debug/ops, the sampled slow-op log, and the
// per-dataset heat counters a future rebalancer will consume.
type OpsRegistry struct {
	mu     sync.Mutex
	ops    map[uint64]*Op
	nextID atomic.Uint64

	slowNs atomic.Int64 // 0 = slow-op log off

	// Rate limit for slow-op lines: a small token bucket so a storm of
	// slow ops logs a sample, not a flood.
	slowMu     sync.Mutex
	slowTokens float64
	slowLast   time.Time
	slowOut    io.Writer // JSON lines; defaults to stderr
	slowDrops  atomic.Int64

	// Heat counters, capped so dataset churn cannot bloat /metrics.
	heatRows  *obs.CounterVec
	heatBytes *obs.CounterVec
	heatLag   *obs.HistogramVec
}

// NewOpsRegistry builds a registry wired to reg's heat vecs (obs.
// Default when reg is nil).
func NewOpsRegistry(reg *obs.Registry) *OpsRegistry {
	if reg == nil {
		reg = obs.Default
	}
	return &OpsRegistry{
		ops:     make(map[uint64]*Op),
		slowOut: os.Stderr,
		heatRows: reg.CounterVec("nexus_heat_rows_total",
			"Rows served per dataset partition (scan results and stream windows).",
			"dataset", "partition").Cap(heatCap),
		heatBytes: reg.CounterVec("nexus_heat_scan_bytes_total",
			"Bytes scanned from storage per dataset partition.",
			"dataset", "partition").Cap(heatCap),
		heatLag: reg.HistogramVec("nexus_heat_sub_lag_seconds",
			"Subscriber watermark lag behind wall clock, per dataset partition.",
			obs.LatencyBuckets(), "dataset", "partition").Cap(heatCap),
	}
}

// DefaultOps is the process-wide ops registry, wired to obs.Default
// lazily so importing this package does not register heat metrics in
// processes that never track ops.
var (
	defaultOps     *OpsRegistry
	defaultOpsOnce sync.Once
)

// Ops returns the process-wide ops registry.
func Ops() *OpsRegistry {
	defaultOpsOnce.Do(func() { defaultOps = NewOpsRegistry(obs.Default) })
	return defaultOps
}

// SetSlowOpThreshold turns the slow-op log on for ops that run at
// least d (0 disables).
func (r *OpsRegistry) SetSlowOpThreshold(d time.Duration) {
	if r != nil {
		r.slowNs.Store(int64(d))
	}
}

// SlowOpThreshold returns the active threshold (0 = off).
func (r *OpsRegistry) SlowOpThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowNs.Load())
}

// SetSlowOpOutput redirects slow-op JSON lines (tests).
func (r *OpsRegistry) SetSlowOpOutput(w io.Writer) {
	r.slowMu.Lock()
	r.slowOut = w
	r.slowMu.Unlock()
}

// Op is one in-flight operation. The counter fields are atomics so
// the hot emit path updates them without the registry lock.
type Op struct {
	reg *OpsRegistry

	ID        uint64
	Kind      string // "query" | "subscription" | "append"
	Tenant    string
	Dataset   string
	Partition int32 // -1 when unpartitioned
	TraceID   string
	SpanID    SpanID
	Started   time.Time

	rows       atomic.Int64
	bytes      atomic.Int64
	credit     atomic.Int64
	watermark  atomic.Int64 // raw event-time watermark
	haveWM     atomic.Bool
	wmAdvanced atomic.Int64 // unix nanos of the last watermark advance

	partLabel string // pre-rendered partition label for heat vecs
	heatRows  *obs.Counter
	heatBytes *obs.Counter
	heatLag   *obs.Histogram
}

// Begin registers an in-flight op. Safe on a nil registry (returns a
// nil Op whose methods no-op).
func (r *OpsRegistry) Begin(kind, tenant, dataset string, partition int32, ctx Context) *Op {
	if r == nil {
		return nil
	}
	ds := dataset
	if ds == "" {
		ds = "(none)"
	}
	part := "-"
	if partition >= 0 {
		part = fmt.Sprintf("%d", partition)
	}
	op := &Op{
		reg:       r,
		ID:        r.nextID.Add(1),
		Kind:      kind,
		Tenant:    tenant,
		Dataset:   ds,
		Partition: partition,
		SpanID:    ctx.SpanID,
		Started:   time.Now(),
		partLabel: part,
		heatRows:  r.heatRows.With(ds, part),
		heatBytes: r.heatBytes.With(ds, part),
		heatLag:   r.heatLag.With(ds, part),
	}
	if ctx.Valid() {
		op.TraceID = ctx.TraceID.String()
	}
	op.credit.Store(-1)
	r.mu.Lock()
	r.ops[op.ID] = op
	r.mu.Unlock()
	return op
}

// AddRows notes rows delivered to the client and feeds dataset heat.
func (o *Op) AddRows(n int64) {
	if o == nil || n <= 0 {
		return
	}
	o.rows.Add(n)
	o.heatRows.Add(n)
}

// AddBytes notes bytes scanned or shipped and feeds dataset heat.
func (o *Op) AddBytes(n int64) {
	if o == nil || n <= 0 {
		return
	}
	o.bytes.Add(n)
	o.heatBytes.Add(n)
}

// SetCredit publishes the subscription's current credit window
// (-1 = not credit-controlled).
func (o *Op) SetCredit(n int64) {
	if o != nil {
		o.credit.Store(n)
	}
}

// SetWatermark publishes the subscription's latest event-time
// watermark. Watermarks are domain time (whatever the stream's time
// column holds), so "lag" is measured as staleness: wall time since
// the watermark last advanced. Each advance feeds the inter-advance
// gap into the per-dataset lag histogram — a subscriber whose
// watermark advances rarely is a lagging subscriber.
func (o *Op) SetWatermark(mark int64) {
	if o == nil {
		return
	}
	now := time.Now().UnixNano()
	if o.haveWM.CompareAndSwap(false, true) {
		o.watermark.Store(mark)
		o.wmAdvanced.Store(now)
		return
	}
	if o.watermark.Swap(mark) != mark {
		prev := o.wmAdvanced.Swap(now)
		if prev > 0 {
			o.heatLag.Observe(float64(now-prev) / 1e9)
		}
	}
}

// Context returns the op's trace context (zero when untraced).
func (o *Op) Context() Context {
	if o == nil || o.TraceID == "" {
		return Context{}
	}
	id, ok := ParseTraceID(o.TraceID)
	if !ok {
		return Context{}
	}
	return Context{TraceID: id, SpanID: o.SpanID}
}

// End removes the op from the registry and, when it ran past the
// slow-op threshold, emits one rate-limited JSON line.
func (o *Op) End(err error) {
	if o == nil {
		return
	}
	o.reg.mu.Lock()
	delete(o.reg.ops, o.ID)
	o.reg.mu.Unlock()
	dur := time.Since(o.Started)
	if thr := o.reg.slowNs.Load(); thr > 0 && int64(dur) >= thr {
		o.reg.logSlow(o, dur, err)
	}
}

// slowOpLine is the JSON-lines schema of the slow-op log.
type slowOpLine struct {
	TS         time.Time `json:"ts"`
	Kind       string    `json:"kind"`
	Tenant     string    `json:"tenant,omitempty"`
	Dataset    string    `json:"dataset"`
	Partition  int32     `json:"partition"`
	DurationMs float64   `json:"duration_ms"`
	Rows       int64     `json:"rows"`
	Bytes      int64     `json:"bytes"`
	TraceID    string    `json:"trace_id,omitempty"`
	Error      string    `json:"error,omitempty"`
	Dropped    int64     `json:"dropped,omitempty"` // lines suppressed since the last emit
}

// slowOp token bucket: at most ~1 line/sec sustained, bursts of 10.
const (
	slowBurst = 10.0
	slowRate  = 1.0 // tokens per second
)

func (r *OpsRegistry) logSlow(o *Op, dur time.Duration, err error) {
	r.slowMu.Lock()
	now := time.Now()
	if r.slowLast.IsZero() {
		r.slowTokens = slowBurst
	} else {
		r.slowTokens += now.Sub(r.slowLast).Seconds() * slowRate
		if r.slowTokens > slowBurst {
			r.slowTokens = slowBurst
		}
	}
	r.slowLast = now
	if r.slowTokens < 1 {
		r.slowMu.Unlock()
		r.slowDrops.Add(1)
		return
	}
	r.slowTokens--
	out := r.slowOut
	r.slowMu.Unlock()

	line := slowOpLine{
		TS:         now,
		Kind:       o.Kind,
		Tenant:     o.Tenant,
		Dataset:    o.Dataset,
		Partition:  o.Partition,
		DurationMs: float64(dur) / float64(time.Millisecond),
		Rows:       o.rows.Load(),
		Bytes:      o.bytes.Load(),
		TraceID:    o.TraceID,
		Dropped:    r.slowDrops.Swap(0),
	}
	if err != nil {
		line.Error = err.Error()
	}
	if b, e := json.Marshal(line); e == nil {
		_, _ = fmt.Fprintf(out, "%s\n", b)
	}
}

// OpInfo is one in-flight op in the /debug/ops JSON listing.
type OpInfo struct {
	ID         uint64    `json:"id"`
	Kind       string    `json:"kind"`
	Tenant     string    `json:"tenant,omitempty"`
	Dataset    string    `json:"dataset"`
	Partition  int32     `json:"partition"`
	Started    time.Time `json:"started"`
	DurationMs float64   `json:"duration_ms"`
	Rows       int64     `json:"rows"`
	Bytes      int64     `json:"bytes"`
	Credit     int64     `json:"credit"` // -1 = not credit-controlled
	Watermark  *int64    `json:"watermark,omitempty"`
	WMStaleMs  float64   `json:"watermark_stale_ms,omitempty"`
	TraceID    string    `json:"trace_id,omitempty"`
	SpanID     SpanID    `json:"span_id,omitempty"`
}

// Snapshot lists every in-flight op, oldest first.
func (r *OpsRegistry) Snapshot() []OpInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ops := make([]*Op, 0, len(r.ops))
	for _, o := range r.ops {
		ops = append(ops, o)
	}
	r.mu.Unlock()
	sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
	now := time.Now()
	out := make([]OpInfo, 0, len(ops))
	for _, o := range ops {
		info := OpInfo{
			ID:         o.ID,
			Kind:       o.Kind,
			Tenant:     o.Tenant,
			Dataset:    o.Dataset,
			Partition:  o.Partition,
			Started:    o.Started,
			DurationMs: float64(now.Sub(o.Started)) / float64(time.Millisecond),
			Rows:       o.rows.Load(),
			Bytes:      o.bytes.Load(),
			Credit:     o.credit.Load(),
			TraceID:    o.TraceID,
			SpanID:     o.SpanID,
		}
		if o.haveWM.Load() {
			wm := o.watermark.Load()
			info.Watermark = &wm
			if adv := o.wmAdvanced.Load(); adv > 0 {
				info.WMStaleMs = float64(now.UnixNano()-adv) / 1e6
			}
		}
		out = append(out, info)
	}
	return out
}
