package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"
)

// HealthCheck probes one aspect of process health; nil means healthy.
type HealthCheck func() error

// Handler serves the observability endpoints for one registry:
//
//	/metrics      Prometheus text exposition
//	/healthz      200 "ok" when every health check passes, else 503
//	              with a JSON map of check name -> error
//	/debug/stats  JSON snapshot of every metric
type Handler struct {
	reg    *Registry
	checks map[string]HealthCheck

	mu     sync.Mutex
	routes map[string]http.Handler
}

// NewHandler builds a Handler over reg with named health checks
// (checks may be nil for a pure metrics endpoint).
func NewHandler(reg *Registry, checks map[string]HealthCheck) *Handler {
	return &Handler{reg: reg, checks: checks}
}

// Handle mounts an extra route on the sidecar — the hook higher
// layers (tracing, live ops) use to expose debug endpoints without
// obs importing them. Exact-path match; later registrations of the
// same path win.
func (h *Handler) Handle(path string, handler http.Handler) {
	h.mu.Lock()
	if h.routes == nil {
		h.routes = make(map[string]http.Handler)
	}
	h.routes[path] = handler
	h.mu.Unlock()
}

// ServeHTTP dispatches the built-in observability routes plus any
// extra routes mounted with Handle.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.reg.WritePrometheus(w)
	case "/healthz":
		h.serveHealth(w)
	case "/debug/stats":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.reg.Snapshot())
	default:
		h.mu.Lock()
		extra := h.routes[r.URL.Path]
		h.mu.Unlock()
		if extra != nil {
			extra.ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	}
}

func (h *Handler) serveHealth(w http.ResponseWriter) {
	failed := make(map[string]string)
	names := make([]string, 0, len(h.checks))
	for name := range h.checks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := h.checks[name](); err != nil {
			failed[name] = err.Error()
		}
	}
	if len(failed) == 0 {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(failed)
}

// Serve binds addr (host:port; port 0 picks a free port) and serves
// the Handler on it in a background goroutine. It returns the bound
// address and a shutdown function.
func Serve(addr string, reg *Registry, checks map[string]HealthCheck) (string, func() error, error) {
	return ServeHandler(addr, NewHandler(reg, checks))
}

// ServeHandler is Serve for a pre-built Handler — use it when extra
// routes (tracing, live ops) were mounted with Handle.
func ServeHandler(addr string, h *Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
