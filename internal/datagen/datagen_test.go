package datagen

import (
	"math"
	"testing"

	"nexus/internal/table"
)

func TestDeterminism(t *testing.T) {
	if !table.EqualRows(Sales(7, 500, 50, 20), Sales(7, 500, 50, 20)) {
		t.Fatal("Sales not deterministic")
	}
	if table.EqualRows(Sales(7, 500, 50, 20), Sales(8, 500, 50, 20)) {
		t.Fatal("seed ignored")
	}
	if !table.EqualRows(ZipfGraph(3, 100, 400), ZipfGraph(3, 100, 400)) {
		t.Fatal("ZipfGraph not deterministic")
	}
}

func TestSalesRanges(t *testing.T) {
	s := Sales(1, 1000, 50, 20)
	if s.NumRows() != 1000 {
		t.Fatal("row count")
	}
	qty := s.ColByName("qty").Ints()
	price := s.ColByName("price").Floats()
	cust := s.ColByName("cust_id").Ints()
	for i := range qty {
		if qty[i] < 1 || qty[i] > 9 {
			t.Fatalf("qty out of range: %d", qty[i])
		}
		if price[i] < 1 || price[i] > 100 {
			t.Fatalf("price out of range: %g", price[i])
		}
		if cust[i] < 0 || cust[i] >= 50 {
			t.Fatalf("cust_id out of range: %d", cust[i])
		}
	}
}

func TestMatrixMatchesDense(t *testing.T) {
	const rows, cols = 9, 7
	sparse := Matrix(5, rows, cols, "i", "j")
	dense := MatrixDense(5, rows, cols)
	if sparse.NumRows() != rows*cols {
		t.Fatal("matrix cardinality")
	}
	is := sparse.ColByName("i").Ints()
	js := sparse.ColByName("j").Ints()
	vs := sparse.ColByName("v").Floats()
	for r := range is {
		if math.Abs(vs[r]-dense[is[r]*cols+js[r]]) > 1e-15 {
			t.Fatalf("cell (%d,%d) differs between representations", is[r], js[r])
		}
	}
	if sparse.Schema().NumDims() != 2 {
		t.Fatal("matrix schema must be dimension-tagged")
	}
}

func TestGraphsExcludeSelfLoops(t *testing.T) {
	for _, g := range []*table.Table{UniformGraph(2, 50, 500), ZipfGraph(2, 50, 500)} {
		src := g.ColByName("src").Ints()
		dst := g.ColByName("dst").Ints()
		for i := range src {
			if src[i] == dst[i] {
				t.Fatal("self loop generated")
			}
			if src[i] < 0 || src[i] >= 50 || dst[i] < 0 || dst[i] >= 50 {
				t.Fatal("vertex out of range")
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := ZipfGraph(4, 1000, 20000)
	indeg := make([]int, 1000)
	for _, d := range g.ColByName("dst").Ints() {
		indeg[d]++
	}
	maxDeg := 0
	for _, d := range indeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Power-law in-degree: the hottest vertex should dominate the mean
	// (mean is 20 here) by a wide margin.
	if maxDeg < 200 {
		t.Fatalf("zipf graph not skewed: max in-degree %d", maxDeg)
	}
}

func TestAdjacencyList(t *testing.T) {
	g := UniformGraph(6, 20, 60)
	adj := AdjacencyList(g, 20)
	total := 0
	for _, out := range adj {
		total += len(out)
	}
	if total != 60 {
		t.Fatalf("adjacency lost edges: %d", total)
	}
}

func TestSeriesAndGridShapes(t *testing.T) {
	s := Series(1, 500)
	if s.NumRows() != 500 || s.Schema().NumDims() != 1 {
		t.Fatal("series shape")
	}
	temps := s.ColByName("temp").Floats()
	for _, v := range temps {
		if v < 10 || v > 30 {
			t.Fatalf("temperature out of plausible band: %g", v)
		}
	}
	g := Grid(1, 8, 9)
	if g.NumRows() != 72 || g.Schema().NumDims() != 2 {
		t.Fatal("grid shape")
	}
}
