// Package datagen generates the deterministic synthetic workloads used
// by the examples, tests and the experiment harness: a small star-schema
// of sales facts with customer and product dimensions, dense random
// matrices, uniform and power-law (Zipf) random graphs, and time-series
// grids for stencil queries. All generators are seeded and reproducible.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Regions used by the sales schema.
var Regions = []string{"EU", "NA", "APAC", "LATAM", "MEA"}

// Categories used by the product dimension.
var Categories = []string{"tools", "books", "games", "garden", "audio"}

// SalesSchema returns the schema of the sales fact table:
// (sale_id, cust_id, prod_id, qty, price, region).
func SalesSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "sale_id", Kind: value.KindInt64},
		schema.Attribute{Name: "cust_id", Kind: value.KindInt64},
		schema.Attribute{Name: "prod_id", Kind: value.KindInt64},
		schema.Attribute{Name: "qty", Kind: value.KindInt64},
		schema.Attribute{Name: "price", Kind: value.KindFloat64},
		schema.Attribute{Name: "region", Kind: value.KindString},
	)
}

// Sales generates n sales facts over nCust customers and nProd products.
func Sales(seed int64, n, nCust, nProd int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int64, n)
	cust := make([]int64, n)
	prod := make([]int64, n)
	qty := make([]int64, n)
	price := make([]float64, n)
	region := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		cust[i] = int64(rng.Intn(nCust))
		prod[i] = int64(rng.Intn(nProd))
		qty[i] = int64(1 + rng.Intn(9))
		price[i] = math.Round(rng.Float64()*9900+100) / 100.0
		region[i] = Regions[rng.Intn(len(Regions))]
	}
	return table.MustNew(SalesSchema(), []*table.Column{
		table.IntColumn(ids),
		table.IntColumn(cust),
		table.IntColumn(prod),
		table.IntColumn(qty),
		table.FloatColumn(price),
		table.StringColumn(region),
	})
}

// CustomersSchema returns (cust_id, name, region, segment).
func CustomersSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "cust_id", Kind: value.KindInt64},
		schema.Attribute{Name: "name", Kind: value.KindString},
		schema.Attribute{Name: "region", Kind: value.KindString},
		schema.Attribute{Name: "segment", Kind: value.KindString},
	)
}

// Customers generates the customer dimension.
func Customers(seed int64, n int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	segments := []string{"consumer", "corporate", "public"}
	ids := make([]int64, n)
	names := make([]string, n)
	region := make([]string, n)
	segment := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		names[i] = fmt.Sprintf("cust-%05d", i)
		region[i] = Regions[rng.Intn(len(Regions))]
		segment[i] = segments[rng.Intn(len(segments))]
	}
	return table.MustNew(CustomersSchema(), []*table.Column{
		table.IntColumn(ids),
		table.StringColumn(names),
		table.StringColumn(region),
		table.StringColumn(segment),
	})
}

// ProductsSchema returns (prod_id, category, cost).
func ProductsSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "prod_id", Kind: value.KindInt64},
		schema.Attribute{Name: "category", Kind: value.KindString},
		schema.Attribute{Name: "cost", Kind: value.KindFloat64},
	)
}

// Products generates the product dimension.
func Products(seed int64, n int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int64, n)
	cat := make([]string, n)
	cost := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		cat[i] = Categories[rng.Intn(len(Categories))]
		cost[i] = math.Round(rng.Float64()*4900+100) / 100.0
	}
	return table.MustNew(ProductsSchema(), []*table.Column{
		table.IntColumn(ids),
		table.StringColumn(cat),
		table.FloatColumn(cost),
	})
}

// MatrixSchema returns the sparse-table schema of a matrix with the given
// dimension names: (i#, j#, v).
func MatrixSchema(iName, jName string) schema.Schema {
	return schema.New(
		schema.Attribute{Name: iName, Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: jName, Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: "v", Kind: value.KindFloat64},
	)
}

// Matrix generates a dense rows×cols matrix in sparse-table form with
// values in [-1, 1).
func Matrix(seed int64, rows, cols int, iName, jName string) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	is := make([]int64, n)
	js := make([]int64, n)
	vs := make([]float64, n)
	idx := 0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			is[idx] = int64(i)
			js[idx] = int64(j)
			vs[idx] = rng.Float64()*2 - 1
			idx++
		}
	}
	return table.MustNew(MatrixSchema(iName, jName), []*table.Column{
		table.IntColumn(is),
		table.IntColumn(js),
		table.FloatColumn(vs),
	})
}

// MatrixDense generates the same matrix as Matrix but as a row-major
// dense slice, for oracle comparisons (same seed ⇒ same values).
func MatrixDense(seed int64, rows, cols int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, rows*cols)
	for i := range out {
		out[i] = rng.Float64()*2 - 1
	}
	return out
}

// EdgeSchema returns the edge-list schema (src, dst).
func EdgeSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "src", Kind: value.KindInt64},
		schema.Attribute{Name: "dst", Kind: value.KindInt64},
	)
}

// UniformGraph generates a directed graph with n vertices and m edges
// chosen uniformly (self-loops excluded, duplicates allowed).
func UniformGraph(seed int64, n, m int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	src := make([]int64, m)
	dst := make([]int64, m)
	for i := 0; i < m; i++ {
		s := rng.Intn(n)
		d := rng.Intn(n)
		for d == s {
			d = rng.Intn(n)
		}
		src[i] = int64(s)
		dst[i] = int64(d)
	}
	return table.MustNew(EdgeSchema(), []*table.Column{
		table.IntColumn(src),
		table.IntColumn(dst),
	})
}

// ZipfGraph generates a directed graph whose in-degree distribution is
// power-law: destination vertices are drawn from a Zipf distribution
// (exponent s≈1.1), sources uniformly. This mimics web/social graphs,
// the motivating workloads for the paper's graph-analytics iteration.
func ZipfGraph(seed int64, n, m int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 1.0, uint64(n-1))
	src := make([]int64, m)
	dst := make([]int64, m)
	for i := 0; i < m; i++ {
		s := rng.Intn(n)
		d := int(zipf.Uint64())
		for d == s {
			d = int(zipf.Uint64())
		}
		src[i] = int64(s)
		dst[i] = int64(d)
	}
	return table.MustNew(EdgeSchema(), []*table.Column{
		table.IntColumn(src),
		table.IntColumn(dst),
	})
}

// AdjacencyList converts an edge table to adjacency-list form for the
// reference oracles.
func AdjacencyList(edges *table.Table, n int) [][]int {
	adj := make([][]int, n)
	src := edges.ColByName("src").Ints()
	dst := edges.ColByName("dst").Ints()
	for i := range src {
		adj[src[i]] = append(adj[src[i]], int(dst[i]))
	}
	return adj
}

// SeriesSchema returns the 1-D time-series schema (t#, temp).
func SeriesSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "t", Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: "temp", Kind: value.KindFloat64},
	)
}

// Series generates a dense 1-D series of length n: a slow sinusoid plus
// noise, the classic sensor-feed shape for window queries.
func Series(seed int64, n int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]int64, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(i)
		vals[i] = 20 + 5*math.Sin(float64(i)/50) + rng.NormFloat64()*0.5
	}
	return table.MustNew(SeriesSchema(), []*table.Column{
		table.IntColumn(ts),
		table.FloatColumn(vals),
	})
}

// GridSchema returns the 2-D grid schema (x#, y#, v).
func GridSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "x", Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: "y", Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: "v", Kind: value.KindFloat64},
	)
}

// Grid generates a dense rows×cols grid of floats in [0, 1).
func Grid(seed int64, rows, cols int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int64, rows*cols)
	ys := make([]int64, rows*cols)
	vs := make([]float64, rows*cols)
	idx := 0
	for x := 0; x < rows; x++ {
		for y := 0; y < cols; y++ {
			xs[idx] = int64(x)
			ys[idx] = int64(y)
			vs[idx] = rng.Float64()
			idx++
		}
	}
	return table.MustNew(GridSchema(), []*table.Column{
		table.IntColumn(xs),
		table.IntColumn(ys),
		table.FloatColumn(vs),
	})
}
