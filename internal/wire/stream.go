// Streaming wire format: subscriptions, result batches, watermarks,
// credits, and the WindowState codec that ships per-window partial
// aggregates between servers — the piece that makes a long-running
// stream a movable object rather than a process-bound one.
package wire

import (
	"fmt"
	"math"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/schema"
	"nexus/internal/stream"
	"nexus/internal/table"
)

// Stream source kinds inside a subscription.
const (
	// StreamSrcDataset replays a dataset stored on the serving provider
	// (optionally filtered to one key partition server-side).
	StreamSrcDataset uint8 = 1
	// StreamSrcPush reads event batches the subscriber publishes over the
	// same connection (MsgStreamPublish).
	StreamSrcPush uint8 = 2
)

// StreamClose modes.
const (
	// CloseEndInput ends a push source's input; the pipeline drains,
	// flushes its final windows and completes normally.
	CloseEndInput uint8 = 1
	// CloseCancel aborts the pipeline; no state is returned.
	CloseCancel uint8 = 2
	// CloseDetach aborts the pipeline and asks for its window state, so
	// the subscriber can resume here or on another provider.
	CloseDetach uint8 = 3
)

// StreamSub describes one subscription request.
type StreamSub struct {
	ID         uint64
	SourceKind uint8

	// Dataset + TimeCol name the replayed dataset (StreamSrcDataset);
	// SrcSchema + TimeCol describe published batches (StreamSrcPush).
	Dataset   string
	TimeCol   string
	SrcSchema schema.Schema

	// Spec is the pipeline: plans, window, aggregates, batch size,
	// lateness.
	Spec stream.Spec

	// PartKey/PartIdx/PartCnt restrict a dataset replay to one key
	// partition (PartCnt > 1). The hash is stream.PartitionOf on both
	// sides of the wire.
	PartKey string
	PartIdx uint32
	PartCnt uint32

	// Credit is the initial number of result batches the server may send
	// before waiting for MsgCredit.
	Credit uint32

	// Resume, when non-nil, restarts the stream from a prior run's state:
	// open windows are restored and a dataset replay skips Resume.Events
	// rows.
	Resume *stream.State

	// Durable names a server-side checkpoint for this subscription. A
	// server with a data directory periodically persists the pipeline's
	// state under this key; a re-subscription carrying the same key (and
	// no explicit Resume) picks up from the last checkpoint — this is
	// how a killed server's hosted streams resume where they left off.
	Durable string

	// Trace carries the subscriber's trace context (zero = untraced).
	// It is the LAST encoded field, so peers that predate it ignore it
	// — and it survives a failover redial, which is what stitches the
	// replica's spans into the client's original trace.
	Trace TraceCtx
}

// EncodeSubscribeStream builds a MsgSubscribeStream payload.
func EncodeSubscribeStream(s StreamSub) []byte {
	var e Encoder
	e.U64(s.ID)
	e.U8(s.SourceKind)
	e.Str(s.Dataset)
	e.Str(s.TimeCol)
	PutSchema(&e, s.SrcSchema)
	putSpec(&e, s.Spec)
	e.Str(s.PartKey)
	e.U32(s.PartIdx)
	e.U32(s.PartCnt)
	e.U32(s.Credit)
	if s.Resume == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		PutWindowState(&e, s.Resume)
	}
	e.Str(s.Durable)
	PutTraceCtx(&e, s.Trace)
	return e.Bytes()
}

// DecodeSubscribeStream parses a MsgSubscribeStream payload.
func DecodeSubscribeStream(b []byte) (StreamSub, error) {
	d := NewDecoder(b)
	var s StreamSub
	s.ID = d.U64()
	s.SourceKind = d.U8()
	s.Dataset = d.Str()
	s.TimeCol = d.Str()
	s.SrcSchema = GetSchema(d)
	sp, err := getSpec(d)
	if err != nil {
		return s, err
	}
	s.Spec = sp
	s.PartKey = d.Str()
	s.PartIdx = d.U32()
	s.PartCnt = d.U32()
	s.Credit = d.U32()
	if d.Bool() {
		st := GetWindowState(d)
		if d.Err() == nil {
			s.Resume = st
		}
	}
	s.Durable = d.Str()
	s.Trace = GetTraceCtx(d)
	if d.Err() != nil {
		return s, d.Err()
	}
	switch s.SourceKind {
	case StreamSrcDataset, StreamSrcPush:
	default:
		return s, fmt.Errorf("wire: bad stream source kind %d", s.SourceKind)
	}
	return s, nil
}

// putSpec encodes a pipeline spec.
func putSpec(e *Encoder, sp stream.Spec) {
	PutPlan(e, sp.Pre)
	if sp.Post == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		PutPlan(e, sp.Post)
	}
	e.Bool(sp.Windowed)
	e.U8(uint8(sp.Win.Kind))
	e.I64(sp.Win.Size)
	e.I64(sp.Win.Slide)
	putStrs(e, sp.Keys)
	putAggs(e, sp.Aggs)
	e.I64(int64(sp.BatchSize))
	e.I64(sp.Lateness)
}

// getSpec decodes a pipeline spec, rebuilding plans through the core
// constructors (schema inference re-runs on the receiving server).
func getSpec(d *Decoder) (stream.Spec, error) {
	var sp stream.Spec
	pre, err := GetPlan(d)
	if err != nil {
		return sp, err
	}
	sp.Pre = pre
	if d.Bool() {
		post, err := GetPlan(d)
		if err != nil {
			return sp, err
		}
		sp.Post = post
	}
	sp.Windowed = d.Bool()
	sp.Win = core.StreamWindow{Kind: core.StreamWindowKind(d.U8()), Size: d.I64(), Slide: d.I64()}
	sp.Keys = getStrs(d)
	sp.Aggs = getAggs(d)
	sp.BatchSize = int(d.I64())
	sp.Lateness = d.I64()
	return sp, d.Err()
}

// EncodeSubAck builds a MsgSubAck payload: the accepted subscription's
// output schema.
func EncodeSubAck(id uint64, outSchema schema.Schema) []byte {
	var e Encoder
	e.U64(id)
	PutSchema(&e, outSchema)
	return e.Bytes()
}

// DecodeSubAck parses a MsgSubAck payload.
func DecodeSubAck(b []byte) (uint64, schema.Schema, error) {
	d := NewDecoder(b)
	id := d.U64()
	sch := GetSchema(d)
	return id, sch, d.Err()
}

// EncodeStreamBatch builds a MsgStreamBatch payload: one emitted result
// table, its sequence number and the watermark in force when it was
// emitted (math.MinInt64 before the first event).
func EncodeStreamBatch(id, seq uint64, watermark int64, t *table.Table) []byte {
	var e Encoder
	e.U64(id)
	e.U64(seq)
	e.I64(watermark)
	PutTable(&e, t)
	return e.Bytes()
}

// DecodeStreamBatch parses a MsgStreamBatch payload.
func DecodeStreamBatch(b []byte) (id, seq uint64, watermark int64, t *table.Table, err error) {
	d := NewDecoder(b)
	id = d.U64()
	seq = d.U64()
	watermark = d.I64()
	t = GetTable(d)
	if d.Err() != nil {
		return id, seq, watermark, nil, d.Err()
	}
	return id, seq, watermark, t, nil
}

// EncodeWatermark builds a MsgWatermark payload.
func EncodeWatermark(id uint64, mark int64) []byte {
	var e Encoder
	e.U64(id)
	e.I64(mark)
	return e.Bytes()
}

// DecodeWatermark parses a MsgWatermark payload.
func DecodeWatermark(b []byte) (uint64, int64, error) {
	d := NewDecoder(b)
	id := d.U64()
	mark := d.I64()
	return id, mark, d.Err()
}

// EncodeCredit builds a MsgCredit payload granting n more batches.
func EncodeCredit(id uint64, n uint32) []byte {
	var e Encoder
	e.U64(id)
	e.U32(n)
	return e.Bytes()
}

// DecodeCredit parses a MsgCredit payload.
func DecodeCredit(b []byte) (uint64, uint32, error) {
	d := NewDecoder(b)
	id := d.U64()
	n := d.U32()
	return id, n, d.Err()
}

// EncodeStreamPublish builds a MsgStreamPublish payload: one event batch
// pushed from the subscriber into a StreamSrcPush pipeline.
func EncodeStreamPublish(id uint64, t *table.Table) []byte {
	var e Encoder
	e.U64(id)
	PutTable(&e, t)
	return e.Bytes()
}

// DecodeStreamPublish parses a MsgStreamPublish payload.
func DecodeStreamPublish(b []byte) (uint64, *table.Table, error) {
	d := NewDecoder(b)
	id := d.U64()
	t := GetTable(d)
	if d.Err() != nil {
		return id, nil, d.Err()
	}
	return id, t, nil
}

// EncodeStreamClose builds a MsgStreamClose payload.
func EncodeStreamClose(id uint64, mode uint8) []byte {
	var e Encoder
	e.U64(id)
	e.U8(mode)
	return e.Bytes()
}

// DecodeStreamClose parses a MsgStreamClose payload.
func DecodeStreamClose(b []byte) (uint64, uint8, error) {
	d := NewDecoder(b)
	id := d.U64()
	mode := d.U8()
	if err := d.Err(); err != nil {
		return id, mode, err
	}
	switch mode {
	case CloseEndInput, CloseCancel, CloseDetach:
		return id, mode, nil
	}
	return id, mode, fmt.Errorf("wire: bad stream close mode %d", mode)
}

// EncodeStreamEnd builds a MsgStreamEnd payload: the pipeline's final
// statistics.
func EncodeStreamEnd(id uint64, st stream.Stats) []byte {
	var e Encoder
	e.U64(id)
	e.I64(st.Events)
	e.I64(st.Batches)
	e.I64(st.Windows)
	e.I64(st.Late)
	e.I64(st.OutRows)
	e.I64(st.Watermark)
	return e.Bytes()
}

// DecodeStreamEnd parses a MsgStreamEnd payload.
func DecodeStreamEnd(b []byte) (uint64, stream.Stats, error) {
	d := NewDecoder(b)
	id := d.U64()
	st := stream.Stats{
		Events:    d.I64(),
		Batches:   d.I64(),
		Windows:   d.I64(),
		Late:      d.I64(),
		OutRows:   d.I64(),
		Watermark: d.I64(),
	}
	return id, st, d.Err()
}

// ---------------------------------------------------------------------------
// WindowState

// PutWindowState encodes a pipeline's portable state: progress counters
// and every open window's per-group partial aggregates.
func PutWindowState(e *Encoder, st *stream.State) {
	e.I64(st.Events)
	e.I64(st.MaxTime)
	e.I64(st.Watermark)
	e.I64(st.Seq)
	e.U64(st.Epoch)
	e.U32(uint32(len(st.Windows)))
	for _, w := range st.Windows {
		e.I64(w.Start)
		e.I64(w.End)
		e.I64(w.Count)
		e.U32(uint32(len(w.Groups)))
		for _, g := range w.Groups {
			e.U32(uint32(len(g.Keys)))
			for _, k := range g.Keys {
				PutValue(e, k)
			}
			e.U32(uint32(len(g.Accs)))
			for _, a := range g.Accs {
				e.U8(uint8(a.Fn))
				e.I64(a.Count)
				e.I64(a.SumInt)
				e.F64(a.SumFloat)
				e.Bool(a.IsFloat)
				PutValue(e, a.MinMax)
				e.U32(uint32(len(a.Distinct)))
				for _, k := range a.Distinct {
					e.Str(k)
				}
			}
		}
	}
}

// GetWindowState decodes a pipeline state. Every count is bounded by the
// remaining input so corrupt frames fail instead of allocating.
func GetWindowState(d *Decoder) *stream.State {
	st := &stream.State{
		Events:    d.I64(),
		MaxTime:   d.I64(),
		Watermark: d.I64(),
		Seq:       d.I64(),
		Epoch:     d.U64(),
	}
	nw := int(d.U32())
	if d.err != nil || nw > d.Remaining() {
		d.fail("windowstate windows")
		return nil
	}
	for i := 0; i < nw; i++ {
		w := stream.WindowSnapshot{Start: d.I64(), End: d.I64(), Count: d.I64()}
		ng := int(d.U32())
		if d.err != nil || ng > d.Remaining() {
			d.fail("windowstate groups")
			return nil
		}
		for j := 0; j < ng; j++ {
			var g stream.GroupSnapshot
			nk := int(d.U32())
			if d.err != nil || nk > d.Remaining() {
				d.fail("windowstate keys")
				return nil
			}
			for k := 0; k < nk; k++ {
				g.Keys = append(g.Keys, GetValue(d))
			}
			na := int(d.U32())
			if d.err != nil || na > d.Remaining() {
				d.fail("windowstate accs")
				return nil
			}
			for k := 0; k < na; k++ {
				a := exec.AccSnapshot{
					Fn:       core.AggFunc(d.U8()),
					Count:    d.I64(),
					SumInt:   d.I64(),
					SumFloat: d.F64(),
					IsFloat:  d.Bool(),
					MinMax:   GetValue(d),
				}
				nd := int(d.U32())
				if d.err != nil || nd > d.Remaining() {
					d.fail("windowstate distinct")
					return nil
				}
				for m := 0; m < nd; m++ {
					a.Distinct = append(a.Distinct, d.Str())
				}
				g.Accs = append(g.Accs, a)
			}
			w.Groups = append(w.Groups, g)
		}
		st.Windows = append(st.Windows, w)
	}
	if d.err != nil {
		return nil
	}
	return st
}

// EncodeWindowState builds a MsgWindowState payload.
func EncodeWindowState(id uint64, st *stream.State) []byte {
	var e Encoder
	e.U64(id)
	if st == nil {
		st = &stream.State{MaxTime: math.MinInt64, Watermark: math.MinInt64}
	}
	PutWindowState(&e, st)
	return e.Bytes()
}

// DecodeWindowState parses a MsgWindowState payload.
func DecodeWindowState(b []byte) (uint64, *stream.State, error) {
	d := NewDecoder(b)
	id := d.U64()
	st := GetWindowState(d)
	if d.Err() != nil {
		return id, nil, d.Err()
	}
	return id, st, nil
}
