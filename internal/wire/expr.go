package wire

import (
	"fmt"

	"nexus/internal/expr"
	"nexus/internal/value"
)

// Expression node tags (wire format; append only).
const (
	exprConst uint8 = 1
	exprCol   uint8 = 2
	exprBin   uint8 = 3
	exprUn    uint8 = 4
	exprCall  uint8 = 5
	exprNil   uint8 = 6 // absent optional expression (e.g. join residual)
)

// PutExpr encodes a scalar expression tree (nil allowed, for optional
// slots).
func PutExpr(e *Encoder, x expr.Expr) {
	switch n := x.(type) {
	case nil:
		e.U8(exprNil)
	case *expr.Const:
		e.U8(exprConst)
		PutValue(e, n.Val)
	case *expr.Col:
		e.U8(exprCol)
		e.Str(n.Name)
	case *expr.Bin:
		e.U8(exprBin)
		e.U8(uint8(n.Op))
		PutExpr(e, n.L)
		PutExpr(e, n.R)
	case *expr.Un:
		e.U8(exprUn)
		e.U8(uint8(n.Op))
		PutExpr(e, n.X)
	case *expr.Call:
		e.U8(exprCall)
		e.Str(n.Name)
		e.U32(uint32(len(n.Args)))
		for _, a := range n.Args {
			PutExpr(e, a)
		}
	default:
		// Unreachable for well-formed trees; encode as nil so the
		// decoder fails loudly rather than panicking here.
		e.U8(exprNil)
	}
}

// GetExpr decodes a scalar expression tree (may return nil for the
// optional-absent tag).
func GetExpr(d *Decoder) expr.Expr {
	tag := d.U8()
	if d.err != nil {
		return nil
	}
	switch tag {
	case exprNil:
		return nil
	case exprConst:
		return &expr.Const{Val: GetValue(d)}
	case exprCol:
		return &expr.Col{Name: d.Str()}
	case exprBin:
		op := value.BinOp(d.U8())
		l := GetExpr(d)
		r := GetExpr(d)
		if d.err != nil {
			return nil
		}
		if l == nil || r == nil {
			d.err = fmt.Errorf("wire: binary expression with missing operand")
			return nil
		}
		return &expr.Bin{Op: op, L: l, R: r}
	case exprUn:
		op := value.UnOp(d.U8())
		x := GetExpr(d)
		if d.err != nil {
			return nil
		}
		if x == nil {
			d.err = fmt.Errorf("wire: unary expression with missing operand")
			return nil
		}
		return &expr.Un{Op: op, X: x}
	case exprCall:
		name := d.Str()
		n := int(d.U32())
		if d.err != nil || n > d.Remaining() {
			d.fail("call args")
			return nil
		}
		args := make([]expr.Expr, 0, n)
		for i := 0; i < n; i++ {
			a := GetExpr(d)
			if d.err != nil {
				return nil
			}
			if a == nil {
				d.err = fmt.Errorf("wire: call %q with missing argument", name)
				return nil
			}
			args = append(args, a)
		}
		return &expr.Call{Name: name, Args: args}
	}
	d.err = fmt.Errorf("wire: bad expression tag %d", tag)
	return nil
}
