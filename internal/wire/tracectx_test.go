package wire

import (
	"testing"

	"nexus/internal/core"
	"nexus/internal/datagen"
)

func testTraceCtx() TraceCtx {
	var c TraceCtx
	for i := range c.TraceID {
		c.TraceID[i] = byte(i + 1)
	}
	c.SpanID = 0xdeadbeefcafe
	return c
}

func TestTraceCtxFieldRoundTrip(t *testing.T) {
	want := testTraceCtx()
	var e Encoder
	PutTraceCtx(&e, want)
	if e.Len() != traceCtxLen {
		t.Fatalf("encoded %d bytes, want %d", e.Len(), traceCtxLen)
	}
	d := NewDecoder(e.Bytes())
	got := GetTraceCtx(d)
	if d.Err() != nil || got != want {
		t.Fatalf("round trip: %+v -> %+v (err %v)", want, got, d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestTraceCtxZeroEncodesNothing(t *testing.T) {
	var e Encoder
	PutTraceCtx(&e, TraceCtx{})
	if e.Len() != 0 {
		t.Fatalf("zero context encoded %d bytes; absence IS the no-trace form", e.Len())
	}
	if (TraceCtx{}).Valid() {
		t.Fatal("zero context claims validity")
	}
	if !testTraceCtx().Valid() {
		t.Fatal("non-zero context claims invalidity")
	}
}

// TestTraceCtxAdvisoryDecode: the field is advisory — absent, short,
// or unknown-version bytes decode as "no trace" without failing the
// decoder. This is the property that makes trace context safe to bolt
// onto existing frames: an old peer's frame (no field) and a future
// peer's frame (unknown version) are both fine.
func TestTraceCtxAdvisoryDecode(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"absent", nil},
		{"short", []byte{traceCtxVersion, 1, 2, 3}},
		{"unknown version", func() []byte {
			var e Encoder
			PutTraceCtx(&e, testTraceCtx())
			b := e.Bytes()
			b[0] = 99
			return b
		}()},
	}
	for _, tc := range cases {
		d := NewDecoder(tc.buf)
		if got := GetTraceCtx(d); got.Valid() {
			t.Fatalf("%s: decoded a trace from garbage: %+v", tc.name, got)
		}
		if d.Err() != nil {
			t.Fatalf("%s: advisory field failed the decoder: %v", tc.name, d.Err())
		}
	}
}

func TestHelloTraceVersionTolerance(t *testing.T) {
	want := testTraceCtx()

	// New peer -> new peer: tenant and trace both survive.
	tenant, tc, err := DecodeHelloTrace(EncodeHelloTrace("acme", want))
	if err != nil || tenant != "acme" || tc != want {
		t.Fatalf("traced hello round trip: %q %+v %v", tenant, tc, err)
	}

	// Old frame -> new peer: no field decodes as no trace.
	tenant, tc, err = DecodeHelloTrace(EncodeHello("acme"))
	if err != nil || tenant != "acme" || tc.Valid() {
		t.Fatalf("legacy hello through new decoder: %q %+v %v", tenant, tc, err)
	}

	// New frame -> old peer: the legacy decoder ignores the trailer.
	tenant, err = DecodeHello(EncodeHelloTrace("acme", want))
	if err != nil || tenant != "acme" {
		t.Fatalf("traced hello through legacy decoder: %q %v", tenant, err)
	}

	// The empty hello (no payload at all) still decodes.
	if tenant, tc, err = DecodeHelloTrace(nil); err != nil || tenant != "" || tc.Valid() {
		t.Fatalf("empty hello: %q %+v %v", tenant, tc, err)
	}
}

func TestExecuteTraceVersionTolerance(t *testing.T) {
	sc, err := core.NewScan("sales", datagen.SalesSchema())
	if err != nil {
		t.Fatal(err)
	}
	want := testTraceCtx()

	id, plan, tc, err := DecodeExecuteTrace(EncodeExecuteTrace(7, sc, want))
	if err != nil || id != 7 || plan == nil || tc != want {
		t.Fatalf("traced execute round trip: id=%d plan=%v tc=%+v err=%v", id, plan, tc, err)
	}

	id, plan, tc, err = DecodeExecuteTrace(EncodeExecute(7, sc))
	if err != nil || id != 7 || plan == nil || tc.Valid() {
		t.Fatalf("legacy execute through new decoder: id=%d tc=%+v err=%v", id, tc, err)
	}

	id, plan, err = DecodeExecute(EncodeExecuteTrace(7, sc, want))
	if err != nil || id != 7 || plan == nil {
		t.Fatalf("traced execute through legacy decoder: id=%d err=%v", id, err)
	}
}

func TestStoreTraceVersionTolerance(t *testing.T) {
	tbl := datagen.Sales(1, 8, 4, 2)
	want := testTraceCtx()

	name, got, tc, err := DecodeStoreTrace(EncodeStoreTrace("sales", tbl, want))
	if err != nil || name != "sales" || got.NumRows() != tbl.NumRows() || tc != want {
		t.Fatalf("traced store round trip: %q rows=%d tc=%+v err=%v", name, got.NumRows(), tc, err)
	}

	name, got, tc, err = DecodeStoreTrace(EncodeStore("sales", tbl))
	if err != nil || name != "sales" || got.NumRows() != tbl.NumRows() || tc.Valid() {
		t.Fatalf("legacy store through new decoder: %q tc=%+v err=%v", name, tc, err)
	}

	name, got, err = DecodeStore(EncodeStoreTrace("sales", tbl, want))
	if err != nil || name != "sales" || got.NumRows() != tbl.NumRows() {
		t.Fatalf("traced store through legacy decoder: %q err=%v", name, err)
	}
}

func TestSubscribeStreamCarriesTrace(t *testing.T) {
	sch := testEventSchema()
	sub := StreamSub{
		ID:         3,
		SourceKind: StreamSrcDataset,
		Dataset:    "events",
		TimeCol:    "ts",
		Spec:       streamSpecForTest(t, sch),
		Credit:     4,
		Durable:    "job",
		Trace:      testTraceCtx(),
	}
	got, err := DecodeSubscribeStream(EncodeSubscribeStream(sub))
	if err != nil || got.Trace != sub.Trace {
		t.Fatalf("subscribe trace round trip: %+v %v", got.Trace, err)
	}
	reencodeSub(t, sub)

	sub.Trace = TraceCtx{}
	got, err = DecodeSubscribeStream(EncodeSubscribeStream(sub))
	if err != nil || got.Trace.Valid() {
		t.Fatalf("untraced subscribe grew a trace: %+v %v", got.Trace, err)
	}
}
