package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
)

// edgeInts are the 64-bit boundaries the codec must carry exactly —
// including the 2^53 float64-precision frontier PR 2 fought.
var edgeInts = []int64{
	0, 1, -1,
	math.MaxInt64, math.MinInt64 + 1, math.MinInt64,
	1<<53 - 1, 1 << 53, 1<<53 + 1,
	-(1<<53 - 1), -(1 << 53), -(1<<53 + 1),
}

func streamSpecForTest(t *testing.T, sch schema.Schema) stream.Spec {
	t.Helper()
	v, err := core.NewVar(stream.BatchVar, sch)
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFilter(v, expr.Gt(expr.Column("k"), expr.CInt(-1)))
	if err != nil {
		t.Fatal(err)
	}
	return stream.Spec{
		Pre:       f,
		Windowed:  true,
		Win:       core.StreamWindow{Kind: core.WindowTumbling, Size: 10, Slide: 10},
		Keys:      []string{"k"},
		Aggs:      []core.AggSpec{{Func: core.AggSum, Arg: expr.Column("v"), As: "s"}, {Func: core.AggCount, As: "n"}},
		BatchSize: 64,
		Lateness:  5,
	}
}

func testEventSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64},
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "v", Kind: value.KindFloat64},
	)
}

// reencode checks that encode→decode→encode is byte-identical.
func reencodeSub(t *testing.T, sub StreamSub) {
	t.Helper()
	b := EncodeSubscribeStream(sub)
	got, err := DecodeSubscribeStream(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b2 := EncodeSubscribeStream(got)
	if !bytes.Equal(b, b2) {
		t.Fatalf("subscribe re-encode differs: %d vs %d bytes", len(b), len(b2))
	}
}

func TestSubscribeStreamRoundTrip(t *testing.T) {
	sch := testEventSchema()
	sub := StreamSub{
		ID:         7,
		SourceKind: StreamSrcDataset,
		Dataset:    "events",
		TimeCol:    "ts",
		Spec:       streamSpecForTest(t, sch),
		PartKey:    "k",
		PartIdx:    1,
		PartCnt:    3,
		Credit:     16,
		Durable:    "job/p1",
	}
	reencodeSub(t, sub)

	sub.SourceKind = StreamSrcPush
	sub.Dataset = ""
	sub.SrcSchema = sch
	sub.Resume = &stream.State{
		Events:    42,
		MaxTime:   99,
		Watermark: 94,
		Seq:       0,
		Windows: []stream.WindowSnapshot{{
			Start: 90, End: 100, Count: 3,
			Groups: []stream.GroupSnapshot{{
				Keys: []value.Value{value.NewInt(1)},
				Accs: []exec.AccSnapshot{
					{Fn: core.AggSum, Count: 3, SumFloat: 1.5, IsFloat: true, MinMax: value.Null},
					{Fn: core.AggCount, Count: 3, MinMax: value.Null},
				},
			}},
		}},
	}
	reencodeSub(t, sub)
}

func TestStreamControlRoundTrips(t *testing.T) {
	if id, n, err := DecodeCredit(EncodeCredit(9, 4)); err != nil || id != 9 || n != 4 {
		t.Fatalf("credit: %d %d %v", id, n, err)
	}
	if id, mark, err := DecodeWatermark(EncodeWatermark(9, -1<<62)); err != nil || id != 9 || mark != -1<<62 {
		t.Fatalf("watermark: %d %d %v", id, mark, err)
	}
	if id, mode, err := DecodeStreamClose(EncodeStreamClose(9, CloseDetach)); err != nil || id != 9 || mode != CloseDetach {
		t.Fatalf("close: %d %d %v", id, mode, err)
	}
	if _, _, err := DecodeStreamClose(EncodeStreamClose(9, 77)); err == nil {
		t.Fatal("bad close mode accepted")
	}
	st := stream.Stats{Events: 1, Batches: 2, Windows: 3, Late: 4, OutRows: 5, Watermark: math.MinInt64}
	if id, got, err := DecodeStreamEnd(EncodeStreamEnd(9, st)); err != nil || id != 9 || got != st {
		t.Fatalf("end: %d %+v %v", id, got, err)
	}
	sch := testEventSchema()
	if id, got, err := DecodeSubAck(EncodeSubAck(9, sch)); err != nil || id != 9 || !got.Equal(sch) {
		t.Fatalf("suback: %d %v %v", id, got, err)
	}
}

// randomTable builds a random table: 1-4 columns of random kinds, random
// NULL bitmaps, 64-bit edge values.
func randomTable(r *rand.Rand) *table.Table {
	kinds := []value.Kind{value.KindBool, value.KindInt64, value.KindFloat64, value.KindString}
	ncols := 1 + r.Intn(4)
	rows := r.Intn(20)
	attrs := make([]schema.Attribute, ncols)
	names := []string{"a", "b", "c", "d"}
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: names[i], Kind: kinds[r.Intn(len(kinds))]}
	}
	sch := schema.New(attrs...)
	cols := make([]*table.Column, ncols)
	for c := range cols {
		var valid []bool
		hasNulls := r.Intn(2) == 0
		if hasNulls {
			valid = make([]bool, rows)
			for i := range valid {
				valid[i] = r.Intn(4) != 0
			}
		}
		switch attrs[c].Kind {
		case value.KindBool:
			vals := make([]bool, rows)
			for i := range vals {
				vals[i] = r.Intn(2) == 0
			}
			cols[c] = table.BoolColumn(vals)
		case value.KindInt64:
			vals := make([]int64, rows)
			for i := range vals {
				if r.Intn(2) == 0 {
					vals[i] = edgeInts[r.Intn(len(edgeInts))]
				} else {
					vals[i] = r.Int63() - r.Int63()
				}
			}
			cols[c] = table.IntColumn(vals)
		case value.KindFloat64:
			vals := make([]float64, rows)
			for i := range vals {
				vals[i] = math.Float64frombits(r.Uint64())
				if math.IsNaN(vals[i]) {
					vals[i] = 0 // NaN payloads survive bitwise, but keep comparisons simple
				}
			}
			cols[c] = table.FloatColumn(vals)
		case value.KindString:
			vals := make([]string, rows)
			for i := range vals {
				n := r.Intn(8)
				b := make([]byte, n)
				r.Read(b)
				vals[i] = string(b)
			}
			cols[c] = table.StringColumn(vals)
		}
		if valid != nil {
			cols[c] = cols[c].WithValidity(valid)
		}
	}
	return table.MustNew(sch, cols)
}

// TestStreamBatchRoundTripProperty: random schemas, NULL bitmaps and
// 64-bit edge values survive the StreamBatch codec unchanged.
func TestStreamBatchRoundTripProperty(t *testing.T) {
	f := func(seed int64, id, seq uint64, mark int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randomTable(r)
		b := EncodeStreamBatch(id, seq, mark, tab)
		gid, gseq, gmark, got, err := DecodeStreamBatch(b)
		if err != nil || gid != id || gseq != seq || gmark != mark {
			return false
		}
		return bytes.Equal(EncodeStreamBatch(id, seq, mark, got), b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomState builds a random pipeline state with edge-value counters
// and accumulators.
func randomState(r *rand.Rand) *stream.State {
	pickInt := func() int64 {
		if r.Intn(2) == 0 {
			return edgeInts[r.Intn(len(edgeInts))]
		}
		return r.Int63() - r.Int63()
	}
	st := &stream.State{Events: pickInt(), MaxTime: pickInt(), Watermark: pickInt(), Seq: pickInt()}
	for w := r.Intn(4); w > 0; w-- {
		win := stream.WindowSnapshot{Start: pickInt(), End: pickInt(), Count: pickInt()}
		for g := r.Intn(3); g > 0; g-- {
			gs := stream.GroupSnapshot{}
			for k := r.Intn(3); k > 0; k-- {
				switch r.Intn(4) {
				case 0:
					gs.Keys = append(gs.Keys, value.Null)
				case 1:
					gs.Keys = append(gs.Keys, value.NewInt(pickInt()))
				case 2:
					gs.Keys = append(gs.Keys, value.NewFloat(r.NormFloat64()))
				case 3:
					gs.Keys = append(gs.Keys, value.NewString("k"))
				}
			}
			for a := 1 + r.Intn(3); a > 0; a-- {
				acc := exec.AccSnapshot{
					Fn:       core.AggFunc(r.Intn(6)),
					Count:    pickInt(),
					SumInt:   pickInt(),
					SumFloat: r.NormFloat64(),
					IsFloat:  r.Intn(2) == 0,
					MinMax:   value.NewInt(pickInt()),
				}
				for d := r.Intn(3); d > 0; d-- {
					b := make([]byte, r.Intn(6))
					r.Read(b)
					acc.Distinct = append(acc.Distinct, string(b))
				}
				gs.Accs = append(gs.Accs, acc)
			}
			win.Groups = append(win.Groups, gs)
		}
		st.Windows = append(st.Windows, win)
	}
	return st
}

// TestWindowStateRoundTripProperty: random window states — keys of every
// kind, distinct sets, ±2^63 and 2^53 boundary counters — survive
// encode→decode→encode byte-identically.
func TestWindowStateRoundTripProperty(t *testing.T) {
	f := func(seed int64, id uint64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomState(r)
		b := EncodeWindowState(id, st)
		gid, got, err := DecodeWindowState(b)
		if err != nil || gid != id || got == nil {
			return false
		}
		return bytes.Equal(EncodeWindowState(id, got), b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzWireStream throws arbitrary bytes at every streaming decoder: they
// must reject garbage with errors, never panic or over-allocate.
func FuzzWireStream(f *testing.F) {
	sch := testEventSchema()
	var t testing.T
	spec := stream.Spec{Pre: mustVar(&t, sch)}
	f.Add(EncodeSubscribeStream(StreamSub{ID: 1, SourceKind: StreamSrcPush, TimeCol: "ts", SrcSchema: sch, Spec: spec}))
	b := table.NewBuilder(sch, 1)
	b.MustAppend(value.NewInt(1), value.NewInt(2), value.NewFloat(3))
	f.Add(EncodeStreamBatch(1, 2, 3, b.Build()))
	r := rand.New(rand.NewSource(1))
	f.Add(EncodeWindowState(1, randomState(r)))
	f.Add(EncodeStreamEnd(1, stream.Stats{Events: 1}))
	f.Add(EncodeSubAck(1, sch))
	f.Add(EncodeCredit(1, 2))
	f.Add(EncodeWatermark(1, -5))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeSubscribeStream(data)
		_, _, _, _, _ = DecodeStreamBatch(data)
		_, _, _ = DecodeWindowState(data)
		_, _, _ = DecodeStreamEnd(data)
		_, _, _ = DecodeSubAck(data)
		_, _, _ = DecodeCredit(data)
		_, _, _ = DecodeWatermark(data)
		_, _, _ = DecodeStreamClose(data)
	})
}

func mustVar(t *testing.T, sch schema.Schema) core.Node {
	v, err := core.NewVar(stream.BatchVar, sch)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
