package wire

import (
	"fmt"
	"sort"
)

// Replication message payloads. The manifest itself crosses the wire in
// its on-disk encoding (storage.EncodeManifest — magic, body, CRC), so
// the follower verifies exactly the bytes it will trust; only the small
// framing around it is defined here.

// EncodeReplManifest encodes a manifest request. flush asks the primary
// to flush its unflushed tails into segments first, so the returned
// manifest covers every row committed so far.
func EncodeReplManifest(flush bool) []byte {
	var e Encoder
	if flush {
		e.U8(1)
	} else {
		e.U8(0)
	}
	return e.Bytes()
}

// DecodeReplManifest parses a manifest request.
func DecodeReplManifest(b []byte) (flush bool, err error) {
	d := NewDecoder(b)
	f := d.U8()
	if err := d.Err(); err != nil {
		return false, err
	}
	return f != 0, nil
}

// EncodeReplFetch encodes a segment-file fetch request.
func EncodeReplFetch(name string) []byte {
	var e Encoder
	e.Str(name)
	return e.Bytes()
}

// DecodeReplFetch parses a fetch request.
func DecodeReplFetch(b []byte) (string, error) {
	d := NewDecoder(b)
	name := d.Str()
	if err := d.Err(); err != nil {
		return "", err
	}
	return name, nil
}

// EncodeReplFile encodes a fetched file: its name echoed back plus the
// raw bytes. The follower re-verifies the segment CRC before trusting
// them.
func EncodeReplFile(name string, data []byte) []byte {
	var e Encoder
	e.Str(name)
	e.U32(uint32(len(data)))
	e.Raw(data)
	return e.Bytes()
}

// DecodeReplFile parses a fetched file.
func DecodeReplFile(b []byte) (name string, data []byte, err error) {
	d := NewDecoder(b)
	name = d.Str()
	n := int(d.U32())
	if d.Err() != nil || n < 0 || n > d.Remaining() {
		return "", nil, fmt.Errorf("wire: bad repl file payload")
	}
	data = append([]byte(nil), d.RawN(n)...)
	if err := d.Err(); err != nil {
		return "", nil, err
	}
	return name, data, nil
}

// EncodeReplCkptData encodes the primary's durable-checkpoint set (key
// to opaque payload), sorted by key for a deterministic wire image.
func EncodeReplCkptData(ckpts map[string][]byte) []byte {
	keys := make([]string, 0, len(ckpts))
	for k := range ckpts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var e Encoder
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.U32(uint32(len(ckpts[k])))
		e.Raw(ckpts[k])
	}
	return e.Bytes()
}

// DecodeReplCkptData parses a checkpoint set.
func DecodeReplCkptData(b []byte) (map[string][]byte, error) {
	d := NewDecoder(b)
	n := int(d.U32())
	if d.Err() != nil || n < 0 || n > d.Remaining() {
		return nil, fmt.Errorf("wire: bad repl checkpoint count")
	}
	out := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := d.Str()
		sz := int(d.U32())
		if d.Err() != nil || sz < 0 || sz > d.Remaining() {
			return nil, fmt.Errorf("wire: bad repl checkpoint payload")
		}
		out[k] = append([]byte(nil), d.RawN(sz)...)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReplStatus is a replica's replication position, served to the
// primary-side monitor: the manifest generation it has applied, the
// primary generation it last saw, when the last successful sync round
// finished, and the last sync error ("" when healthy).
type ReplStatus struct {
	Gen              uint64 // manifest generation applied locally
	PrimaryGen       uint64 // primary generation observed on the last round
	LastSyncUnixNano int64  // wall time of the last successful round (0: never)
	Err              string // last round's error, "" when it succeeded
}

// EncodeReplStatus encodes a status reply.
func EncodeReplStatus(st ReplStatus) []byte {
	var e Encoder
	e.U64(st.Gen)
	e.U64(st.PrimaryGen)
	e.I64(st.LastSyncUnixNano)
	e.Str(st.Err)
	return e.Bytes()
}

// DecodeReplStatus parses a status reply.
func DecodeReplStatus(b []byte) (ReplStatus, error) {
	d := NewDecoder(b)
	st := ReplStatus{Gen: d.U64(), PrimaryGen: d.U64(), LastSyncUnixNano: d.I64(), Err: d.Str()}
	if err := d.Err(); err != nil {
		return ReplStatus{}, err
	}
	return st, nil
}
