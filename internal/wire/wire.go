// Package wire implements the binary wire format of the nexus framework:
// values, schemas, whole tables, scalar expressions and algebra plans all
// encode to compact byte strings, and a length-prefixed message layer
// carries them between clients and servers. Shipping a query as one
// encoded expression tree — rather than a conversation of per-operator
// calls — is the LINQ property the paper singles out: it "cuts down on
// communication between client and Provider, but also permits
// optimization and query planning at the Provider".
package wire

import (
	"fmt"
	"math"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Encoder accumulates a binary encoding. The zero Encoder is ready to
// use.
type Encoder struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoding size.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// I64 appends an int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 (IEEE-754 bits).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends bytes verbatim (caller framed them already).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder consumes a binary encoding with a sticky error: after the first
// malformed read every subsequent read returns zero values, and Err
// reports the failure — callers check once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a byte string for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(op string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated input reading %s at offset %d", op, d.off)
	}
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	b := d.buf[d.off:]
	d.off += 8
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool byte.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// RawN reads n bytes verbatim; the returned slice aliases the input.
func (d *Decoder) RawN(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("raw")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// ---------------------------------------------------------------------------
// Values

// PutValue encodes a value.
func PutValue(e *Encoder, v value.Value) {
	e.U8(uint8(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindBool:
		e.Bool(v.Bool())
	case value.KindInt64:
		e.I64(v.Int())
	case value.KindFloat64:
		e.F64(v.Float())
	case value.KindString:
		e.Str(v.Str())
	}
}

// GetValue decodes a value.
func GetValue(d *Decoder) value.Value {
	k := value.Kind(d.U8())
	switch k {
	case value.KindNull:
		return value.Null
	case value.KindBool:
		return value.NewBool(d.Bool())
	case value.KindInt64:
		return value.NewInt(d.I64())
	case value.KindFloat64:
		return value.NewFloat(d.F64())
	case value.KindString:
		return value.NewString(d.Str())
	}
	if d.err == nil {
		d.err = fmt.Errorf("wire: bad value kind %d", k)
	}
	return value.Null
}

// ---------------------------------------------------------------------------
// Schemas

// PutSchema encodes a schema.
func PutSchema(e *Encoder, s schema.Schema) {
	e.U32(uint32(s.Len()))
	for i := 0; i < s.Len(); i++ {
		a := s.At(i)
		e.Str(a.Name)
		e.U8(uint8(a.Kind))
		e.Bool(a.Dim)
	}
}

// GetSchema decodes a schema.
func GetSchema(d *Decoder) schema.Schema {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining() { // each attr needs ≥ 6 bytes
		d.fail("schema")
		return schema.Schema{}
	}
	attrs := make([]schema.Attribute, 0, n)
	for i := 0; i < n; i++ {
		attrs = append(attrs, schema.Attribute{
			Name: d.Str(),
			Kind: value.Kind(d.U8()),
			Dim:  d.Bool(),
		})
	}
	if d.err != nil {
		return schema.Schema{}
	}
	s, err := schema.TryNew(attrs...)
	if err != nil {
		d.err = fmt.Errorf("wire: %w", err)
		return schema.Schema{}
	}
	return s
}

// ---------------------------------------------------------------------------
// Tables

// PutTable encodes a whole table column-wise.
func PutTable(e *Encoder, t *table.Table) {
	PutSchema(e, t.Schema())
	e.U32(uint32(t.NumRows()))
	for c := 0; c < t.NumCols(); c++ {
		col := t.Col(c)
		hasNulls := col.HasNulls()
		e.Bool(hasNulls)
		if hasNulls {
			for r := 0; r < t.NumRows(); r++ {
				e.Bool(!col.IsNull(r))
			}
		}
		switch col.Kind() {
		case value.KindBool:
			for _, v := range col.Bools() {
				e.Bool(v)
			}
		case value.KindInt64:
			for _, v := range col.Ints() {
				e.I64(v)
			}
		case value.KindFloat64:
			for _, v := range col.Floats() {
				e.F64(v)
			}
		case value.KindString:
			for _, v := range col.Strs() {
				e.Str(v)
			}
		}
	}
}

// GetTable decodes a table.
func GetTable(d *Decoder) *table.Table {
	sch := GetSchema(d)
	if d.err != nil {
		return nil
	}
	rows := int(d.U32())
	if d.err != nil || rows > d.Remaining()+1 { // loose sanity bound
		d.fail("table rows")
		return nil
	}
	cols := make([]*table.Column, sch.Len())
	for c := 0; c < sch.Len(); c++ {
		hasNulls := d.Bool()
		var valid []bool
		if hasNulls {
			valid = make([]bool, rows)
			for r := 0; r < rows; r++ {
				valid[r] = d.Bool()
			}
		}
		var col *table.Column
		switch sch.At(c).Kind {
		case value.KindBool:
			vals := make([]bool, rows)
			for r := 0; r < rows; r++ {
				vals[r] = d.Bool()
			}
			col = table.BoolColumn(vals)
		case value.KindInt64:
			vals := make([]int64, rows)
			for r := 0; r < rows; r++ {
				vals[r] = d.I64()
			}
			col = table.IntColumn(vals)
		case value.KindFloat64:
			vals := make([]float64, rows)
			for r := 0; r < rows; r++ {
				vals[r] = d.F64()
			}
			col = table.FloatColumn(vals)
		case value.KindString:
			vals := make([]string, rows)
			for r := 0; r < rows; r++ {
				vals[r] = d.Str()
			}
			col = table.StringColumn(vals)
		default:
			d.err = fmt.Errorf("wire: bad column kind %v", sch.At(c).Kind)
			return nil
		}
		if valid != nil {
			col = col.WithValidity(valid)
		}
		cols[c] = col
	}
	if d.err != nil {
		return nil
	}
	t, err := table.New(sch, cols)
	if err != nil {
		d.err = fmt.Errorf("wire: %w", err)
		return nil
	}
	return t
}

// EncodeTable returns the byte encoding of a table.
func EncodeTable(t *table.Table) []byte {
	var e Encoder
	PutTable(&e, t)
	return e.Bytes()
}

// DecodeTable parses a table encoding.
func DecodeTable(b []byte) (*table.Table, error) {
	d := NewDecoder(b)
	t := GetTable(d)
	if d.Err() != nil {
		return nil, d.Err()
	}
	return t, nil
}
