package wire

// TraceCtx is the compact trace-context field appended to request
// frames (hello, execute, append, subscribe) so a trace started at a
// client session follows the request across processes. It is always a
// TRAILING field: the mux demultiplexer peeks the leading u64 of
// every payload for routing, and old peers ignore bytes past the
// fields they know, so absent field = no trace and version skew is
// harmless in both directions.
//
// Encoding: u8 version (1) + 16 trace-id bytes + u64 span id.
type TraceCtx struct {
	TraceID [16]byte
	SpanID  uint64
}

// Valid reports whether the context carries a real trace.
func (c TraceCtx) Valid() bool { return c.TraceID != [16]byte{} }

// traceCtxVersion tags the field layout; readers skip versions they
// do not know.
const traceCtxVersion = 1

// traceCtxLen is the encoded field size.
const traceCtxLen = 1 + 16 + 8

// PutTraceCtx appends the trace-context field. Invalid (zero)
// contexts encode nothing — the absent field IS the "no trace"
// representation.
func PutTraceCtx(e *Encoder, c TraceCtx) {
	if !c.Valid() {
		return
	}
	e.U8(traceCtxVersion)
	e.Raw(c.TraceID[:])
	e.U64(c.SpanID)
}

// GetTraceCtx reads an optional trailing trace-context field. No
// remaining bytes, a short field, or an unknown version all decode as
// the zero (no-trace) context without failing the decoder — the field
// is advisory and must never break an otherwise-good frame.
func GetTraceCtx(d *Decoder) TraceCtx {
	if d.Err() != nil || d.Remaining() < traceCtxLen {
		return TraceCtx{}
	}
	if d.U8() != traceCtxVersion {
		return TraceCtx{}
	}
	var c TraceCtx
	copy(c.TraceID[:], d.RawN(16))
	c.SpanID = d.U64()
	return c
}
