package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/graph"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null,
		value.NewBool(true),
		value.NewBool(false),
		value.NewInt(-42),
		value.NewInt(math.MaxInt64),
		value.NewFloat(3.14159),
		value.NewFloat(math.Inf(1)),
		value.NewString(""),
		value.NewString("héllo, wörld"),
	}
	for _, v := range vals {
		var e Encoder
		PutValue(&e, v)
		d := NewDecoder(e.Bytes())
		got := GetValue(d)
		if d.Err() != nil {
			t.Fatalf("%v: %v", v, d.Err())
		}
		if got.Kind() != v.Kind() || !value.Equal(got, v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, pick uint8) bool {
		var v value.Value
		switch pick % 5 {
		case 0:
			v = value.Null
		case 1:
			v = value.NewBool(b)
		case 2:
			v = value.NewInt(i)
		case 3:
			v = value.NewFloat(fl)
		case 4:
			v = value.NewString(s)
		}
		var e Encoder
		PutValue(&e, v)
		d := NewDecoder(e.Bytes())
		got := GetValue(d)
		if d.Err() != nil {
			return false
		}
		if v.Kind() == value.KindFloat64 && math.IsNaN(fl) {
			return got.Kind() == value.KindFloat64 && math.IsNaN(got.Float())
		}
		return got.Kind() == v.Kind() && value.Equal(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "i", Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: "name", Kind: value.KindString},
		schema.Attribute{Name: "ok", Kind: value.KindBool},
		schema.Attribute{Name: "w", Kind: value.KindFloat64},
	)
	var e Encoder
	PutSchema(&e, s)
	d := NewDecoder(e.Bytes())
	got := GetSchema(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if !got.Equal(s) {
		t.Fatalf("schema round trip: %v -> %v", s, got)
	}
}

func TestTableRoundTrip(t *testing.T) {
	tables := []*table.Table{
		datagen.Sales(1, 500, 20, 10),
		datagen.Matrix(2, 8, 9, "i", "j"),
		datagen.UniformGraph(3, 20, 50),
		table.Empty(datagen.SalesSchema()),
	}
	for _, tab := range tables {
		got, err := DecodeTable(EncodeTable(tab))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Schema().Equal(tab.Schema()) {
			t.Fatalf("schema mismatch: %v vs %v", got.Schema(), tab.Schema())
		}
		if !table.EqualRows(got, tab) {
			t.Fatal("table rows changed across the wire")
		}
	}
}

func TestTableWithNullsRoundTrip(t *testing.T) {
	sch := schema.New(
		schema.Attribute{Name: "a", Kind: value.KindInt64},
		schema.Attribute{Name: "b", Kind: value.KindString},
	)
	b := table.NewBuilder(sch, 4)
	b.MustAppend(value.NewInt(1), value.NewString("x"))
	b.MustAppend(value.Null, value.NewString("y"))
	b.MustAppend(value.NewInt(3), value.Null)
	b.MustAppend(value.Null, value.Null)
	tab := b.Build()
	got, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualRows(got, tab) {
		t.Fatal("nulls lost across the wire")
	}
	if !got.Col(0).IsNull(1) || !got.Col(1).IsNull(2) {
		t.Fatal("null positions wrong")
	}
}

func TestExprRoundTrip(t *testing.T) {
	exprs := []expr.Expr{
		expr.CInt(5),
		expr.Column("price"),
		expr.And(expr.Gt(expr.Column("a"), expr.CInt(1)), expr.IsNull(expr.Column("b"))),
		expr.NewCall("coalesce", expr.Column("x"), expr.CFloat(0)),
		expr.Mul(expr.Add(expr.Column("p"), expr.CFloat(1.5)), expr.Neg(expr.Column("q"))),
		nil,
	}
	for _, x := range exprs {
		var e Encoder
		PutExpr(&e, x)
		d := NewDecoder(e.Bytes())
		got := GetExpr(d)
		if d.Err() != nil {
			t.Fatal(d.Err())
		}
		if !expr.Equal(got, x) {
			t.Fatalf("expr round trip: %v -> %v", x, got)
		}
	}
}

// Plan round trip across representative operators; decode re-runs schema
// inference so equality means full reconstruction.
func TestPlanRoundTrip(t *testing.T) {
	sales := datagen.Sales(4, 50, 10, 5)
	customers := datagen.Customers(5, 10)
	scanS, _ := core.NewScan("sales", sales.Schema())
	scanC, _ := core.NewScan("customers", customers.Schema())

	f, _ := core.NewFilter(scanS, expr.Gt(expr.Column("qty"), expr.CInt(3)))
	j, _ := core.NewJoin(f, scanC, core.JoinLeft, []string{"cust_id"}, []string{"cust_id"}, expr.Ne(expr.Column("region"), expr.CStr("EU")))
	ga, _ := core.NewGroupAgg(j, []string{"segment"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
		{Func: core.AggCount, As: "n"},
	})
	s, _ := core.NewSort(ga, []core.SortSpec{{Col: "rev", Desc: true}})
	l, _ := core.NewLimit(s, 3, 1)

	grid := datagen.Grid(6, 4, 4)
	scanG, _ := core.NewScan("grid", grid.Schema())
	w, _ := core.NewWindow(scanG, []core.DimExtent{{Dim: "x", Before: 1, After: 1}}, core.AggAvg, "v", "m")
	lit, _ := core.NewLiteral(datagen.Matrix(7, 3, 3, "i", "k"))
	litB, _ := core.NewLiteral(datagen.Matrix(8, 3, 3, "k", "j"))
	mm, _ := core.NewMatMul(lit, litB, "v")

	pr, err := graph.PageRankPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), 10, 0.85, 20, 1e-6)
	if err != nil {
		t.Fatal(err)
	}

	for _, plan := range []core.Node{l, w, mm, pr} {
		b := EncodePlan(plan)
		got, err := DecodePlan(b)
		if err != nil {
			t.Fatalf("%s: %v", plan.Describe(), err)
		}
		if !core.Equal(got, plan) {
			t.Fatalf("plan round trip changed the tree:\n%s\nvs\n%s", core.Explain(plan), core.Explain(got))
		}
		if !got.Schema().Equal(plan.Schema()) {
			t.Fatalf("plan round trip changed the schema: %v vs %v", got.Schema(), plan.Schema())
		}
	}
}

func TestPlanDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodePlan([]byte{0xff, 0x00, 0x01}); err == nil {
		t.Fatal("garbage accepted as plan")
	}
	if _, err := DecodePlan(nil); err == nil {
		t.Fatal("empty input accepted as plan")
	}
	// Truncated valid prefix.
	sales := datagen.Sales(9, 5, 3, 2)
	scan, _ := core.NewScan("s", sales.Schema())
	f, _ := core.NewFilter(scan, expr.Gt(expr.Column("qty"), expr.CInt(1)))
	b := EncodePlan(f)
	for _, cut := range []int{1, 3, len(b) / 2, len(b) - 1} {
		if _, err := DecodePlan(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the payload")
	wrote, err := WriteFrame(&buf, MsgExecute, payload)
	if err != nil {
		t.Fatal(err)
	}
	typ, got, read, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgExecute || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: %v %q", typ, got)
	}
	if wrote != read {
		t.Fatalf("byte accounting differs: wrote %d read %d", wrote, read)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 1})
	if _, _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// Property: arbitrary int tables survive the wire byte-for-byte.
func TestTableRoundTripProperty(t *testing.T) {
	f := func(a []int64, s []string) bool {
		n := len(a)
		if len(s) < n {
			n = len(s)
		}
		sch := schema.New(
			schema.Attribute{Name: "a", Kind: value.KindInt64},
			schema.Attribute{Name: "s", Kind: value.KindString},
		)
		tab := table.MustNew(sch, []*table.Column{
			table.IntColumn(a[:n]),
			table.StringColumn(s[:n]),
		})
		got, err := DecodeTable(EncodeTable(tab))
		return err == nil && table.EqualRows(got, tab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
