package wire

import (
	"fmt"
	"io"
)

// MsgType tags protocol messages between clients and servers (and between
// peer servers, for direct intermediate shipping).
type MsgType uint8

// Protocol messages.
const (
	MsgHello     MsgType = 1  // client → server: name
	MsgHelloAck  MsgType = 2  // server → client: name, capability bitset, kernels, datasets
	MsgExecute   MsgType = 3  // client → server: id, plan
	MsgResult    MsgType = 4  // server → client: id, table
	MsgError     MsgType = 5  // server → client: id, message
	MsgStore     MsgType = 6  // any → server: dataset name, table
	MsgAck       MsgType = 7  // server → sender: id, rows, payload bytes
	MsgExecuteTo MsgType = 8  // client → server: id, plan, peer addr, store name
	MsgDrop      MsgType = 9  // client → server: dataset name
	MsgList      MsgType = 10 // client → server: request dataset list
	MsgDatasets  MsgType = 11 // server → client: dataset infos

	// Streaming subscriptions (federated data in motion). One subscriber
	// connection carries one long-running subscription: the client ships a
	// stream spec, the server runs the pipeline and pushes window results
	// back under credit-based flow control, and window state crosses the
	// wire when a subscriber detaches or resumes.
	MsgSubscribeStream MsgType = 12 // client → server: id, stream spec (+ optional resume state)
	MsgSubAck          MsgType = 13 // server → client: id, output schema
	MsgStreamBatch     MsgType = 14 // server → client: id, seq, watermark, result table
	MsgWatermark       MsgType = 15 // server → client: id, watermark (progress between results)
	MsgWindowState     MsgType = 16 // server → client: id, serialized open-window state
	MsgCredit          MsgType = 17 // either direction: id, n more batches permitted
	MsgStreamPublish   MsgType = 18 // client → server: id, event batch (push sources)
	MsgStreamClose     MsgType = 19 // client → server: id, mode (end input / cancel / detach with state)
	MsgStreamEnd       MsgType = 20 // server → client: id, final stats (terminal)

	// MsgAppend appends rows to a dataset instead of replacing it — the
	// streaming-ingest path into durable providers. Payload is identical
	// to MsgStore.
	MsgAppend MsgType = 21 // any → server: dataset name, table

	// Segment replication (internal/replication). A follower pulls the
	// primary's catalog and the immutable files it names over the same
	// connection protocol clients speak: request the current manifest,
	// fetch the segment files it references (CRC-verified on arrival),
	// mirror the durable stream checkpoints, and swap the manifest in
	// atomically. Status lets a primary-side monitor ask any replica how
	// far behind it is.
	MsgReplManifest     MsgType = 22 // follower → primary: flush flag
	MsgReplManifestData MsgType = 23 // primary → follower: encoded manifest
	MsgReplFetch        MsgType = 24 // follower → primary: segment file name
	MsgReplFile         MsgType = 25 // primary → follower: file name, raw bytes
	MsgReplCkpts        MsgType = 26 // follower → primary: request checkpoint set
	MsgReplCkptData     MsgType = 27 // primary → follower: key/payload pairs
	MsgReplStatus       MsgType = 28 // monitor → replica: request replication status
	MsgReplStatusData   MsgType = 29 // replica → monitor: applied gen, last sync, error

	// MsgRefused is the server declining a request for admission-control
	// reasons (per-tenant quota exhausted, or the server shedding load
	// under backpressure). Unlike MsgError it is typed: clients surface
	// it as a *federation.RefusedError so callers can distinguish "try
	// later / lower your rate" from "your request is broken".
	MsgRefused MsgType = 30 // server → client: id, refusal code, message
)

// String names the message type.
func (m MsgType) String() string {
	switch m {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "helloack"
	case MsgExecute:
		return "execute"
	case MsgResult:
		return "result"
	case MsgError:
		return "error"
	case MsgStore:
		return "store"
	case MsgAck:
		return "ack"
	case MsgExecuteTo:
		return "executeto"
	case MsgDrop:
		return "drop"
	case MsgList:
		return "list"
	case MsgDatasets:
		return "datasets"
	case MsgSubscribeStream:
		return "subscribestream"
	case MsgSubAck:
		return "suback"
	case MsgStreamBatch:
		return "streambatch"
	case MsgWatermark:
		return "watermark"
	case MsgWindowState:
		return "windowstate"
	case MsgCredit:
		return "credit"
	case MsgStreamPublish:
		return "streampublish"
	case MsgStreamClose:
		return "streamclose"
	case MsgStreamEnd:
		return "streamend"
	case MsgAppend:
		return "append"
	case MsgReplManifest:
		return "replmanifest"
	case MsgReplManifestData:
		return "replmanifestdata"
	case MsgReplFetch:
		return "replfetch"
	case MsgReplFile:
		return "replfile"
	case MsgReplCkpts:
		return "replckpts"
	case MsgReplCkptData:
		return "replckptdata"
	case MsgReplStatus:
		return "replstatus"
	case MsgReplStatusData:
		return "replstatusdata"
	case MsgRefused:
		return "refused"
	}
	return fmt.Sprintf("msg(%d)", uint8(m))
}

// maxFrame bounds a single message (256 MiB) against corrupt length
// prefixes.
const maxFrame = 256 << 20

// WriteFrame writes one length-prefixed message: u32 length, u8 type,
// payload. It returns the total bytes written (the interop experiments
// account for every byte on every path).
func WriteFrame(w io.Writer, t MsgType, payload []byte) (int, error) {
	n := len(payload) + 1
	if n > maxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	hdr := [5]byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n), byte(t)}
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: write frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return 0, fmt.Errorf("wire: write frame payload: %w", err)
		}
	}
	return 4 + n, nil
}

// ReadFrame reads one message, returning its type, payload, and total
// bytes read.
func ReadFrame(r io.Reader) (MsgType, []byte, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err // io.EOF passes through for clean shutdown
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n < 1 || n > maxFrame {
		return 0, nil, 0, fmt.Errorf("wire: bad frame length %d", n)
	}
	t := MsgType(hdr[4])
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("wire: read frame payload: %w", err)
	}
	return t, payload, 4 + n, nil
}
