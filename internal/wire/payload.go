package wire

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/table"
)

// Payload codecs for the protocol messages. Every payload is encoded with
// the same primitives as plans and tables, so client and server cannot
// drift apart.

// EncodeExecute builds a MsgExecute payload.
func EncodeExecute(id uint64, plan core.Node) []byte {
	return EncodeExecuteTrace(id, plan, TraceCtx{})
}

// EncodeExecuteTrace is EncodeExecute with a trailing trace-context
// field (omitted when tc is zero; old servers ignore it).
func EncodeExecuteTrace(id uint64, plan core.Node, tc TraceCtx) []byte {
	var e Encoder
	e.U64(id)
	PutPlan(&e, plan)
	PutTraceCtx(&e, tc)
	return e.Bytes()
}

// DecodeExecute parses a MsgExecute payload.
func DecodeExecute(b []byte) (uint64, core.Node, error) {
	id, plan, _, err := DecodeExecuteTrace(b)
	return id, plan, err
}

// DecodeExecuteTrace parses a MsgExecute payload including the
// optional trace context (zero when the client sent none).
func DecodeExecuteTrace(b []byte) (uint64, core.Node, TraceCtx, error) {
	d := NewDecoder(b)
	id := d.U64()
	plan, err := GetPlan(d)
	if err != nil {
		return 0, nil, TraceCtx{}, err
	}
	return id, plan, GetTraceCtx(d), nil
}

// EncodeResult builds a MsgResult payload.
func EncodeResult(id uint64, t *table.Table) []byte {
	var e Encoder
	e.U64(id)
	PutTable(&e, t)
	return e.Bytes()
}

// DecodeResult parses a MsgResult payload.
func DecodeResult(b []byte) (uint64, *table.Table, error) {
	d := NewDecoder(b)
	id := d.U64()
	t := GetTable(d)
	if d.Err() != nil {
		return 0, nil, d.Err()
	}
	return id, t, nil
}

// EncodeError builds a MsgError payload.
func EncodeError(id uint64, msg string) []byte {
	var e Encoder
	e.U64(id)
	e.Str(msg)
	return e.Bytes()
}

// DecodeError parses a MsgError payload.
func DecodeError(b []byte) (uint64, string, error) {
	d := NewDecoder(b)
	id := d.U64()
	msg := d.Str()
	return id, msg, d.Err()
}

// EncodeStore builds a MsgStore (or MsgAppend) payload.
func EncodeStore(name string, t *table.Table) []byte {
	return EncodeStoreTrace(name, t, TraceCtx{})
}

// EncodeStoreTrace is EncodeStore with a trailing trace-context field
// — the append-path propagation (omitted when tc is zero).
func EncodeStoreTrace(name string, t *table.Table, tc TraceCtx) []byte {
	var e Encoder
	e.Str(name)
	PutTable(&e, t)
	PutTraceCtx(&e, tc)
	return e.Bytes()
}

// DecodeStore parses a MsgStore/MsgAppend payload.
func DecodeStore(b []byte) (string, *table.Table, error) {
	name, t, _, err := DecodeStoreTrace(b)
	return name, t, err
}

// DecodeStoreTrace parses a MsgStore/MsgAppend payload including the
// optional trace context.
func DecodeStoreTrace(b []byte) (string, *table.Table, TraceCtx, error) {
	d := NewDecoder(b)
	name := d.Str()
	t := GetTable(d)
	if d.Err() != nil {
		return "", nil, TraceCtx{}, d.Err()
	}
	return name, t, GetTraceCtx(d), nil
}

// EncodeAck builds a MsgAck payload: rows produced and payload bytes
// shipped peer-to-peer on the sender's behalf.
func EncodeAck(id uint64, rows int64, shippedBytes int64) []byte {
	var e Encoder
	e.U64(id)
	e.I64(rows)
	e.I64(shippedBytes)
	return e.Bytes()
}

// DecodeAck parses a MsgAck payload.
func DecodeAck(b []byte) (id uint64, rows int64, shippedBytes int64, err error) {
	d := NewDecoder(b)
	id = d.U64()
	rows = d.I64()
	shippedBytes = d.I64()
	return id, rows, shippedBytes, d.Err()
}

// EncodeExecuteTo builds a MsgExecuteTo payload: run the plan, push the
// result to the peer server as storeAs, never returning it to the client.
func EncodeExecuteTo(id uint64, peerAddr, storeAs string, plan core.Node) []byte {
	var e Encoder
	e.U64(id)
	e.Str(peerAddr)
	e.Str(storeAs)
	PutPlan(&e, plan)
	return e.Bytes()
}

// DecodeExecuteTo parses a MsgExecuteTo payload.
func DecodeExecuteTo(b []byte) (id uint64, peerAddr, storeAs string, plan core.Node, err error) {
	d := NewDecoder(b)
	id = d.U64()
	peerAddr = d.Str()
	storeAs = d.Str()
	plan, err = GetPlan(d)
	if err != nil {
		return 0, "", "", nil, err
	}
	return id, peerAddr, storeAs, plan, nil
}

// EncodeDrop builds a MsgDrop payload.
func EncodeDrop(name string) []byte {
	var e Encoder
	e.Str(name)
	return e.Bytes()
}

// DecodeDrop parses a MsgDrop payload.
func DecodeDrop(b []byte) (string, error) {
	d := NewDecoder(b)
	name := d.Str()
	return name, d.Err()
}

// Refusal codes carried by MsgRefused.
const (
	// RefusedOverQuota: the tenant's configured quota (subscriptions,
	// append rows/sec, scan rows/sec) is exhausted.
	RefusedOverQuota uint32 = 1
	// RefusedShedding: the server is shedding new work because its
	// credit-stall tail latency crossed the configured bound.
	RefusedShedding uint32 = 2
)

// EncodeHello builds a MsgHello payload carrying the client's tenant
// token. An empty payload (what pre-admission clients send) decodes as
// the anonymous tenant, so old clients keep working unchanged.
func EncodeHello(tenant string) []byte {
	return EncodeHelloTrace(tenant, TraceCtx{})
}

// EncodeHelloTrace is EncodeHello with a trailing trace-context field
// for the handshake span. A traced anonymous hello encodes the empty
// tenant explicitly — the trace field needs the tenant field in front
// of it to keep its trailing position.
func EncodeHelloTrace(tenant string, tc TraceCtx) []byte {
	if tenant == "" && !tc.Valid() {
		return nil
	}
	var e Encoder
	e.Str(tenant)
	PutTraceCtx(&e, tc)
	return e.Bytes()
}

// DecodeHello parses a MsgHello payload. Empty payloads are the
// anonymous tenant.
func DecodeHello(b []byte) (string, error) {
	tenant, _, err := DecodeHelloTrace(b)
	return tenant, err
}

// DecodeHelloTrace parses a MsgHello payload including the optional
// trace context.
func DecodeHelloTrace(b []byte) (string, TraceCtx, error) {
	if len(b) == 0 {
		return "", TraceCtx{}, nil
	}
	d := NewDecoder(b)
	tenant := d.Str()
	return tenant, GetTraceCtx(d), d.Err()
}

// EncodeRefused builds a MsgRefused payload: the request/subscription id
// it answers (0 when the request carries none), a refusal code, and a
// human-readable reason.
func EncodeRefused(id uint64, code uint32, msg string) []byte {
	var e Encoder
	e.U64(id)
	e.U32(code)
	e.Str(msg)
	return e.Bytes()
}

// DecodeRefused parses a MsgRefused payload.
func DecodeRefused(b []byte) (id uint64, code uint32, msg string, err error) {
	d := NewDecoder(b)
	id = d.U64()
	code = d.U32()
	msg = d.Str()
	return id, code, msg, d.Err()
}

// HelloInfo is the server identity exchanged at connection setup.
type HelloInfo struct {
	Name     string
	CapBits  uint64
	Kernels  []string
	Datasets []DatasetHello
	// Durable reports that the server persists its datasets across
	// restarts (a -data-dir server); catalog listings surface it.
	Durable bool
}

// DatasetHello describes one hosted dataset in a hello exchange.
type DatasetHello struct {
	Name   string
	Rows   int64
	Schema []byte // encoded schema
}

// EncodeHelloAck builds a MsgHelloAck payload.
func EncodeHelloAck(h HelloInfo) []byte {
	var e Encoder
	e.Str(h.Name)
	e.U64(h.CapBits)
	e.U32(uint32(len(h.Kernels)))
	for _, k := range h.Kernels {
		e.Str(k)
	}
	e.U32(uint32(len(h.Datasets)))
	for _, ds := range h.Datasets {
		e.Str(ds.Name)
		e.I64(ds.Rows)
		e.U32(uint32(len(ds.Schema)))
		e.Raw(ds.Schema)
	}
	e.Bool(h.Durable)
	return e.Bytes()
}

// DecodeHelloAck parses a MsgHelloAck payload.
func DecodeHelloAck(b []byte) (HelloInfo, error) {
	d := NewDecoder(b)
	var h HelloInfo
	h.Name = d.Str()
	h.CapBits = d.U64()
	nk := int(d.U32())
	if d.Err() != nil || nk > d.Remaining() {
		return h, fmt.Errorf("wire: bad helloack kernels")
	}
	for i := 0; i < nk; i++ {
		h.Kernels = append(h.Kernels, d.Str())
	}
	nd := int(d.U32())
	if d.Err() != nil || nd > d.Remaining() {
		return h, fmt.Errorf("wire: bad helloack datasets")
	}
	for i := 0; i < nd; i++ {
		var ds DatasetHello
		ds.Name = d.Str()
		ds.Rows = d.I64()
		sn := int(d.U32())
		raw := d.RawN(sn)
		if d.Err() != nil {
			return h, fmt.Errorf("wire: bad helloack schema bytes")
		}
		ds.Schema = append([]byte(nil), raw...)
		h.Datasets = append(h.Datasets, ds)
	}
	h.Durable = d.Bool()
	return h, d.Err()
}
