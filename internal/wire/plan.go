package wire

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/value"
)

// PutPlan encodes an algebra plan as an expression tree: operator kind,
// parameters, then children recursively. Decoding rebuilds the plan
// through the core constructors, so every plan that crosses the wire is
// re-validated (schema inference re-runs) on the receiving server.
func PutPlan(e *Encoder, n core.Node) {
	e.U8(uint8(n.Kind()))
	switch x := n.(type) {
	case *core.Scan:
		e.Str(x.Dataset)
		PutSchema(e, x.Schema())
	case *core.Literal:
		PutTable(e, x.Table)
	case *core.Var:
		e.Str(x.Name)
		PutSchema(e, x.Schema())
	case *core.Filter:
		PutExpr(e, x.Pred)
	case *core.Project:
		putStrs(e, x.Cols)
	case *core.Rename:
		putStrs(e, x.From)
		putStrs(e, x.To)
	case *core.Extend:
		e.U32(uint32(len(x.Defs)))
		for _, d := range x.Defs {
			e.Str(d.Name)
			PutExpr(e, d.E)
		}
	case *core.Join:
		e.U8(uint8(x.Type))
		putStrs(e, x.LeftKeys)
		putStrs(e, x.RightKeys)
		PutExpr(e, x.Residual)
	case *core.Product:
	case *core.GroupAgg:
		putStrs(e, x.Keys)
		putAggs(e, x.Aggs)
	case *core.Distinct:
	case *core.Sort:
		e.U32(uint32(len(x.Specs)))
		for _, s := range x.Specs {
			e.Str(s.Col)
			e.Bool(s.Desc)
		}
	case *core.Limit:
		e.I64(x.N)
		e.I64(x.Offset)
	case *core.Union:
		e.Bool(x.All)
	case *core.Except, *core.Intersect, *core.DropDims:
	case *core.AsArray:
		putStrs(e, x.Dims)
	case *core.SliceDim:
		e.Str(x.Dim)
		e.I64(x.At)
	case *core.Dice:
		e.U32(uint32(len(x.Bounds)))
		for _, b := range x.Bounds {
			e.Str(b.Dim)
			e.I64(b.Lo)
			e.I64(b.Hi)
		}
	case *core.Transpose:
		putStrs(e, x.Perm)
	case *core.Window:
		e.U32(uint32(len(x.Extents)))
		for _, ext := range x.Extents {
			e.Str(ext.Dim)
			e.I64(ext.Before)
			e.I64(ext.After)
		}
		e.U8(uint8(x.Agg))
		e.Str(x.Arg)
		e.Str(x.As)
	case *core.ReduceDims:
		putStrs(e, x.Over)
		putAggs(e, x.Aggs)
	case *core.Fill:
		PutValue(e, x.Default)
	case *core.Shift:
		e.Str(x.Dim)
		e.I64(x.Offset)
	case *core.MatMul:
		e.Str(x.As)
	case *core.ElemWise:
		e.U8(uint8(x.Op))
		e.Str(x.As)
	case *core.Iterate:
		e.Str(x.LoopVar)
		e.I64(int64(x.MaxIters))
		if x.Conv == nil {
			e.Bool(false)
		} else {
			e.Bool(true)
			e.U8(uint8(x.Conv.Metric))
			e.Str(x.Conv.Col)
			e.F64(x.Conv.Tol)
		}
	case *core.Let:
		e.Str(x.Name)
	}
	for _, c := range n.Children() {
		PutPlan(e, c)
	}
}

// GetPlan decodes an algebra plan, re-running schema inference through
// the core constructors.
func GetPlan(d *Decoder) (core.Node, error) {
	n := getPlan(d)
	if d.err != nil {
		return nil, d.err
	}
	return n, nil
}

func getPlan(d *Decoder) core.Node {
	kind := core.OpKind(d.U8())
	if d.err != nil {
		return nil
	}
	check := func(n core.Node, err error) core.Node {
		if err != nil && d.err == nil {
			d.err = fmt.Errorf("wire: rebuild %v: %w", kind, err)
		}
		return n
	}
	child := func() core.Node {
		c := getPlan(d)
		if c == nil && d.err == nil {
			d.err = fmt.Errorf("wire: %v missing child", kind)
		}
		return c
	}
	switch kind {
	case core.KScan:
		name := d.Str()
		sch := GetSchema(d)
		if d.err != nil {
			return nil
		}
		return check(core.NewScan(name, sch))
	case core.KLiteral:
		t := GetTable(d)
		if d.err != nil {
			return nil
		}
		return check(core.NewLiteral(t))
	case core.KVar:
		name := d.Str()
		sch := GetSchema(d)
		if d.err != nil {
			return nil
		}
		return check(core.NewVar(name, sch))
	case core.KFilter:
		pred := GetExpr(d)
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewFilter(c, pred))
	case core.KProject:
		cols := getStrs(d)
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewProject(c, cols))
	case core.KRename:
		from := getStrs(d)
		to := getStrs(d)
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewRename(c, from, to))
	case core.KExtend:
		n := int(d.U32())
		if d.err != nil || n > d.Remaining() {
			d.fail("extend defs")
			return nil
		}
		defs := make([]core.ColDef, 0, n)
		for i := 0; i < n; i++ {
			name := d.Str()
			ex := GetExpr(d)
			defs = append(defs, core.ColDef{Name: name, E: ex})
		}
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewExtend(c, defs))
	case core.KJoin:
		typ := core.JoinType(d.U8())
		lk := getStrs(d)
		rk := getStrs(d)
		res := GetExpr(d)
		l := child()
		r := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewJoin(l, r, typ, lk, rk, res))
	case core.KProduct:
		l := child()
		r := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewProduct(l, r))
	case core.KGroupAgg:
		keys := getStrs(d)
		aggs := getAggs(d)
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewGroupAgg(c, keys, aggs))
	case core.KDistinct:
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewDistinct(c))
	case core.KSort:
		n := int(d.U32())
		if d.err != nil || n > d.Remaining() {
			d.fail("sort specs")
			return nil
		}
		specs := make([]core.SortSpec, 0, n)
		for i := 0; i < n; i++ {
			specs = append(specs, core.SortSpec{Col: d.Str(), Desc: d.Bool()})
		}
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewSort(c, specs))
	case core.KLimit:
		n := d.I64()
		off := d.I64()
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewLimit(c, n, off))
	case core.KUnion:
		all := d.Bool()
		l := child()
		r := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewUnion(l, r, all))
	case core.KExcept:
		l := child()
		r := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewExcept(l, r))
	case core.KIntersect:
		l := child()
		r := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewIntersect(l, r))
	case core.KAsArray:
		dims := getStrs(d)
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewAsArray(c, dims))
	case core.KDropDims:
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewDropDims(c))
	case core.KSlice:
		dim := d.Str()
		at := d.I64()
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewSliceDim(c, dim, at))
	case core.KDice:
		n := int(d.U32())
		if d.err != nil || n > d.Remaining() {
			d.fail("dice bounds")
			return nil
		}
		bounds := make([]core.DimBound, 0, n)
		for i := 0; i < n; i++ {
			bounds = append(bounds, core.DimBound{Dim: d.Str(), Lo: d.I64(), Hi: d.I64()})
		}
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewDice(c, bounds))
	case core.KTranspose:
		perm := getStrs(d)
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewTranspose(c, perm))
	case core.KWindow:
		n := int(d.U32())
		if d.err != nil || n > d.Remaining() {
			d.fail("window extents")
			return nil
		}
		exts := make([]core.DimExtent, 0, n)
		for i := 0; i < n; i++ {
			exts = append(exts, core.DimExtent{Dim: d.Str(), Before: d.I64(), After: d.I64()})
		}
		agg := core.AggFunc(d.U8())
		arg := d.Str()
		as := d.Str()
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewWindow(c, exts, agg, arg, as))
	case core.KReduceDims:
		over := getStrs(d)
		aggs := getAggs(d)
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewReduceDims(c, over, aggs))
	case core.KFill:
		def := GetValue(d)
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewFill(c, def))
	case core.KShift:
		dim := d.Str()
		off := d.I64()
		c := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewShift(c, dim, off))
	case core.KMatMul:
		as := d.Str()
		l := child()
		r := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewMatMul(l, r, as))
	case core.KElemWise:
		op := value.BinOp(d.U8())
		as := d.Str()
		l := child()
		r := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewElemWise(l, r, op, as))
	case core.KIterate:
		loopVar := d.Str()
		maxIters := int(d.I64())
		var conv *core.Convergence
		if d.Bool() {
			conv = &core.Convergence{
				Metric: core.MetricKind(d.U8()),
				Col:    d.Str(),
				Tol:    d.F64(),
			}
		}
		init := child()
		body := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewIterate(init, body, loopVar, maxIters, conv))
	case core.KLet:
		name := d.Str()
		bound := child()
		in := child()
		if d.err != nil {
			return nil
		}
		return check(core.NewLet(name, bound, in))
	}
	d.err = fmt.Errorf("wire: bad plan operator tag %d", kind)
	return nil
}

// EncodePlan returns the byte encoding of a plan.
func EncodePlan(n core.Node) []byte {
	var e Encoder
	PutPlan(&e, n)
	return e.Bytes()
}

// DecodePlan parses a plan encoding.
func DecodePlan(b []byte) (core.Node, error) {
	d := NewDecoder(b)
	n, err := GetPlan(d)
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after plan", d.Remaining())
	}
	return n, nil
}

func putStrs(e *Encoder, ss []string) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

func getStrs(d *Decoder) []string {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining() {
		d.fail("string list")
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Str())
	}
	return out
}

func putAggs(e *Encoder, aggs []core.AggSpec) {
	e.U32(uint32(len(aggs)))
	for _, a := range aggs {
		e.U8(uint8(a.Func))
		e.Str(a.As)
		PutExpr(e, a.Arg)
	}
}

func getAggs(d *Decoder) []core.AggSpec {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining() {
		d.fail("agg specs")
		return nil
	}
	out := make([]core.AggSpec, 0, n)
	for i := 0; i < n; i++ {
		fn := core.AggFunc(d.U8())
		as := d.Str()
		arg := GetExpr(d)
		out = append(out, core.AggSpec{Func: fn, As: as, Arg: arg})
	}
	return out
}
