// Package errfs is a deterministic fault-injection seam over the
// storage layer's file I/O. In production every hook is a direct
// passthrough to the os package — no locks taken, one nil check. Tests
// Install a Faults plan under a directory prefix and the storage code
// running against that directory starts seeing fsync failures, torn
// writes and slow syncs, either forced (FailSync/FailWrites toggles for
// scripted chaos scenarios) or by a seeded random schedule (the
// randomized crash-consistency smoke), without a single test-only branch
// in the storage code itself.
package errfs

import (
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one injection plan. The zero value injects nothing; set the
// probability fields (with NewFaults for a seeded schedule) or the
// forced toggles. All methods are safe for concurrent use.
type Faults struct {
	mu  sync.Mutex
	rng *rand.Rand

	// SyncFailProb / WriteFailProb make the seeded schedule fail that
	// fraction of Sync / Write calls (0 = never, 1 = always).
	SyncFailProb  float64
	WriteFailProb float64
	// TornWrites makes a failing Write land a prefix of its bytes first
	// — the shape a crash mid-write leaves on disk.
	TornWrites bool
	// SyncDelay stalls every Sync (slow-disk simulation).
	SyncDelay time.Duration

	forcedSync  atomic.Pointer[error]
	forcedWrite atomic.Pointer[error]

	// Counters for assertions: how many faults actually fired.
	SyncFaults  atomic.Int64
	WriteFaults atomic.Int64
}

// NewFaults returns a plan whose random schedule draws from seed, so a
// chaos run reproduces exactly from its printed seed.
func NewFaults(seed int64) *Faults {
	return &Faults{rng: rand.New(rand.NewSource(seed))}
}

// FailSync forces every Sync under the plan to fail with err until
// cleared with nil — the scripted "follower's disk stops accepting
// fsync" scenario.
func (f *Faults) FailSync(err error) {
	if err == nil {
		f.forcedSync.Store(nil)
		return
	}
	f.forcedSync.Store(&err)
}

// FailWrites forces every Write under the plan to fail with err until
// cleared with nil.
func (f *Faults) FailWrites(err error) {
	if err == nil {
		f.forcedWrite.Store(nil)
		return
	}
	f.forcedWrite.Store(&err)
}

// roll draws from the seeded schedule (false when no rng configured).
func (f *Faults) roll(p float64) bool {
	if p <= 0 || f.rng == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

func (f *Faults) syncErr() error {
	if e := f.forcedSync.Load(); e != nil {
		f.SyncFaults.Add(1)
		return *e
	}
	if f.roll(f.SyncFailProb) {
		f.SyncFaults.Add(1)
		return &os.PathError{Op: "sync", Path: "(errfs)", Err: os.ErrInvalid}
	}
	return nil
}

func (f *Faults) writeErr() error {
	if e := f.forcedWrite.Load(); e != nil {
		f.WriteFaults.Add(1)
		return *e
	}
	if f.roll(f.WriteFailProb) {
		f.WriteFaults.Add(1)
		return &os.PathError{Op: "write", Path: "(errfs)", Err: os.ErrInvalid}
	}
	return nil
}

// The registry maps directory prefixes to plans. Lookup is a single
// atomic load plus a short scan of an immutable slice — installs copy
// on write — so the production fast path (empty registry) costs one
// pointer load.
type entry struct {
	prefix string
	faults *Faults
}

var registry atomic.Pointer[[]entry]

// Install activates a plan for every file whose path starts with
// prefix, returning a function that removes it. Tests defer the
// removal; overlapping prefixes resolve to the longest match.
func Install(prefix string, f *Faults) (remove func()) {
	for {
		old := registry.Load()
		var next []entry
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, entry{prefix: prefix, faults: f})
		if registry.CompareAndSwap(old, &next) {
			break
		}
	}
	return func() {
		for {
			old := registry.Load()
			if old == nil {
				return
			}
			next := make([]entry, 0, len(*old))
			for _, e := range *old {
				if e.prefix == prefix && e.faults == f {
					continue
				}
				next = append(next, e)
			}
			if registry.CompareAndSwap(old, &next) {
				return
			}
		}
	}
}

// lookup resolves the plan covering path (longest prefix wins), nil
// when none.
func lookup(path string) *Faults {
	es := registry.Load()
	if es == nil {
		return nil
	}
	var best *Faults
	bestLen := -1
	for _, e := range *es {
		if len(e.prefix) > bestLen && strings.HasPrefix(path, e.prefix) {
			best, bestLen = e.faults, len(e.prefix)
		}
	}
	return best
}

// Sync fsyncs f, injecting the plan covering its path first: an
// injected failure returns without syncing, a configured delay stalls
// before the real fsync.
func Sync(f *os.File) error {
	if fl := lookup(f.Name()); fl != nil {
		if d := fl.SyncDelay; d > 0 {
			time.Sleep(d)
		}
		if err := fl.syncErr(); err != nil {
			return err
		}
	}
	return f.Sync()
}

// Write writes b to f, injecting the plan covering its path first. A
// torn-write fault lands the first half of b before failing — exactly
// what a crash mid-write leaves behind — so recovery paths get
// exercised against realistic debris.
func Write(f *os.File, b []byte) (int, error) {
	if fl := lookup(f.Name()); fl != nil {
		if err := fl.writeErr(); err != nil {
			n := 0
			if fl.TornWrites && len(b) > 1 {
				n, _ = f.Write(b[:len(b)/2])
			}
			return n, err
		}
	}
	return f.Write(b)
}
