package errfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tmpFile(t *testing.T, dir string) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestPassthroughWhenUninstalled: with no plan installed, the hooks are
// the os package — writes land, syncs succeed.
func TestPassthroughWhenUninstalled(t *testing.T) {
	f := tmpFile(t, t.TempDir())
	if n, err := Write(f, []byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if err := Sync(f); err != nil {
		t.Fatalf("Sync = %v", err)
	}
}

// TestForcedFaultsByPrefix: a forced plan fails every call under its
// prefix, leaves other paths alone, counts its firings and clears.
func TestForcedFaultsByPrefix(t *testing.T) {
	dir := t.TempDir()
	other := tmpFile(t, t.TempDir())
	f := tmpFile(t, dir)

	boom := errors.New("boom")
	fl := &Faults{}
	fl.FailSync(boom)
	fl.FailWrites(boom)
	defer Install(dir, fl)()

	if err := Sync(f); !errors.Is(err, boom) {
		t.Fatalf("Sync under plan = %v, want boom", err)
	}
	if _, err := Write(f, []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Write under plan = %v, want boom", err)
	}
	if err := Sync(other); err != nil {
		t.Fatalf("Sync outside plan = %v", err)
	}
	if fl.SyncFaults.Load() != 1 || fl.WriteFaults.Load() != 1 {
		t.Fatalf("fault counters = (%d, %d), want (1, 1)",
			fl.SyncFaults.Load(), fl.WriteFaults.Load())
	}

	fl.FailSync(nil)
	fl.FailWrites(nil)
	if err := Sync(f); err != nil {
		t.Fatalf("Sync after clear = %v", err)
	}
}

// TestTornWriteLandsHalf: a torn-write fault flushes the first half of
// the buffer before failing — the debris a crash mid-write leaves.
func TestTornWriteLandsHalf(t *testing.T) {
	dir := t.TempDir()
	f := tmpFile(t, dir)
	fl := &Faults{TornWrites: true}
	fl.FailWrites(errors.New("torn"))
	defer Install(dir, fl)()

	payload := []byte("0123456789")
	if n, err := Write(f, payload); err == nil || n != len(payload)/2 {
		t.Fatalf("torn Write = (%d, %v), want (5, error)", n, err)
	}
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("on-disk debris = %q, want the first half", got)
	}
}

// TestSeededScheduleIsDeterministic: the same seed fails the same calls
// in the same order — chaos runs replay exactly from their seed.
func TestSeededScheduleIsDeterministic(t *testing.T) {
	run := func() []bool {
		dir := t.TempDir()
		f := tmpFile(t, dir)
		fl := NewFaults(99)
		fl.SyncFailProb = 0.5
		defer Install(dir, fl)()
		out := make([]bool, 32)
		for i := range out {
			out[i] = Sync(f) != nil
		}
		if fl.SyncFaults.Load() == 0 {
			t.Fatal("p=0.5 over 32 syncs fired no faults")
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d across identical seeds", i)
		}
	}
}

// TestLongestPrefixWins: nested installs resolve to the most specific
// plan.
func TestLongestPrefixWins(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	outer, inner := &Faults{}, &Faults{}
	outer.FailSync(errors.New("outer"))
	inner.FailSync(errors.New("inner"))
	defer Install(dir, outer)()
	defer Install(sub, inner)()

	f := tmpFile(t, sub)
	if err := Sync(f); err == nil || err.Error() != "inner" {
		t.Fatalf("Sync = %v, want the inner plan's error", err)
	}
}
