package schema

import (
	"strings"
	"testing"

	"nexus/internal/value"
)

func demo() Schema {
	return New(
		Attribute{Name: "i", Kind: value.KindInt64, Dim: true},
		Attribute{Name: "j", Kind: value.KindInt64, Dim: true},
		Attribute{Name: "v", Kind: value.KindFloat64},
		Attribute{Name: "tag", Kind: value.KindString},
	)
}

func TestValidation(t *testing.T) {
	if _, err := TryNew(Attribute{Name: "", Kind: value.KindInt64}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := TryNew(
		Attribute{Name: "a", Kind: value.KindInt64},
		Attribute{Name: "a", Kind: value.KindString},
	); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := TryNew(Attribute{Name: "d", Kind: value.KindFloat64, Dim: true}); err == nil {
		t.Error("non-int64 dimension accepted")
	}
	if _, err := TryNew(Attribute{Name: "n", Kind: value.KindNull}); err == nil {
		t.Error("null-kind attribute accepted")
	}
}

func TestLookup(t *testing.T) {
	s := demo()
	if s.IndexOf("v") != 2 || !s.Has("tag") || s.Has("missing") {
		t.Fatal("lookup broken")
	}
	// Qualified names fall back to the suffix.
	if s.IndexOf("t.v") != 2 {
		t.Fatal("qualified fallback broken")
	}
	if got := s.Names(); strings.Join(got, ",") != "i,j,v,tag" {
		t.Fatalf("names = %v", got)
	}
}

func TestDims(t *testing.T) {
	s := demo()
	if s.NumDims() != 2 {
		t.Fatalf("NumDims = %d", s.NumDims())
	}
	if d := s.DimNames(); len(d) != 2 || d[0] != "i" || d[1] != "j" {
		t.Fatalf("DimNames = %v", d)
	}
	if idx := s.DimIndexes(); idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("DimIndexes = %v", idx)
	}
	dropped := s.DropDims()
	if dropped.NumDims() != 0 {
		t.Fatal("DropDims kept tags")
	}
	retagged, err := dropped.WithDims("j")
	if err != nil {
		t.Fatal(err)
	}
	if retagged.NumDims() != 1 || retagged.DimNames()[0] != "j" {
		t.Fatalf("WithDims = %v", retagged)
	}
	if _, err := dropped.WithDims("v"); err == nil {
		t.Error("tagged a float column as dimension")
	}
	if _, err := dropped.WithDims("zzz"); err == nil {
		t.Error("tagged a missing column")
	}
}

func TestProject(t *testing.T) {
	s := demo()
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.At(0).Name != "v" || p.At(1).Name != "i" {
		t.Fatalf("project = %v", p)
	}
	pn, err := s.ProjectNames([]string{"tag", "i"})
	if err != nil {
		t.Fatal(err)
	}
	if pn.At(0).Name != "tag" || pn.At(1).Name != "i" || !pn.At(1).Dim {
		t.Fatalf("projectNames = %v", pn)
	}
	if _, err := s.ProjectNames([]string{"nope"}); err == nil {
		t.Error("projected missing column")
	}
}

func TestConcatDisambiguation(t *testing.T) {
	a := New(Attribute{Name: "x", Kind: value.KindInt64}, Attribute{Name: "y", Kind: value.KindInt64})
	b := New(Attribute{Name: "x", Kind: value.KindString}, Attribute{Name: "z", Kind: value.KindBool})
	c := a.Concat(b)
	if c.Len() != 4 {
		t.Fatalf("concat len = %d", c.Len())
	}
	names := c.Names()
	if names[2] != "x_r" {
		t.Fatalf("collision not suffixed: %v", names)
	}
	// Double collision: x and x_r both on the left.
	a2 := New(Attribute{Name: "x", Kind: value.KindInt64}, Attribute{Name: "x_r", Kind: value.KindInt64})
	c2 := a2.Concat(b)
	if c2.Names()[2] != "x_r1" {
		t.Fatalf("second-level collision: %v", c2.Names())
	}
}

func TestRename(t *testing.T) {
	s := demo()
	r, err := s.Rename(map[string]string{"v": "val"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has("val") || r.Has("v") {
		t.Fatalf("rename = %v", r)
	}
	if _, err := s.Rename(map[string]string{"v": "tag"}); err == nil {
		t.Error("rename collision accepted")
	}
}

func TestEquality(t *testing.T) {
	s := demo()
	if !s.Equal(demo()) {
		t.Fatal("equal schemas differ")
	}
	if s.Equal(s.DropDims()) {
		t.Fatal("dim tags ignored by Equal")
	}
	if !s.EqualIgnoreDims(s.DropDims()) {
		t.Fatal("EqualIgnoreDims too strict")
	}
	other := New(Attribute{Name: "i", Kind: value.KindInt64})
	if s.Equal(other) || s.EqualIgnoreDims(other) {
		t.Fatal("different schemas equal")
	}
}

func TestString(t *testing.T) {
	s := demo().String()
	for _, want := range []string{"i:int64#", "v:float64", "tag:string"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %s missing %s", s, want)
		}
	}
}
