// Package schema defines the fused tabular/array data model the paper
// proposes: ordinary table schemas in which zero or more attributes are
// tagged as dimensions. A table with no dimension attributes is a plain
// relation; a table whose dimension attributes form a dense integer box
// is a multi-dimensional array; operators in the algebra are
// dimension-aware and preserve or manipulate these tags.
package schema

import (
	"fmt"
	"strings"

	"nexus/internal/value"
)

// Attribute is one column of a schema: a name, a scalar kind, and a
// dimension tag. Dimension attributes must be int64 (array coordinates).
type Attribute struct {
	Name string
	Kind value.Kind
	Dim  bool
}

// String renders the attribute as name:kind, with a '#' marker on
// dimensions (e.g. "i:int64#").
func (a Attribute) String() string {
	s := a.Name + ":" + a.Kind.String()
	if a.Dim {
		s += "#"
	}
	return s
}

// Schema is an ordered list of uniquely named attributes. The zero Schema
// is empty and valid. Schemas are treated as immutable once built; all
// transformation methods return new Schemas.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// New builds a schema from attributes. It panics when names collide or an
// attribute is ill-formed, because schemas are constructed by code (the
// algebra's type inference), not parsed from external input; use TryNew
// for fallible construction.
func New(attrs ...Attribute) Schema {
	s, err := TryNew(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// TryNew builds a schema from attributes, validating that names are
// non-empty and unique and that dimension attributes are int64.
func TryNew(attrs ...Attribute) (Schema, error) {
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return Schema{}, fmt.Errorf("schema: attribute %d has empty name", i)
		}
		if !a.Kind.Valid() || a.Kind == value.KindNull {
			return Schema{}, fmt.Errorf("schema: attribute %q has invalid kind %v", a.Name, a.Kind)
		}
		if a.Dim && a.Kind != value.KindInt64 {
			return Schema{}, fmt.Errorf("schema: dimension attribute %q must be int64, got %v", a.Name, a.Kind)
		}
		if j, dup := idx[a.Name]; dup {
			return Schema{}, fmt.Errorf("schema: duplicate attribute name %q (positions %d and %d)", a.Name, j, i)
		}
		idx[a.Name] = i
	}
	cp := make([]Attribute, len(attrs))
	copy(cp, attrs)
	return Schema{attrs: cp, index: idx}, nil
}

// Len returns the number of attributes.
func (s Schema) Len() int { return len(s.attrs) }

// At returns the i-th attribute.
func (s Schema) At(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s Schema) Attrs() []Attribute {
	cp := make([]Attribute, len(s.attrs))
	copy(cp, s.attrs)
	return cp
}

// IndexOf returns the position of the named attribute, or -1. A qualified
// name "q.name" falls back to its unqualified suffix when the qualified
// form is absent, so expressions written against a joined schema resolve.
func (s Schema) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		if i, ok := s.index[name[dot+1:]]; ok {
			return i
		}
	}
	return -1
}

// Has reports whether the named attribute exists.
func (s Schema) Has(name string) bool { return s.IndexOf(name) >= 0 }

// Names returns the attribute names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// DimIndexes returns the positions of dimension attributes in order.
func (s Schema) DimIndexes() []int {
	var out []int
	for i, a := range s.attrs {
		if a.Dim {
			out = append(out, i)
		}
	}
	return out
}

// DimNames returns the names of dimension attributes in order.
func (s Schema) DimNames() []string {
	var out []string
	for _, a := range s.attrs {
		if a.Dim {
			out = append(out, a.Name)
		}
	}
	return out
}

// NumDims returns the number of dimension attributes.
func (s Schema) NumDims() int {
	n := 0
	for _, a := range s.attrs {
		if a.Dim {
			n++
		}
	}
	return n
}

// Project returns the schema restricted to the given positions, in the
// given order. It panics on out-of-range positions (caller bug).
func (s Schema) Project(positions []int) Schema {
	attrs := make([]Attribute, len(positions))
	for i, p := range positions {
		attrs[i] = s.attrs[p]
	}
	return New(attrs...)
}

// ProjectNames returns the schema restricted to the named attributes.
func (s Schema) ProjectNames(names []string) (Schema, error) {
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		p := s.IndexOf(n)
		if p < 0 {
			return Schema{}, fmt.Errorf("schema: no attribute %q in %v", n, s)
		}
		attrs[i] = s.attrs[p]
	}
	return TryNew(attrs...)
}

// Concat appends the attributes of o to s, disambiguating name collisions
// by suffixing the right-hand attribute with "_r", "_r1", ... . It is used
// by join and product schema inference.
func (s Schema) Concat(o Schema) Schema {
	attrs := make([]Attribute, 0, len(s.attrs)+len(o.attrs))
	attrs = append(attrs, s.attrs...)
	used := make(map[string]bool, len(attrs)+len(o.attrs))
	for _, a := range attrs {
		used[a.Name] = true
	}
	for _, a := range o.attrs {
		name := a.Name
		for i := 0; used[name]; i++ {
			if i == 0 {
				name = a.Name + "_r"
			} else {
				name = fmt.Sprintf("%s_r%d", a.Name, i)
			}
		}
		used[name] = true
		a.Name = name
		attrs = append(attrs, a)
	}
	return New(attrs...)
}

// Rename returns a schema with attributes renamed per the mapping. Names
// absent from the mapping are kept. Renaming to a colliding name fails.
func (s Schema) Rename(mapping map[string]string) (Schema, error) {
	attrs := s.Attrs()
	for i := range attrs {
		if to, ok := mapping[attrs[i].Name]; ok {
			attrs[i].Name = to
		}
	}
	return TryNew(attrs...)
}

// WithDims returns a schema whose dimension tags are exactly the named
// attributes. Tagging a non-int64 attribute fails.
func (s Schema) WithDims(names ...string) (Schema, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return Schema{}, fmt.Errorf("schema: no attribute %q to tag as dimension", n)
		}
		want[s.attrs[i].Name] = true
	}
	attrs := s.Attrs()
	for i := range attrs {
		attrs[i].Dim = want[attrs[i].Name]
	}
	return TryNew(attrs...)
}

// DropDims returns the schema with every dimension tag cleared.
func (s Schema) DropDims() Schema {
	attrs := s.Attrs()
	for i := range attrs {
		attrs[i].Dim = false
	}
	return New(attrs...)
}

// Equal reports whether two schemas have identical attribute lists
// (names, kinds and dimension tags, in order).
func (s Schema) Equal(o Schema) bool {
	if len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// EqualIgnoreDims reports whether two schemas match on names and kinds,
// ignoring dimension tags. Portability checks use this: the same logical
// result may come back dimension-tagged from an array engine.
func (s Schema) EqualIgnoreDims(o Schema) bool {
	if len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		a, b := s.attrs[i], o.attrs[i]
		if a.Name != b.Name || a.Kind != b.Kind {
			return false
		}
	}
	return true
}

// String renders the schema as (a:int64#, b:float64, ...).
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}
