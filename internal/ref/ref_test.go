package ref

import (
	"math"
	"testing"

	"nexus/internal/core"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// The oracles themselves are verified against tiny hand-computed cases —
// the property tests elsewhere are only as trustworthy as this package.

func TestNestedLoopJoinTiny(t *testing.T) {
	sch := schema.New(schema.Attribute{Name: "k", Kind: value.KindInt64})
	l := table.MustNew(sch, []*table.Column{table.IntColumn([]int64{1, 2, 2})})
	r := table.MustNew(sch, []*table.Column{table.IntColumn([]int64{2, 2, 3})})
	out := NestedLoopJoin(l, r, []string{"k"}, []string{"k"})
	if out.NumRows() != 4 { // 2 left twos × 2 right twos
		t.Fatalf("join rows = %d, want 4", out.NumRows())
	}
}

func TestGroupSumTiny(t *testing.T) {
	sch := schema.New(
		schema.Attribute{Name: "g", Kind: value.KindString},
		schema.Attribute{Name: "v", Kind: value.KindFloat64},
	)
	b := table.NewBuilder(sch, 3)
	b.MustAppend(value.NewString("a"), value.NewFloat(1))
	b.MustAppend(value.NewString("b"), value.NewFloat(2))
	b.MustAppend(value.NewString("a"), value.NewFloat(3))
	sums := GroupSum(b.Build(), "g", "v")
	if sums[`"a"`] != 4 || sums[`"b"`] != 2 {
		t.Fatalf("sums = %v", sums)
	}
}

func TestMatMulDenseTiny(t *testing.T) {
	// [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]]
	c := MatMulDense([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8}, 2, 2, 2)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestPageRankTiny(t *testing.T) {
	// A two-node cycle: ranks must be equal and sum to 1.
	adj := [][]int{{1}, {0}}
	r := PageRank(adj, 2, 0.85, 50)
	if math.Abs(r[0]-0.5) > 1e-12 || math.Abs(r[1]-0.5) > 1e-12 {
		t.Fatalf("cycle ranks = %v", r)
	}
	// A dangling sink: node 1 receives from 0 and redistributes.
	adj = [][]int{{1}, {}}
	r = PageRank(adj, 2, 0.85, 100)
	if math.Abs(r[0]+r[1]-1) > 1e-9 {
		t.Fatalf("ranks do not sum to 1: %v", r)
	}
	if r[1] <= r[0] {
		t.Fatalf("sink should out-rank source: %v", r)
	}
}

func TestConnectedComponentsTiny(t *testing.T) {
	// 0-1, 2-3, 4 isolated.
	labels := ConnectedComponents(5, [][2]int{{0, 1}, {2, 3}})
	want := []int{0, 0, 2, 2, 4}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v", labels)
		}
	}
}

func TestSSSPTiny(t *testing.T) {
	// 0→1→2, 3 unreachable.
	adj := [][]int{{1}, {2}, {}, {}}
	d := SSSP(adj, 4, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 || !math.IsInf(d[3], 1) {
		t.Fatalf("dist = %v", d)
	}
}

func TestWindowSum1DTiny(t *testing.T) {
	got := WindowSum1D([]float64{1, 2, 3, 4}, 1, 1)
	want := []float64{3, 6, 9, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v, want %v", got, want)
		}
	}
}

func TestDistinctAndAggOverAll(t *testing.T) {
	sch := schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64})
	tab := table.MustNew(sch, []*table.Column{table.IntColumn([]int64{1, 1, 2, 3, 3, 3})})
	if Distinct(tab) != 3 {
		t.Fatal("distinct")
	}
	if v := AggOverAll(tab, "x", core.AggCount); v.Int() != 6 {
		t.Fatal("count")
	}
	if v := AggOverAll(tab, "x", core.AggSum); v.Float() != 13 {
		t.Fatal("sum")
	}
	if v := AggOverAll(tab, "x", core.AggMin); v.Int() != 1 {
		t.Fatal("min")
	}
	if v := AggOverAll(tab, "x", core.AggMax); v.Int() != 3 {
		t.Fatal("max")
	}
	if v := AggOverAll(tab, "x", core.AggAvg); math.Abs(v.Float()-13.0/6) > 1e-12 {
		t.Fatal("avg")
	}
	if v := AggOverAll(tab, "x", core.AggCountDistinct); v.Int() != 3 {
		t.Fatal("countd")
	}
}
