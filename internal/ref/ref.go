// Package ref contains deliberately naive reference implementations —
// nested-loop joins, row-at-a-time aggregation, O(n³) matrix multiply,
// textbook PageRank — used as oracles by the property-based tests of the
// real engines. Clarity beats speed everywhere in this package.
package ref

import (
	"math"

	"nexus/internal/core"
	"nexus/internal/table"
	"nexus/internal/value"
)

// NestedLoopJoin computes an inner equijoin by comparing every row pair.
func NestedLoopJoin(left, right *table.Table, leftKeys, rightKeys []string) *table.Table {
	lk := make([]int, len(leftKeys))
	for i, k := range leftKeys {
		lk[i] = left.Schema().IndexOf(k)
	}
	rk := make([]int, len(rightKeys))
	for i, k := range rightKeys {
		rk[i] = right.Schema().IndexOf(k)
	}
	outSchema := left.Schema().Concat(right.Schema())
	b := table.NewBuilder(outSchema, 0)
	row := make([]value.Value, 0, outSchema.Len())
	for i := 0; i < left.NumRows(); i++ {
		for j := 0; j < right.NumRows(); j++ {
			match := true
			for x := range lk {
				if !value.Equal(left.Value(i, lk[x]), right.Value(j, rk[x])) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row = row[:0]
			row = left.Row(i, row)
			row = right.Row(j, row)
			b.MustAppend(row...)
		}
	}
	return b.Build()
}

// GroupSum groups by one key column and sums one numeric column,
// returning rows in first-seen order.
func GroupSum(t *table.Table, key, arg string) map[string]float64 {
	kp := t.Schema().IndexOf(key)
	ap := t.Schema().IndexOf(arg)
	out := map[string]float64{}
	for i := 0; i < t.NumRows(); i++ {
		k := t.Value(i, kp).String()
		v, ok := t.Value(i, ap).AsFloat()
		if !ok {
			continue
		}
		out[k] += v
	}
	return out
}

// MatMulDense multiplies dense row-major matrices naively: C = A·B where
// A is m×k and B is k×n.
func MatMulDense(a []float64, b []float64, m, k, n int) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for x := 0; x < k; x++ {
				s += a[i*k+x] * b[x*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

// PageRank computes PageRank with uniform teleport over an adjacency
// list, iterating a fixed number of times. Dangling-node mass is
// redistributed uniformly. Returns the rank vector.
func PageRank(adj [][]int, n int, damping float64, iters int) []float64 {
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			if len(adj[u]) == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(len(adj[u]))
			for _, v := range adj[u] {
				next[v] += share
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for i := range next {
			next[i] = base + damping*next[i]
		}
		rank, next = next, rank
	}
	return rank
}

// ConnectedComponents labels each vertex of an undirected graph with the
// smallest vertex id in its component, via union-find.
func ConnectedComponents(n int, edges [][2]int) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(e[0]), find(e[1])
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = find(i)
	}
	// Normalize to the minimum id in each component.
	minOf := map[int]int{}
	for i, r := range out {
		if m, ok := minOf[r]; !ok || i < m {
			minOf[r] = i
		}
	}
	for i, r := range out {
		out[i] = minOf[r]
	}
	return out
}

// SSSP computes single-source shortest hop counts via BFS; unreachable
// vertices get math.Inf(1).
func SSSP(adj [][]int, n, src int) []float64 {
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if math.IsInf(dist[v], 1) {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// WindowSum1D computes a centered moving sum over a dense 1-D series for
// the window [i-before, i+after].
func WindowSum1D(vals []float64, before, after int) []float64 {
	out := make([]float64, len(vals))
	for i := range vals {
		var s float64
		for j := i - before; j <= i+after; j++ {
			if j >= 0 && j < len(vals) {
				s += vals[j]
			}
		}
		out[i] = s
	}
	return out
}

// Distinct counts distinct rows of a table.
func Distinct(t *table.Table) int {
	seen := map[string]struct{}{}
	buf := make([]byte, 0, 64)
	for i := 0; i < t.NumRows(); i++ {
		buf = buf[:0]
		for c := 0; c < t.NumCols(); c++ {
			buf = value.AppendKey(buf, t.Value(i, c))
		}
		seen[string(buf)] = struct{}{}
	}
	return len(seen)
}

// AggOverAll applies one aggregate over a whole column, for oracle
// comparisons.
func AggOverAll(t *table.Table, col string, fn core.AggFunc) value.Value {
	p := t.Schema().IndexOf(col)
	var (
		count    int64
		sum      float64
		best     = value.Null
		distinct = map[string]struct{}{}
	)
	for i := 0; i < t.NumRows(); i++ {
		v := t.Value(i, p)
		if v.IsNull() {
			continue
		}
		count++
		if f, ok := v.AsFloat(); ok {
			sum += f
		}
		switch fn {
		case core.AggMin:
			if best.IsNull() || value.Less(v, best) {
				best = v
			}
		case core.AggMax:
			if best.IsNull() || value.Less(best, v) {
				best = v
			}
		case core.AggCountDistinct:
			distinct[string(value.AppendKey(nil, v))] = struct{}{}
		}
	}
	switch fn {
	case core.AggCount:
		return value.NewInt(count)
	case core.AggCountDistinct:
		return value.NewInt(int64(len(distinct)))
	case core.AggSum:
		if count == 0 {
			return value.Null
		}
		return value.NewFloat(sum)
	case core.AggAvg:
		if count == 0 {
			return value.Null
		}
		return value.NewFloat(sum / float64(count))
	case core.AggMin, core.AggMax:
		return best
	}
	return value.Null
}
