package stream

import (
	"nexus/internal/schema"
	"nexus/internal/table"
)

// Sink receives result tables as the pipeline emits them: one per
// micro-batch for stateless pipelines, one per closed window for
// windowed ones.
type Sink interface {
	Emit(t *table.Table) error
}

// Callback adapts a function into a Sink (the subscription sink).
type Callback func(t *table.Table) error

// Emit implements Sink.
func (f Callback) Emit(t *table.Table) error { return f(t) }

// Collect accumulates every emitted table and concatenates them into one
// bounded result — the stream analogue of Query.Collect.
type Collect struct {
	sch   schema.Schema
	parts []*table.Table
}

// NewCollect returns a collecting sink for results of the given schema.
func NewCollect(sch schema.Schema) *Collect { return &Collect{sch: sch} }

// Emit implements Sink.
func (c *Collect) Emit(t *table.Table) error {
	c.parts = append(c.parts, t)
	return nil
}

// Table returns everything collected so far as one table (empty, with
// the right schema, if nothing was emitted).
func (c *Collect) Table() (*table.Table, error) {
	return table.Empty(c.sch).Concat(c.parts...)
}
