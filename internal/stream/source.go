// Package stream executes the Big Data algebra incrementally over
// unbounded event streams — the paper's "data in motion" half of the
// desiderata. Events flow from a Source into micro-batches; each batch is
// a bounded table evaluated through the ordinary core operators by the
// shared exec runtime, so stream programs and batch programs are one
// algebra. Windowed aggregation keeps per-window, per-group accumulator
// state (the exec agg kernels) and emits a window's result relation when
// the event-time watermark passes its end.
//
// Pipelines are portable and resumable: Builder.Spec serializes a
// streaming query so a server can host it (internal/server), and
// RunState captures the open windows plus the consumed-event offset as
// a State — the object that detaches travel in, servers checkpoint into
// durable storage (internal/storage), and migrations ship between
// providers. PartitionOf splits a stream across providers by key hash;
// the federation layer merges the partitions back in watermark order.
package stream

import (
	"context"
	"fmt"
	"sync"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Row is one stream element: a value per attribute of the stream's
// schema. The event-time timestamp is an ordinary int64 column, named per
// source, so relational operators can see and transform it.
type Row = []value.Value

// errBox holds a source's terminal error behind a mutex: producers set
// it from their goroutine, consumers (the pipeline, or a server-side
// subscription host observing a cancelled run) may read it concurrently —
// without the lock the write and read race under -race.
type errBox struct {
	mu  sync.Mutex
	err error
}

func (b *errBox) set(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *errBox) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Source produces an ordered (by arrival, not necessarily by event time)
// sequence of rows.
type Source interface {
	// Schema describes every row the source emits.
	Schema() schema.Schema
	// TimeCol names the int64 event-time column within Schema.
	TimeCol() string
	// Open starts production. Rows arrive on the returned channel, which
	// is closed at end-of-stream or when ctx is cancelled. A source may
	// be opened again after a run that completed cleanly, but not after
	// a cancelled or failed one (its Err sticks).
	Open(ctx context.Context) <-chan Row
	// Err reports a terminal production error. It is valid only after the
	// channel from Open has been closed.
	Err() error
}

// BatchSource is an optional Source extension for producers that can
// emit whole micro-batches. The pipeline prefers it when available: one
// channel operation moves up to batchSize rows, instead of one per event,
// and pull sources can hand over column slices with zero copying. Rows
// and batches are alternative views of the same stream — a pipeline
// consumes exactly one of them per run.
type BatchSource interface {
	Source
	// OpenBatches starts production in batches of at most batchSize rows.
	// Emitted tables carry the source schema; the channel is closed at
	// end-of-stream or cancellation (check Err afterwards).
	OpenBatches(ctx context.Context, batchSize int) <-chan *table.Table
}

// Channel is a push source: callers feed rows with Send and finish the
// stream with Close. It has a fixed buffer; Send blocks when the buffer
// is full and the pipeline has not caught up. Like a raw Go channel,
// Send and Close must not race each other — multiple producers need
// external synchronization. If the consuming pipeline stops early
// (error, cancellation), blocked Sends are released with an error
// rather than leaking the producer goroutine.
type Channel struct {
	sch     schema.Schema
	timeCol string
	ch      chan Row
	done    chan struct{} // closed when the consumer stops consuming
	stopped sync.Once

	mu     sync.Mutex
	closed bool
}

// NewChannel returns a channel-backed source with the given buffer size.
func NewChannel(sch schema.Schema, timeCol string, buf int) *Channel {
	if buf < 0 {
		buf = 0
	}
	return &Channel{sch: sch, timeCol: timeCol, ch: make(chan Row, buf), done: make(chan struct{})}
}

// Schema implements Source.
func (c *Channel) Schema() schema.Schema { return c.sch }

// TimeCol implements Source.
func (c *Channel) TimeCol() string { return c.timeCol }

// Open implements Source. The pipeline's context does not interrupt
// in-flight Send calls; close the source to unblock consumers.
func (c *Channel) Open(ctx context.Context) <-chan Row { return c.ch }

// Err implements Source; channel sources cannot fail.
func (c *Channel) Err() error { return nil }

// Send enqueues one row. The row's width must match the schema; value
// kinds are checked downstream when the row enters a micro-batch.
func (c *Channel) Send(row Row) error {
	if len(row) != c.sch.Len() {
		return fmt.Errorf("stream: send %d values to %d-column stream", len(row), c.sch.Len())
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return fmt.Errorf("stream: send on closed stream")
	}
	select {
	case c.ch <- row:
		return nil
	case <-c.done:
		return fmt.Errorf("stream: consumer stopped")
	}
}

// Close ends the stream; further Sends fail.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
}

// stop implements the pipeline's consumer-stopped signal, releasing any
// producer blocked in Send.
func (c *Channel) stop() { c.stopped.Do(func() { close(c.done) }) }

// ReleaseSource signals a push-style source that its consumer stopped,
// releasing producers blocked in Send. The pipeline does this itself;
// external consumers (the federated event publisher) call it when they
// stop draining a source early.
func ReleaseSource(src Source) {
	if s, ok := src.(interface{ stop() }); ok {
		s.stop()
	}
}

// replay is a pull source that re-plays a stored table's rows in order —
// the bridge from data at rest to data in motion.
type replay struct {
	t       *table.Table
	timeCol string

	errBox
}

// NewReplay returns a source that replays the table's rows in storage
// order, reading event time from the named column.
func NewReplay(t *table.Table, timeCol string) Source {
	return &replay{t: t, timeCol: timeCol}
}

// Schema implements Source.
func (r *replay) Schema() schema.Schema { return r.t.Schema() }

// TimeCol implements Source.
func (r *replay) TimeCol() string { return r.timeCol }

// Err implements Source: a cancelled replay reports the context error so
// consumers can tell a truncated stream from a completed one.
func (r *replay) Err() error { return r.get() }

// Open implements Source.
func (r *replay) Open(ctx context.Context) <-chan Row {
	ch := make(chan Row, 256)
	go func() {
		defer close(ch)
		for i := 0; i < r.t.NumRows(); i++ {
			row := r.t.Row(i, make(Row, 0, r.t.NumCols()))
			select {
			case ch <- row:
			case <-ctx.Done():
				r.set(ctx.Err())
				return
			}
		}
	}()
	return ch
}

// OpenBatches implements BatchSource: stored rows re-play as zero-copy
// table slices.
func (r *replay) OpenBatches(ctx context.Context, batchSize int) <-chan *table.Table {
	ch := make(chan *table.Table, 4)
	go func() {
		defer close(ch)
		r.set(sliceBatches(ctx, r.t, batchSize, ch))
	}()
	return ch
}

// sliceBatches feeds t to ch in batchSize-row storage-sharing slices.
func sliceBatches(ctx context.Context, t *table.Table, batchSize int, ch chan<- *table.Table) error {
	if batchSize < 1 {
		batchSize = 1
	}
	for lo := 0; lo < t.NumRows(); lo += batchSize {
		hi := lo + batchSize
		if hi > t.NumRows() {
			hi = t.NumRows()
		}
		select {
		case ch <- t.Slice(lo, hi):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// lazyReplay is a replay whose table is fetched only when the stream
// runs. Session.StreamScan uses it so building (and validating) a stream
// query over a stored dataset does not scan the dataset until Open.
type lazyReplay struct {
	sch     schema.Schema
	timeCol string
	fetch   func() (*table.Table, error)

	errBox
}

// NewLazyReplay returns a replay source that materializes its table via
// fetch on Open. The schema must match what fetch will produce.
func NewLazyReplay(sch schema.Schema, timeCol string, fetch func() (*table.Table, error)) Source {
	return &lazyReplay{sch: sch, timeCol: timeCol, fetch: fetch}
}

// Schema implements Source.
func (l *lazyReplay) Schema() schema.Schema { return l.sch }

// TimeCol implements Source.
func (l *lazyReplay) TimeCol() string { return l.timeCol }

// Err implements Source.
func (l *lazyReplay) Err() error { return l.get() }

// Open implements Source.
func (l *lazyReplay) Open(ctx context.Context) <-chan Row {
	ch := make(chan Row, 256)
	go func() {
		defer close(ch)
		t, err := l.fetch()
		if err != nil {
			l.set(err)
			return
		}
		for i := 0; i < t.NumRows(); i++ {
			row := t.Row(i, make(Row, 0, t.NumCols()))
			select {
			case ch <- row:
			case <-ctx.Done():
				l.set(ctx.Err())
				return
			}
		}
	}()
	return ch
}

// OpenBatches implements BatchSource (see replay).
func (l *lazyReplay) OpenBatches(ctx context.Context, batchSize int) <-chan *table.Table {
	ch := make(chan *table.Table, 4)
	go func() {
		defer close(ch)
		t, err := l.fetch()
		if err != nil {
			l.set(err)
			return
		}
		l.set(sliceBatches(ctx, t, batchSize, ch))
	}()
	return ch
}

// generator synthesizes n rows by calling fn(0..n-1) — load generators
// and tests use it for unbounded-ish input without materializing tables.
type generator struct {
	sch     schema.Schema
	timeCol string
	n       int64
	fn      func(i int64) (Row, error)

	errBox
}

// NewGenerator returns a source producing n rows from fn.
func NewGenerator(sch schema.Schema, timeCol string, n int64, fn func(i int64) (Row, error)) Source {
	return &generator{sch: sch, timeCol: timeCol, n: n, fn: fn}
}

// Schema implements Source.
func (g *generator) Schema() schema.Schema { return g.sch }

// TimeCol implements Source.
func (g *generator) TimeCol() string { return g.timeCol }

// Err implements Source.
func (g *generator) Err() error { return g.get() }

// Open implements Source.
func (g *generator) Open(ctx context.Context) <-chan Row {
	ch := make(chan Row, 256)
	go func() {
		defer close(ch)
		for i := int64(0); i < g.n; i++ {
			row, err := g.fn(i)
			if err != nil {
				g.set(fmt.Errorf("stream: generator row %d: %w", i, err))
				return
			}
			select {
			case ch <- row:
			case <-ctx.Done():
				g.set(ctx.Err())
				return
			}
		}
	}()
	return ch
}

// OpenBatches implements BatchSource: rows are synthesized and assembled
// into columnar batches on the producer side, so the consumer pays one
// channel operation per micro-batch.
func (g *generator) OpenBatches(ctx context.Context, batchSize int) <-chan *table.Table {
	if batchSize < 1 {
		batchSize = 1
	}
	ch := make(chan *table.Table, 4)
	go func() {
		defer close(ch)
		for lo := int64(0); lo < g.n; lo += int64(batchSize) {
			hi := lo + int64(batchSize)
			if hi > g.n {
				hi = g.n
			}
			b := table.NewBuilder(g.sch, int(hi-lo))
			for i := lo; i < hi; i++ {
				row, err := g.fn(i)
				if err != nil {
					g.set(fmt.Errorf("stream: generator row %d: %w", i, err))
					return
				}
				if err := b.Append(row...); err != nil {
					g.set(fmt.Errorf("stream: generator row %d: %w", i, err))
					return
				}
			}
			select {
			case ch <- b.Build():
			case <-ctx.Done():
				g.set(ctx.Err())
				return
			}
		}
	}()
	return ch
}
