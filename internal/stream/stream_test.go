package stream_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
)

func salesSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64},
		schema.Attribute{Name: "region", Kind: value.KindString},
		schema.Attribute{Name: "qty", Kind: value.KindInt64},
		schema.Attribute{Name: "price", Kind: value.KindFloat64},
	)
}

func saleRow(ts int64, region string, qty int64, price float64) stream.Row {
	return stream.Row{value.NewInt(ts), value.NewString(region), value.NewInt(qty), value.NewFloat(price)}
}

func salesTable(rows ...stream.Row) *table.Table {
	b := table.NewBuilder(salesSchema(), len(rows))
	for _, r := range rows {
		b.MustAppend(r...)
	}
	return b.Build()
}

func revenueAggs() []core.AggSpec {
	return []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("qty"), expr.Column("price")), As: "rev"},
		{Func: core.AggCount, As: "n"},
	}
}

// --- window specs ---------------------------------------------------------

func TestWindowAssignTumbling(t *testing.T) {
	w, err := core.NewTumblingWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    int64
		want []int64
	}{
		{0, []int64{0}},
		{9, []int64{0}},
		{10, []int64{10}}, // boundary: [10,20), not [0,10)
		{-1, []int64{-10}},
		{-10, []int64{-10}},
	}
	for _, c := range cases {
		got := w.Assign(nil, c.t)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("tumbling assign(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestWindowAssignSliding(t *testing.T) {
	w, err := core.NewSlidingWindow(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    int64
		want []int64
	}{
		{12, []int64{5, 10}},
		{10, []int64{5, 10}}, // boundary: start of [10,20), inside [5,15), past end of [0,10)
		{4, []int64{-5, 0}},
		{0, []int64{-5, 0}},
	}
	for _, c := range cases {
		got := w.Assign(nil, c.t)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("sliding assign(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestWindowValidate(t *testing.T) {
	if _, err := core.NewTumblingWindow(0); err == nil {
		t.Error("tumbling size 0 accepted")
	}
	if _, err := core.NewSlidingWindow(10, 0); err == nil {
		t.Error("sliding slide 0 accepted")
	}
	if _, err := core.NewSlidingWindow(10, 11); err == nil {
		t.Error("sliding slide > size accepted (gaps drop events)")
	}
	if _, err := core.NewCountWindow(-1); err == nil {
		t.Error("count size -1 accepted")
	}
}

// --- windowed aggregation -------------------------------------------------

// runCollect builds and runs the pipeline into a collecting sink.
func runCollect(t *testing.T, b *stream.Builder) (*table.Table, stream.Stats) {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sink := stream.NewCollect(p.OutputSchema())
	st, err := p.Run(context.Background(), sink)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sink.Table()
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

func TestTumblingAggregation(t *testing.T) {
	in := salesTable(
		saleRow(1, "EU", 2, 10),  // [0,10)
		saleRow(5, "NA", 1, 40),  // [0,10)
		saleRow(9, "EU", 3, 10),  // [0,10)
		saleRow(10, "EU", 1, 10), // [10,20) — boundary event
		saleRow(15, "NA", 2, 40), // [10,20)
	)
	w, _ := core.NewTumblingWindow(10)
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).
		Aggregate(w, []string{"region"}, revenueAggs())
	out, st := runCollect(t, b)
	if st.Events != 5 || st.Windows != 2 {
		t.Fatalf("stats = %+v", st)
	}
	type key struct {
		ws     int64
		region string
	}
	got := map[key]float64{}
	wss, _ := colInts(out, "window_start")
	regions := out.ColByName("region").Strs()
	revs := out.ColByName("rev").Floats()
	for i := range wss {
		got[key{wss[i], regions[i]}] = revs[i]
	}
	want := map[key]float64{
		{0, "EU"}:  50, // 2*10 + 3*10
		{0, "NA"}:  40,
		{10, "EU"}: 10,
		{10, "NA"}: 80,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("window %d region %s: rev = %g, want %g", k.ws, k.region, got[k], v)
		}
	}
}

func colInts(t *table.Table, name string) ([]int64, error) {
	c := t.ColByName(name)
	if c == nil {
		return nil, fmt.Errorf("no column %q", name)
	}
	return c.Ints(), nil
}

func TestSlidingAggregation(t *testing.T) {
	// One event at t=12 with size 10, slide 5 must appear in [5,15) and
	// [10,20).
	in := salesTable(saleRow(12, "EU", 1, 10))
	w, _ := core.NewSlidingWindow(10, 5)
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).
		Aggregate(w, nil, []core.AggSpec{{Func: core.AggCount, As: "n"}})
	out, st := runCollect(t, b)
	if st.Windows != 2 || out.NumRows() != 2 {
		t.Fatalf("windows = %d rows = %d", st.Windows, out.NumRows())
	}
	wss, _ := colInts(out, "window_start")
	wes, _ := colInts(out, "window_end")
	if wss[0] != 5 || wes[0] != 15 || wss[1] != 10 || wes[1] != 20 {
		t.Fatalf("window bounds = %v / %v", wss, wes)
	}
}

func TestCountWindowBoundaries(t *testing.T) {
	var rows []stream.Row
	for i := int64(0); i < 10; i++ {
		rows = append(rows, saleRow(i*100, "EU", 1, 1))
	}
	w, _ := core.NewCountWindow(4)
	b := stream.NewBuilder(stream.NewReplay(salesTable(rows...), "ts")).
		Aggregate(w, nil, []core.AggSpec{{Func: core.AggCount, As: "n"}})
	out, st := runCollect(t, b)
	// 10 events, windows of 4: two full windows plus a partial flush of 2.
	if st.Windows != 3 {
		t.Fatalf("windows = %d, want 3", st.Windows)
	}
	ns, _ := colInts(out, "n")
	wss, _ := colInts(out, "window_start")
	wes, _ := colInts(out, "window_end")
	wantN := []int64{4, 4, 2}
	wantWS := []int64{0, 4, 8}
	wantWE := []int64{4, 8, 10} // partial window's end reflects rows seen
	for i := range wantN {
		if ns[i] != wantN[i] || wss[i] != wantWS[i] || wes[i] != wantWE[i] {
			t.Errorf("window %d: n=%d [%d,%d), want n=%d [%d,%d)", i, ns[i], wss[i], wes[i], wantN[i], wantWS[i], wantWE[i])
		}
	}
}

// --- watermarks and out-of-order events -----------------------------------

func TestWatermarkEmissionAndLateness(t *testing.T) {
	// Batch size 1 makes every event advance the watermark individually,
	// so emission timing is deterministic.
	ch := stream.NewChannel(salesSchema(), "ts", 16)
	send := func(r stream.Row) {
		if err := ch.Send(r); err != nil {
			t.Fatal(err)
		}
	}
	send(saleRow(10, "EU", 1, 1)) // [10,20)
	send(saleRow(3, "EU", 1, 1))  // [0,10): out of order, within lateness 5 (watermark is 10-5=5 < 10)
	send(saleRow(22, "EU", 1, 1)) // [20,30): watermark 17 closes [0,10)
	send(saleRow(1, "EU", 1, 1))  // [0,10) already closed: dropped late
	ch.Close()

	w, _ := core.NewTumblingWindow(10)
	b := stream.NewBuilder(ch).
		WithBatchSize(1).
		WithLateness(5).
		Aggregate(w, nil, []core.AggSpec{{Func: core.AggCount, As: "n"}})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var emitted []*table.Table
	st, err := p.Run(context.Background(), stream.Callback(func(tb *table.Table) error {
		emitted = append(emitted, tb)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Late != 1 {
		t.Fatalf("late = %d, want 1", st.Late)
	}
	if st.Events != 4 || st.Windows != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Emission order: [0,10) closed by the watermark mid-stream, then the
	// end-of-stream flush emits [10,20) and [20,30) ascending.
	var starts, counts []int64
	for _, tb := range emitted {
		ws, _ := colInts(tb, "window_start")
		ns, _ := colInts(tb, "n")
		starts = append(starts, ws...)
		counts = append(counts, ns...)
	}
	if fmt.Sprint(starts) != "[0 10 20]" {
		t.Fatalf("emission order = %v, want [0 10 20]", starts)
	}
	// The out-of-order event at t=3 landed in [0,10); the late one at t=1
	// did not.
	if fmt.Sprint(counts) != "[1 1 1]" {
		t.Fatalf("counts = %v, want [1 1 1]", counts)
	}
	if st.Watermark != 17 {
		t.Fatalf("final watermark = %d, want 17", st.Watermark)
	}
}

// --- stateless pipelines, joins, post-aggregation stages ------------------

func TestStatelessMicroBatches(t *testing.T) {
	in := salesTable(
		saleRow(1, "EU", 2, 10),
		saleRow(2, "NA", 0, 40),
		saleRow(3, "EU", 5, 10),
	)
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).
		Filter(expr.Gt(expr.Column("qty"), expr.CInt(0))).
		Extend("rev", expr.Mul(expr.Column("qty"), expr.Column("price")))
	out, st := runCollect(t, b)
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (qty=0 filtered)", out.NumRows())
	}
	revs := out.ColByName("rev").Floats()
	if revs[0] != 20 || revs[1] != 50 {
		t.Fatalf("revs = %v", revs)
	}
	if st.OutRows != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEnrichmentJoin(t *testing.T) {
	dimSch := schema.New(
		schema.Attribute{Name: "r", Kind: value.KindString},
		schema.Attribute{Name: "name", Kind: value.KindString},
	)
	db := table.NewBuilder(dimSch, 2)
	db.MustAppend(value.NewString("EU"), value.NewString("Europe"))
	db.MustAppend(value.NewString("NA"), value.NewString("North America"))
	dim := db.Build()

	in := salesTable(
		saleRow(1, "EU", 1, 10),
		saleRow(2, "XX", 1, 10), // no dimension row: dropped by inner join
	)
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).
		JoinTable(dim, core.JoinInner, []string{"region"}, []string{"r"}, nil)
	out, _ := runCollect(t, b)
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
	if got := out.ColByName("name").Strs()[0]; got != "Europe" {
		t.Fatalf("name = %q", got)
	}
}

func TestPostAggregationHaving(t *testing.T) {
	in := salesTable(
		saleRow(1, "EU", 2, 10), // rev 20
		saleRow(2, "NA", 9, 40), // rev 360
	)
	w, _ := core.NewTumblingWindow(100)
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).
		Aggregate(w, []string{"region"}, revenueAggs()).
		Filter(expr.Gt(expr.Column("rev"), expr.CFloat(100))) // streaming HAVING
	out, _ := runCollect(t, b)
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", out.NumRows(), out)
	}
	if got := out.ColByName("region").Strs()[0]; got != "NA" {
		t.Fatalf("region = %q", got)
	}
}

func TestProjectRetainsTimeColumn(t *testing.T) {
	// Selecting away the time column before a window would break
	// assignment; the builder re-adds it implicitly.
	in := salesTable(saleRow(1, "EU", 2, 10), saleRow(11, "EU", 3, 10))
	w, _ := core.NewTumblingWindow(10)
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).
		Project([]string{"region", "qty"}).
		Aggregate(w, []string{"region"}, []core.AggSpec{{Func: core.AggSum, Arg: expr.Column("qty"), As: "q"}})
	out, st := runCollect(t, b)
	if st.Windows != 2 || out.NumRows() != 2 {
		t.Fatalf("windows = %d rows = %d:\n%s", st.Windows, out.NumRows(), out)
	}
	qs, _ := colInts(out, "q")
	if qs[0] != 2 || qs[1] != 3 {
		t.Fatalf("sums = %v", qs)
	}
}

// --- equivalence with the batch kernel ------------------------------------

// TestIncrementalMatchesBatchKernel drives the same rows through the
// incremental window accumulators (one giant window) and the batch
// hash-aggregation kernel, expecting identical relations.
func TestIncrementalMatchesBatchKernel(t *testing.T) {
	var rows []stream.Row
	regions := []string{"EU", "NA", "APAC"}
	for i := int64(0); i < 500; i++ {
		rows = append(rows, saleRow(i, regions[i%3], i%7, float64(i%11)))
	}
	in := salesTable(rows...)

	w, _ := core.NewTumblingWindow(1 << 40) // one window spans everything
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).
		WithBatchSize(64). // force many micro-batches
		Aggregate(w, []string{"region"}, revenueAggs())
	got, st := runCollect(t, b)
	if st.Batches < 2 {
		t.Fatalf("expected multiple micro-batches, got %d", st.Batches)
	}

	lit, _ := core.NewLiteral(in)
	ga, err := core.NewGroupAgg(lit, []string{"region"}, revenueAggs())
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.GroupAggregate(in, []string{"region"}, revenueAggs(), ga.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// Drop the window bound columns before comparing.
	gotCore := got.Project([]int{2, 3, 4})
	if !table.EqualUnordered(gotCore, want) {
		t.Fatalf("incremental:\n%s\nbatch kernel:\n%s", gotCore, want)
	}
}

// --- generator source and builder errors ----------------------------------

func TestGeneratorSource(t *testing.T) {
	src := stream.NewGenerator(salesSchema(), "ts", 100, func(i int64) (stream.Row, error) {
		return saleRow(i, "EU", 1, 2), nil
	})
	w, _ := core.NewTumblingWindow(25)
	b := stream.NewBuilder(src).
		Aggregate(w, nil, []core.AggSpec{{Func: core.AggSum, Arg: expr.Mul(expr.Column("qty"), expr.Column("price")), As: "rev"}})
	out, st := runCollect(t, b)
	if st.Events != 100 || st.Windows != 4 {
		t.Fatalf("stats = %+v", st)
	}
	revs := out.ColByName("rev").Floats()
	for i, r := range revs {
		if r != 50 { // 25 events * qty 1 * price 2
			t.Fatalf("window %d rev = %g, want 50", i, r)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	in := salesTable(saleRow(1, "EU", 1, 1))
	if err := stream.NewBuilder(stream.NewReplay(in, "nope")).Err(); err == nil {
		t.Error("missing time column accepted")
	}
	if err := stream.NewBuilder(stream.NewReplay(in, "region")).Err(); err == nil {
		t.Error("string time column accepted")
	}
	w, _ := core.NewTumblingWindow(10)
	aggs := []core.AggSpec{{Func: core.AggCount, As: "n"}}
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).
		Aggregate(w, nil, aggs).
		Aggregate(w, nil, aggs)
	if b.Err() == nil {
		t.Error("double aggregation accepted")
	}
	if b := stream.NewBuilder(stream.NewReplay(in, "ts")).WithBatchSize(0); b.Err() == nil {
		t.Error("batch size 0 accepted")
	}
	if b := stream.NewBuilder(stream.NewReplay(in, "ts")).WithLateness(-1); b.Err() == nil {
		t.Error("negative lateness accepted")
	}
	bad := core.StreamWindow{Kind: core.WindowTumbling, Size: -5}
	if b := stream.NewBuilder(stream.NewReplay(in, "ts")).Aggregate(bad, nil, aggs); b.Err() == nil {
		t.Error("invalid window spec accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	ch := stream.NewChannel(salesSchema(), "ts", 1)
	b := stream.NewBuilder(ch)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, stream.Callback(func(*table.Table) error { return nil })); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

// --- review regressions ----------------------------------------------------

// TestCancellationMidStreamReportsError: a context cancelled while a
// replay is in flight must surface as an error, not as a silently
// truncated result.
func TestCancellationMidStreamReportsError(t *testing.T) {
	var rows []stream.Row
	for i := int64(0); i < 5000; i++ {
		rows = append(rows, saleRow(i, "EU", 1, 1))
	}
	b := stream.NewBuilder(stream.NewReplay(salesTable(rows...), "ts")).WithBatchSize(16)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	batches := 0
	_, err = p.Run(ctx, stream.Callback(func(*table.Table) error {
		batches++
		if batches == 2 {
			cancel()
		}
		return nil
	}))
	if err == nil {
		t.Fatal("cancelled mid-stream run returned nil error")
	}
}

// TestChannelProducerReleasedOnAbort: when the consumer stops early, a
// producer blocked in Send must be released with an error instead of
// leaking.
func TestChannelProducerReleasedOnAbort(t *testing.T) {
	ch := stream.NewChannel(salesSchema(), "ts", 1)
	done := make(chan error, 1)
	go func() {
		for i := int64(0); ; i++ {
			if err := ch.Send(saleRow(i, "EU", 1, 1)); err != nil {
				done <- err
				return
			}
		}
	}()
	p, err := stream.NewBuilder(ch).WithBatchSize(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	abort := fmt.Errorf("sink full")
	if _, err := p.Run(context.Background(), stream.Callback(func(*table.Table) error {
		return abort
	})); err != abort {
		t.Fatalf("run error = %v, want sink abort", err)
	}
	if err := <-done; err == nil {
		t.Fatal("producer Send returned nil after consumer stopped")
	}
}

// TestLazyReplayFetchError: a lazy replay whose fetch fails surfaces the
// error from Run.
func TestLazyReplayFetchError(t *testing.T) {
	boom := fmt.Errorf("provider offline")
	src := stream.NewLazyReplay(salesSchema(), "ts", func() (*table.Table, error) { return nil, boom })
	p, err := stream.NewBuilder(src).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), stream.Callback(func(*table.Table) error { return nil })); err != boom {
		t.Fatalf("run error = %v, want fetch error", err)
	}
}

// TestPullSourceReleasedOnSinkError: a sink abort must not leave the
// replay goroutine blocked on its channel forever.
func TestPullSourceReleasedOnSinkError(t *testing.T) {
	var rows []stream.Row
	for i := int64(0); i < 5000; i++ {
		rows = append(rows, saleRow(i, "EU", 1, 1))
	}
	before := runtime.NumGoroutine()
	for r := 0; r < 10; r++ {
		p, err := stream.NewBuilder(stream.NewReplay(salesTable(rows...), "ts")).
			WithBatchSize(8).Build()
		if err != nil {
			t.Fatal(err)
		}
		abort := fmt.Errorf("sink abort")
		if _, err := p.Run(context.Background(), stream.Callback(func(*table.Table) error {
			return abort
		})); err != abort {
			t.Fatalf("run error = %v", err)
		}
	}
	// The producer goroutines exit once the pipeline cancels their
	// context; allow the scheduler a moment.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestStatelessSelectDropsTimeColumn: the implicitly retained event-time
// column must not leak into the output of a never-windowed query.
func TestStatelessSelectDropsTimeColumn(t *testing.T) {
	in := salesTable(saleRow(1, "EU", 2, 10))
	b := stream.NewBuilder(stream.NewReplay(in, "ts")).Project([]string{"region"})
	sch, err := b.OutputSchema()
	if err != nil {
		t.Fatal(err)
	}
	if sch.Len() != 1 || sch.At(0).Name != "region" {
		t.Fatalf("schema = %v, want (region)", sch)
	}
	out, _ := runCollect(t, b)
	if out.NumCols() != 1 || out.Schema().At(0).Name != "region" {
		t.Fatalf("output schema = %v, want (region)", out.Schema())
	}
	// Selecting the time column explicitly keeps it.
	b2 := stream.NewBuilder(stream.NewReplay(in, "ts")).Project([]string{"ts", "region"})
	out2, _ := runCollect(t, b2)
	if out2.NumCols() != 2 {
		t.Fatalf("explicit ts dropped: %v", out2.Schema())
	}
}

// TestGeneratorShortRowErrors: a generator returning the wrong row width
// must surface as a run error, not an index-out-of-range panic.
func TestGeneratorShortRowErrors(t *testing.T) {
	src := stream.NewGenerator(salesSchema(), "ts", 5, func(i int64) (stream.Row, error) {
		return stream.Row{value.NewInt(i)}, nil // 1 value for a 4-column schema
	})
	p, err := stream.NewBuilder(src).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), stream.Callback(func(*table.Table) error { return nil })); err == nil {
		t.Fatal("short row accepted")
	}
}
