package stream

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Names of the plan variables the pipeline binds per evaluation: the
// current micro-batch for the stateless stages, and the current window
// result for post-aggregation stages.
const (
	batchVar  = "__stream_batch"
	windowVar = "__stream_window"
)

// Output columns prepended to every windowed aggregation result. For
// time-based windows they are event-time bounds [start, end); for count
// windows they are event sequence numbers.
const (
	WindowStartCol = "window_start"
	WindowEndCol   = "window_end"
)

// Builder assembles a streaming pipeline. It mirrors the batch Query
// builder: immutable, error-carrying, every stage compiled into the
// existing core algebra nodes so stream and batch programs share one
// algebra and one type checker. Stages added before Aggregate apply to
// each micro-batch; stages added after apply to each emitted window
// result (the streaming HAVING).
type Builder struct {
	src Source
	err error

	pre  core.Node // plan over Var(batchVar, src.Schema())
	post core.Node // plan over Var(windowVar, winSch); nil until Aggregate

	win    core.StreamWindow
	keys   []string
	aggs   []core.AggSpec
	winSch schema.Schema // window bounds + keys + aggregate outputs

	// timeImplicit records that the latest Project kept the event-time
	// column only for windowing's sake; if no window follows, Build
	// strips it again so stateless streams match batch Select semantics.
	timeImplicit bool

	batchSize int
	lateness  int64
}

// DefaultBatchSize is the micro-batch row cap when none is configured.
const DefaultBatchSize = 1024

// NewBuilder starts a pipeline over the source, validating that the
// source's event-time column exists and is int64.
func NewBuilder(src Source) *Builder {
	b := &Builder{src: src, batchSize: DefaultBatchSize}
	if src == nil {
		b.err = fmt.Errorf("stream: nil source")
		return b
	}
	if _, err := timeIndex(src.Schema(), src.TimeCol()); err != nil {
		b.err = err
		return b
	}
	v, err := core.NewVar(batchVar, src.Schema())
	if err != nil {
		b.err = err
		return b
	}
	b.pre = v
	return b
}

// FailedBuilder returns a builder carrying a pre-existing error, for
// callers whose source acquisition failed (the error surfaces at Build,
// like any construction error).
func FailedBuilder(err error) *Builder { return &Builder{err: err} }

// timeIndex locates the event-time column and checks its kind.
func timeIndex(sch schema.Schema, timeCol string) (int, error) {
	i := sch.IndexOf(timeCol)
	if i < 0 {
		return -1, fmt.Errorf("stream: no event-time column %q in %v", timeCol, sch)
	}
	if sch.At(i).Kind != value.KindInt64 {
		return -1, fmt.Errorf("stream: event-time column %q must be int64, is %v", timeCol, sch.At(i).Kind)
	}
	return i, nil
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Source returns the source the builder was started on (nil for failed
// builders). Federated execution reads it to ship events to remote
// pipelines built from this builder's Spec.
func (b *Builder) Source() Source { return b.src }

// clone copies the builder for immutable derivation.
func (b *Builder) clone() *Builder {
	nb := *b
	return &nb
}

// fail returns a copy carrying the error.
func (b *Builder) fail(err error) *Builder {
	nb := b.clone()
	nb.err = err
	return nb
}

// cur returns the plan the next stateless stage extends.
func (b *Builder) cur() core.Node {
	if b.post != nil {
		return b.post
	}
	return b.pre
}

// derive installs a rebuilt plan on a copy.
func (b *Builder) derive(n core.Node, err error) *Builder {
	if b.err != nil {
		return b
	}
	if err != nil {
		return b.fail(err)
	}
	nb := b.clone()
	if b.post != nil {
		nb.post = n
	} else {
		nb.pre = n
	}
	return nb
}

// Filter keeps rows satisfying the predicate.
func (b *Builder) Filter(pred expr.Expr) *Builder {
	if b.err != nil {
		return b
	}
	return b.derive(core.NewFilter(b.cur(), pred))
}

// Project keeps the named columns. Before aggregation the event-time
// column is retained implicitly (windowing needs it).
func (b *Builder) Project(cols []string) *Builder {
	if b.err != nil {
		return b
	}
	implicit := b.timeImplicit
	if b.post == nil {
		tc := b.src.TimeCol()
		found := false
		for _, c := range cols {
			if c == tc {
				found = true
				break
			}
		}
		implicit = !found
		if !found {
			cols = append(append([]string(nil), cols...), tc)
		}
	}
	nb := b.derive(core.NewProject(b.cur(), cols))
	if nb.err == nil {
		nb.timeImplicit = implicit
	}
	return nb
}

// Extend appends a computed column.
func (b *Builder) Extend(name string, e expr.Expr) *Builder {
	if b.err != nil {
		return b
	}
	return b.derive(core.NewExtend(b.cur(), []core.ColDef{{Name: name, E: e}}))
}

// JoinTable equijoins the stream against a bounded table (enrichment).
// The table rides along as a plan literal, so the same exec join kernel
// that serves batch queries runs per micro-batch.
func (b *Builder) JoinTable(t *table.Table, typ core.JoinType, leftKeys, rightKeys []string, residual expr.Expr) *Builder {
	if b.err != nil {
		return b
	}
	lit, err := core.NewLiteral(t)
	if err != nil {
		return b.fail(err)
	}
	return b.derive(core.NewJoin(b.cur(), lit, typ, leftKeys, rightKeys, residual))
}

// Aggregate installs the windowed group-aggregation stage: cut the stream
// into windows per spec, group rows within each window by the key
// columns, and emit one result relation per closed window. Keys and
// aggregates are validated through core.NewGroupAgg — the same inference
// a batch GroupBy().Agg() gets.
func (b *Builder) Aggregate(w core.StreamWindow, keys []string, aggs []core.AggSpec) *Builder {
	if b.err != nil {
		return b
	}
	if b.post != nil {
		return b.fail(fmt.Errorf("stream: pipeline already aggregated"))
	}
	if err := w.Validate(); err != nil {
		return b.fail(err)
	}
	ga, err := core.NewGroupAgg(b.pre, keys, aggs)
	if err != nil {
		return b.fail(err)
	}
	attrs := []schema.Attribute{
		{Name: WindowStartCol, Kind: value.KindInt64},
		{Name: WindowEndCol, Kind: value.KindInt64},
	}
	attrs = append(attrs, ga.Schema().Attrs()...)
	winSch, err := schema.TryNew(attrs...)
	if err != nil {
		return b.fail(fmt.Errorf("stream: window output: %w", err))
	}
	post, err := core.NewVar(windowVar, winSch)
	if err != nil {
		return b.fail(err)
	}
	nb := b.clone()
	nb.win = w
	nb.keys = append([]string(nil), keys...)
	nb.aggs = append([]core.AggSpec(nil), aggs...)
	nb.winSch = winSch
	nb.post = post
	return nb
}

// WithBatchSize caps micro-batch size (rows pulled per evaluation).
func (b *Builder) WithBatchSize(n int) *Builder {
	if b.err != nil {
		return b
	}
	if n <= 0 {
		return b.fail(fmt.Errorf("stream: batch size must be positive, got %d", n))
	}
	nb := b.clone()
	nb.batchSize = n
	return nb
}

// WithLateness sets the allowed event-time lateness: the watermark trails
// the maximum observed event time by this much, so out-of-order events
// within the bound still land in their windows.
func (b *Builder) WithLateness(l int64) *Builder {
	if b.err != nil {
		return b
	}
	if l < 0 {
		return b.fail(fmt.Errorf("stream: lateness must be non-negative, got %d", l))
	}
	nb := b.clone()
	nb.lateness = l
	return nb
}

// OutputSchema is the schema of emitted result tables.
func (b *Builder) OutputSchema() (schema.Schema, error) {
	if b.err != nil {
		return schema.Schema{}, b.err
	}
	sch := b.cur().Schema()
	if b.post == nil && b.timeImplicit {
		// Build strips the implicitly retained time column for
		// never-windowed pipelines; report the stripped schema.
		return sch.ProjectNames(b.nonTimeCols(sch))
	}
	return sch, nil
}

// nonTimeCols lists the schema's column names minus the event-time
// column.
func (b *Builder) nonTimeCols(sch schema.Schema) []string {
	cols := make([]string, 0, sch.Len()-1)
	for i := 0; i < sch.Len(); i++ {
		if sch.At(i).Name != b.src.TimeCol() {
			cols = append(cols, sch.At(i).Name)
		}
	}
	return cols
}

// Build finalizes the pipeline: per-batch plans are fixed, aggregate
// argument expressions are compiled once against the post-stage schema,
// and key positions are resolved. Build goes through the serializable
// Spec — the same resolution a remote server performs on a shipped spec —
// so local and federated pipelines cannot drift apart.
func (b *Builder) Build() (*Pipeline, error) {
	sp, err := b.Spec()
	if err != nil {
		return nil, err
	}
	return FromSpec(b.src, sp)
}
