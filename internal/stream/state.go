package stream

import (
	"fmt"

	"nexus/internal/engines/exec"
	"nexus/internal/value"
)

// State is the portable execution state of a windowed pipeline: the
// per-window, per-group partial aggregates plus the progress counters
// needed to resume the stream elsewhere. A subscriber that detaches
// mid-stream receives a State over the wire (internal/wire's WindowState
// codec) and hands it to another provider — the stream picks up exactly
// where it left off, windows half-full and all.
type State struct {
	// Events counts source rows consumed since the stream began,
	// accumulated across resumes; a replayable source skips this many
	// rows when the pipeline restarts.
	Events int64
	// MaxTime and Watermark are the event-time progress markers
	// (math.MinInt64 before the first event).
	MaxTime   int64
	Watermark int64
	// Seq is the arrival counter for count windows.
	Seq int64
	// Epoch is the order epoch of the replayed dataset at the time the
	// state was captured (0 for push sources and epoch-unaware
	// providers). Events is a row offset into the dataset's storage
	// order, so the offset is only meaningful while the dataset is in
	// the same epoch: compaction re-sorts, replace and drop+recreate
	// all bump it, and the server refuses a resume whose epoch no
	// longer matches instead of silently replaying the wrong rows.
	Epoch uint64
	// Windows holds every still-open window, in ascending start order.
	Windows []WindowSnapshot
}

// WindowSnapshot is one open window's partial state.
type WindowSnapshot struct {
	Start, End int64
	Count      int64
	Groups     []GroupSnapshot
}

// GroupSnapshot is one group's key values and accumulator states, in the
// group's first-seen order (preserved so resumed output ordering matches
// an uninterrupted run).
type GroupSnapshot struct {
	Keys []value.Value
	Accs []exec.AccSnapshot
}

// snapshotState captures the pipeline's open windows and counters.
func snapshotState(open map[int64]*winState, starts []int64, events, maxTime, watermark, seq int64) *State {
	st := &State{Events: events, MaxTime: maxTime, Watermark: watermark, Seq: seq}
	for _, start := range starts {
		ws := open[start]
		w := WindowSnapshot{Start: ws.start, End: ws.end, Count: ws.count}
		for _, g := range ws.order {
			gs := GroupSnapshot{Keys: append([]value.Value(nil), g.keyVals...)}
			gs.Accs = make([]exec.AccSnapshot, len(g.accs))
			for i, a := range g.accs {
				gs.Accs[i] = a.Snapshot()
			}
			w.Groups = append(w.Groups, gs)
		}
		st.Windows = append(st.Windows, w)
	}
	return st
}

// restoreState rebuilds the open-window map from a snapshot. The key
// encoding is recomputed from the group's key values — the same canonical
// encoding both sides use — so a state can migrate between providers.
func (p *Pipeline) restoreState(st *State) (map[int64]*winState, error) {
	open := make(map[int64]*winState, len(st.Windows))
	for _, w := range st.Windows {
		ws := &winState{start: w.Start, end: w.End, count: w.Count, groups: make(map[string]*winGroup)}
		for _, gs := range w.Groups {
			if len(gs.Keys) != len(p.keyIdx) {
				return nil, fmt.Errorf("stream: resume state has %d group keys, pipeline needs %d", len(gs.Keys), len(p.keyIdx))
			}
			if len(gs.Accs) != len(p.aggs) {
				return nil, fmt.Errorf("stream: resume state has %d accumulators, pipeline needs %d", len(gs.Accs), len(p.aggs))
			}
			g := &winGroup{keyVals: append([]value.Value(nil), gs.Keys...)}
			g.accs = make([]*exec.Accumulator, len(gs.Accs))
			for i, as := range gs.Accs {
				if as.Fn != p.aggs[i].Func {
					return nil, fmt.Errorf("stream: resume accumulator %d is %v, pipeline needs %v", i, as.Fn, p.aggs[i].Func)
				}
				g.accs[i] = exec.RestoreAccumulator(as)
			}
			var keyBuf []byte
			for _, kv := range g.keyVals {
				keyBuf = value.AppendKey(keyBuf, kv)
			}
			ws.groups[string(keyBuf)] = g
			ws.order = append(ws.order, g)
		}
		open[w.Start] = ws
	}
	return open, nil
}
