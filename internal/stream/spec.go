package stream

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/value"
)

// Spec is the serializable description of a pipeline: everything Build
// resolved, minus the live Source. A Spec crosses the wire (internal/wire
// encodes it inside SubscribeStream), and a remote server reattaches it
// to a source of its own with FromSpec — the paper's "plans run where the
// data lives" property, extended to data in motion.
type Spec struct {
	// Pre is the per-micro-batch plan over Var(BatchVar, source schema).
	Pre core.Node
	// Post is the per-window plan over Var(WindowVar, window schema); nil
	// for non-windowed pipelines.
	Post core.Node
	// Windowed selects windowed aggregation.
	Windowed bool
	Win      core.StreamWindow
	Keys     []string
	Aggs     []core.AggSpec
	// BatchSize caps micro-batch rows; Lateness is the allowed event-time
	// lateness.
	BatchSize int
	Lateness  int64
}

// Exported plan-variable names so the wire layer and remote servers can
// validate shipped specs against the sources they attach.
const (
	BatchVar  = batchVar
	WindowVar = windowVar
)

// Spec resolves the builder into its portable form, applying the same
// finalization Build performs (implicit time-column stripping for
// pipelines that never windowed).
func (b *Builder) Spec() (Spec, error) {
	if b.err != nil {
		return Spec{}, b.err
	}
	sp := Spec{
		Pre:       b.pre,
		Post:      b.post,
		BatchSize: b.batchSize,
		Lateness:  b.lateness,
	}
	if b.post == nil {
		if b.timeImplicit {
			pre, err := core.NewProject(b.pre, b.nonTimeCols(b.pre.Schema()))
			if err != nil {
				return Spec{}, err
			}
			sp.Pre = pre
		}
		return sp, nil
	}
	sp.Windowed = true
	sp.Win = b.win
	sp.Keys = append([]string(nil), b.keys...)
	sp.Aggs = append([]core.AggSpec(nil), b.aggs...)
	return sp, nil
}

// FromSpec attaches a spec to a source and resolves it into a runnable
// pipeline. Every structural invariant is re-validated — specs arrive
// over the wire, so nothing is trusted: the pre plan must read the
// source's schema, the window schema is re-inferred through
// core.NewGroupAgg, and aggregate arguments recompile against the
// transformed batch schema.
func FromSpec(src Source, sp Spec) (*Pipeline, error) {
	if src == nil {
		return nil, fmt.Errorf("stream: nil source")
	}
	if sp.Pre == nil {
		return nil, fmt.Errorf("stream: spec has no pre plan")
	}
	batchSize := sp.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	if sp.Lateness < 0 {
		return nil, fmt.Errorf("stream: lateness must be non-negative, got %d", sp.Lateness)
	}
	if err := checkVar(sp.Pre, batchVar, src.Schema()); err != nil {
		return nil, err
	}
	p := &Pipeline{
		src:       src,
		pre:       sp.Pre,
		post:      sp.Post,
		batchSize: batchSize,
		lateness:  sp.Lateness,
	}
	var err error
	p.srcTimeIdx, err = timeIndex(src.Schema(), src.TimeCol())
	if err != nil {
		return nil, err
	}
	p.srcWidth = src.Schema().Len()
	if !sp.Windowed {
		if sp.Post != nil {
			return nil, fmt.Errorf("stream: spec has a post plan but no window")
		}
		p.outSch = p.pre.Schema()
		return p, nil
	}
	if err := sp.Win.Validate(); err != nil {
		return nil, err
	}
	p.windowed = true
	p.win = sp.Win
	preSch := sp.Pre.Schema()
	p.preTimeIdx, err = timeIndex(preSch, src.TimeCol())
	if err != nil {
		return nil, err
	}
	// Re-infer the window output schema: bounds, keys, aggregates.
	ga, err := core.NewGroupAgg(sp.Pre, sp.Keys, sp.Aggs)
	if err != nil {
		return nil, err
	}
	attrs := []schema.Attribute{
		{Name: WindowStartCol, Kind: value.KindInt64},
		{Name: WindowEndCol, Kind: value.KindInt64},
	}
	attrs = append(attrs, ga.Schema().Attrs()...)
	winSch, err := schema.TryNew(attrs...)
	if err != nil {
		return nil, fmt.Errorf("stream: window output: %w", err)
	}
	p.winSch = winSch
	if sp.Post == nil {
		post, err := core.NewVar(windowVar, winSch)
		if err != nil {
			return nil, err
		}
		p.post = post
	} else if err := checkVar(sp.Post, windowVar, winSch); err != nil {
		return nil, err
	}
	p.outSch = p.post.Schema()
	p.keyIdx = make([]int, len(sp.Keys))
	for i, k := range sp.Keys {
		pos := preSch.IndexOf(k)
		if pos < 0 {
			return nil, fmt.Errorf("stream: no group key column %q", k)
		}
		p.keyIdx[i] = pos
	}
	p.aggs = sp.Aggs
	p.argExprs = make([]*expr.Compiled, len(sp.Aggs))
	for i, a := range sp.Aggs {
		if a.Arg == nil {
			continue
		}
		c, err := expr.Compile(a.Arg, preSch)
		if err != nil {
			return nil, fmt.Errorf("stream: aggregate %q: %w", a.As, err)
		}
		p.argExprs[i] = c
	}
	return p, nil
}

// checkVar verifies the plan's variable leaf carries the expected name
// and schema, so a shipped spec cannot silently read columns the
// attached source does not produce.
func checkVar(n core.Node, name string, sch schema.Schema) error {
	var found *core.Var
	var walk func(core.Node)
	walk = func(n core.Node) {
		if v, ok := n.(*core.Var); ok && v.Name == name {
			found = v
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	if found == nil {
		return fmt.Errorf("stream: spec plan has no %q variable", name)
	}
	if !found.Schema().Equal(sch) {
		return fmt.Errorf("stream: spec plan reads schema %v, source provides %v", found.Schema(), sch)
	}
	return nil
}
