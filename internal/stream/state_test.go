package stream_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"nexus/internal/core"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// genSales builds a deterministic pseudo-random event sequence with
// bounded out-of-orderness.
func genSales(seed int64, n int, jitter int64) []stream.Row {
	r := rand.New(rand.NewSource(seed))
	rows := make([]stream.Row, n)
	regions := []string{"na", "eu", "ap"}
	for i := range rows {
		ts := int64(i) - r.Int63n(jitter+1)
		if ts < 0 {
			ts = 0
		}
		rows[i] = saleRow(ts, regions[r.Intn(len(regions))], 1+r.Int63n(5), float64(r.Intn(100))/4)
	}
	return rows
}

// buildWindowed assembles a windowed revenue pipeline over a replay of
// the rows.
func buildWindowed(t *testing.T, rows []stream.Row, win core.StreamWindow, lateness int64, batch int) *stream.Pipeline {
	t.Helper()
	p, err := stream.NewBuilder(stream.NewReplay(salesTable(rows...), "ts")).
		WithBatchSize(batch).
		WithLateness(lateness).
		Aggregate(win, []string{"region"}, revenueAggs()).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// stopAfter is a sink that accepts k tables then reports errStop.
var errStop = errors.New("stop")

type stopAfter struct {
	k   int
	got []*table.Table
}

func (s *stopAfter) Emit(t *table.Table) error {
	if len(s.got) >= s.k {
		return errStop
	}
	s.got = append(s.got, t)
	return nil
}

// TestRunStateResume: interrupting a windowed pipeline mid-stream,
// snapshotting its state, and resuming a fresh pipeline from that state
// over a source that skips the consumed rows must produce exactly the
// uninterrupted run's output — for every window kind.
func TestRunStateResume(t *testing.T) {
	wins := map[string]core.StreamWindow{
		"tumbling": {Kind: core.WindowTumbling, Size: 10, Slide: 10},
		"sliding":  {Kind: core.WindowSliding, Size: 10, Slide: 5},
		"count":    {Kind: core.WindowCount, Size: 7},
	}
	rows := genSales(42, 500, 8)
	for name, win := range wins {
		t.Run(name, func(t *testing.T) {
			for _, stopAt := range []int{0, 1, 3, 10} {
				// Oracle: one uninterrupted run.
				oracle := stream.NewCollect(buildWindowed(t, rows, win, 4, 32).OutputSchema())
				if _, err := buildWindowed(t, rows, win, 4, 32).Run(context.Background(), oracle); err != nil {
					t.Fatal(err)
				}
				want, err := oracle.Table()
				if err != nil {
					t.Fatal(err)
				}

				// Interrupted run: stop after stopAt windows, snapshot.
				first := &stopAfter{k: stopAt}
				_, state, err := buildWindowed(t, rows, win, 4, 32).RunState(context.Background(), first, nil)
				if !errors.Is(err, errStop) {
					t.Fatalf("stop=%d: expected sentinel, got %v", stopAt, err)
				}
				if state == nil {
					t.Fatalf("stop=%d: no state", stopAt)
				}

				// Ship the state through the wire codec — resume must work
				// from the decoded copy, as it would on another machine.
				_, decoded, err2 := wire.DecodeWindowState(wire.EncodeWindowState(1, state))
				if err2 != nil {
					t.Fatal(err2)
				}

				// Resume over the remaining rows.
				rest := rows[decoded.Events:]
				second := stream.NewCollect(buildWindowed(t, rows, win, 4, 32).OutputSchema())
				if _, _, err := buildWindowed(t, rest, win, 4, 32).RunState(context.Background(), second, decoded); err != nil {
					t.Fatalf("stop=%d resume: %v", stopAt, err)
				}
				got2, err := second.Table()
				if err != nil {
					t.Fatal(err)
				}
				combined, err := tablesBytesConcat(first.got, got2)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(combined, wire.EncodeTable(want)) {
					t.Fatalf("%s stop=%d: resumed output differs from oracle", name, stopAt)
				}
			}
		})
	}
}

func tablesBytesConcat(first []*table.Table, rest *table.Table) ([]byte, error) {
	if len(first) == 0 {
		return wire.EncodeTable(rest), nil
	}
	all, err := first[0].Concat(append(first[1:], rest)...)
	if err != nil {
		return nil, err
	}
	return wire.EncodeTable(all), nil
}

// TestRunStateFinal: a clean end-of-stream run returns a state with no
// open windows and the full event count.
func TestRunStateFinal(t *testing.T) {
	rows := genSales(7, 100, 3)
	p := buildWindowed(t, rows, core.StreamWindow{Kind: core.WindowTumbling, Size: 10, Slide: 10}, 2, 16)
	sink := stream.NewCollect(p.OutputSchema())
	stats, state, err := p.RunState(context.Background(), sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	if state == nil || len(state.Windows) != 0 {
		t.Fatalf("end-of-stream state should have no open windows: %+v", state)
	}
	if state.Events != int64(len(rows)) || stats.Events != int64(len(rows)) {
		t.Fatalf("events: state=%d stats=%d want %d", state.Events, stats.Events, len(rows))
	}
}

// TestPartitionOfStable: the partition hash is deterministic, covers all
// partitions, and dispatches int64 keys through the raw-bits path.
func TestPartitionOfStable(t *testing.T) {
	seen := map[uint32]int{}
	for i := int64(0); i < 1000; i++ {
		p := stream.PartitionOf(value.NewInt(i), 3)
		if p >= 3 {
			t.Fatalf("partition %d out of range", p)
		}
		if p != stream.PartitionOf(value.NewInt(i), 3) {
			t.Fatal("hash not deterministic")
		}
		seen[p]++
	}
	for p := uint32(0); p < 3; p++ {
		if seen[p] < 200 {
			t.Fatalf("partition %d underloaded: %v", p, seen)
		}
	}
	if stream.PartitionOf(value.NewString("x"), 1) != 0 || stream.PartitionOf(value.Null, 4) != 0 {
		t.Fatal("degenerate partitions")
	}
}
