package stream

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Stats reports the work a pipeline run performed.
type Stats struct {
	Events    int64 // rows consumed from the source
	Batches   int64 // micro-batches evaluated
	Windows   int64 // windows emitted (including the end-of-stream flush)
	Late      int64 // rows dropped because every window they belong to had closed
	OutRows   int64 // rows delivered to the sink
	Watermark int64 // final event-time watermark (math.MinInt64 if no events)
}

// Pipeline is an executable streaming query, produced by Builder.Build.
// A Pipeline is stateless between runs; Run may be called again
// (sequentially) when the source allows reopening (see Source.Open).
type Pipeline struct {
	src       Source
	pre       core.Node // stateless stages over Var(batchVar, ...)
	post      core.Node // post-window stages over Var(windowVar, ...); nil if not windowed
	batchSize int
	lateness  int64
	cache     *exec.ExprCache // optional shared compiled-plan cache

	srcTimeIdx int
	srcWidth   int

	windowed   bool
	win        core.StreamWindow
	winSch     schema.Schema // window bounds + keys + aggregates
	outSch     schema.Schema // schema of emitted tables
	preTimeIdx int
	keyIdx     []int
	aggs       []core.AggSpec
	argExprs   []*expr.Compiled // parallel to aggs; nil for count(*)

	// ckptFn, when set, receives a consistent state snapshot at batch
	// boundaries, rate-limited to one call per ckptEvery (<=0 snapshots
	// every batch). Servers use it for durable checkpoints.
	ckptFn    func(*State) error
	ckptEvery time.Duration

	// trace, when set, records per-operator stats for every pre- and
	// post-window evaluation (see exec.Trace); Calls accumulates across
	// micro-batches.
	trace *exec.Trace
}

// OutputSchema describes emitted result tables.
func (p *Pipeline) OutputSchema() schema.Schema { return p.outSch }

// Windowed reports whether the pipeline aggregates over windows (and so
// carries resumable window state).
func (p *Pipeline) Windowed() bool { return p.windowed }

// WithCache installs a shared compiled-expression cache, letting a host
// that runs many pipelines (a nexus server with long-lived
// subscriptions) compile each plan once across all of them.
func (p *Pipeline) WithCache(c *exec.ExprCache) *Pipeline {
	p.cache = c
	return p
}

// WithTrace attaches a per-operator execution trace to the pipeline's
// next run: every micro-batch evaluation of the pre-window plan and
// every post-window evaluation records calls, output rows and wall time
// per operator. Render with exec.ExplainAnalyze over StagePlans.
func (p *Pipeline) WithTrace(tr *exec.Trace) *Pipeline {
	p.trace = tr
	return p
}

// StagePlans returns the pipeline's per-batch plan (over the micro-batch
// variable) and its post-window plan (nil when the pipeline is not
// windowed or has no post-window stages) — the node trees a trace
// attached via WithTrace records against.
func (p *Pipeline) StagePlans() (pre, post core.Node) { return p.pre, p.post }

// WithCheckpoint installs a checkpoint callback. The pipeline calls fn
// with a portable state snapshot at micro-batch boundaries — after the
// batch's windows have been emitted, so the snapshot never claims rows
// a resume would replay into already-delivered windows — at most once
// per every (every <= 0 checkpoints after every batch). An error from
// fn stops the pipeline; the returned state is still consistent.
func (p *Pipeline) WithCheckpoint(every time.Duration, fn func(*State) error) *Pipeline {
	p.ckptFn = fn
	p.ckptEvery = every
	return p
}

// winGroup is the incremental aggregation state of one group within one
// window: the group's key values and one exec accumulator per aggregate —
// the same kernels batch GroupAgg uses, fed a row at a time.
type winGroup struct {
	keyVals []value.Value
	accs    []*exec.Accumulator
}

// winState is one open window.
type winState struct {
	start, end int64
	groups     map[string]*winGroup
	order      []*winGroup
	count      int64 // rows assigned (count windows close on this)
}

// Run drives the pipeline to end-of-stream (or ctx cancellation),
// delivering every emitted result table to the sink.
func (p *Pipeline) Run(ctx context.Context, sink Sink) (Stats, error) {
	st, _, err := p.RunState(ctx, sink, nil)
	return st, err
}

// ProgressSink is an optional Sink extension: the pipeline reports every
// watermark advance, so federated subscribers can learn stream progress
// even when no window closes (idle-stream liveness).
type ProgressSink interface {
	Sink
	Progress(watermark int64) error
}

// RunState is Run with state handoff: a non-nil resume installs a prior
// run's open windows and progress counters before the first batch, and
// the returned State captures the open windows at exit — on clean
// end-of-stream, after a cancellation, or alongside an error. The
// returned state is always usable to resume (or migrate) the stream on a
// source that skips State.Events rows.
func (p *Pipeline) RunState(ctx context.Context, sink Sink, resume *State) (Stats, *State, error) {
	var st Stats
	st.Watermark = math.MinInt64

	// When this consumer stops for any reason — error, cancellation, end
	// of stream — release the producers: cancel the source's context so
	// pull sources (replay, generator) exit their goroutines, and signal
	// push sources so a blocked Send returns instead of leaking.
	ctx, cancelSrc := context.WithCancel(ctx)
	defer cancelSrc()
	if s, ok := p.src.(interface{ stop() }); ok {
		defer s.stop()
	}
	// One runtime per run; the cache is shared across runs when the
	// pipeline's owner installed one (a server hosting many subscriptions
	// compiles each plan once, not once per subscriber).
	rt := &exec.Runtime{Cache: p.cache, Trace: p.trace}
	if rt.Cache == nil {
		rt.Cache = exec.NewExprCache()
	}
	srcSch := p.src.Schema()

	open := make(map[int64]*winState)
	var (
		baseEvents = int64(0)
		maxTime    = int64(math.MinInt64)
		watermark  = int64(math.MinInt64)
		seq        int64 // arrival counter for count windows
		winBuf     []int64
		keyBuf     []byte
	)
	if resume != nil {
		var err error
		if p.windowed {
			open, err = p.restoreState(resume)
			if err != nil {
				return st, nil, err
			}
		}
		baseEvents = resume.Events
		maxTime = resume.MaxTime
		watermark = resume.Watermark
		seq = resume.Seq
		if watermark != math.MinInt64 {
			st.Watermark = watermark
		}
	}
	// snap captures the current open-window state in ascending start
	// order; every exit path returns it so subscribers can detach, move,
	// and reattach at any point.
	snap := func() *State {
		starts := make([]int64, 0, len(open))
		for s := range open {
			starts = append(starts, s)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		return snapshotState(open, starts, baseEvents+st.Events, maxTime, watermark, seq)
	}

	emit := func(t *table.Table) error {
		if p.post != nil {
			var err error
			t, err = rt.Eval(p.post, (*exec.Env)(nil).Bind(windowVar, t))
			if err != nil {
				return err
			}
		}
		if t.NumRows() == 0 {
			return nil
		}
		st.OutRows += int64(t.NumRows())
		return sink.Emit(t)
	}
	emitWindow := func(ws *winState) error {
		st.Windows++
		return emit(p.windowTable(ws))
	}
	// emitClosed flushes open windows whose end the watermark has passed,
	// in ascending start order for deterministic output.
	emitClosed := func(mark int64) error {
		var due []int64
		for start, ws := range open {
			if ws.end <= mark {
				due = append(due, start)
			}
		}
		sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
		for _, start := range due {
			if err := emitWindow(open[start]); err != nil {
				return err
			}
			delete(open, start)
		}
		return nil
	}

	// The watermark advances between batches: accumulation sees the
	// previous batch's mark (so same-batch stragglers are never late),
	// emission after it sees the new one. It advances on every pipeline
	// kind so Stats.Watermark stays an honest progress signal even when
	// nothing waits on it.
	advance := func() {
		if maxTime != math.MinInt64 && maxTime-p.lateness > watermark {
			watermark = maxTime - p.lateness
			st.Watermark = watermark
		}
	}
	// Progress notifications go out AFTER the windows a watermark closes
	// have been emitted — a subscriber that hears "watermark = m" may
	// conclude every window ending at or before m has already been sent
	// (the federated merge releases windows on exactly that invariant).
	ps, _ := sink.(ProgressSink)
	lastNotified := int64(math.MinInt64)
	notify := func() error {
		if ps != nil && watermark > lastNotified {
			lastNotified = watermark
			return ps.Progress(watermark)
		}
		return nil
	}

	// checkpoint persists a consistent snapshot at batch boundaries,
	// rate-limited to the configured interval.
	lastCkpt := time.Now()
	checkpoint := func() error {
		if p.ckptFn == nil {
			return nil
		}
		if p.ckptEvery > 0 && time.Since(lastCkpt) < p.ckptEvery {
			return nil
		}
		lastCkpt = time.Now()
		return p.ckptFn(snap())
	}

	// ingest returns the next micro-batch, or ok=false at end-of-stream.
	// Batch-capable sources hand over whole tables — one channel
	// operation per micro-batch; row sources block for the first row of
	// the next batch, then drain whatever has already arrived (up to the
	// batch cap) without waiting, so quiet streams keep low latency and
	// busy streams amortize evaluation over large batches.
	var ingest func() (*table.Table, bool, error)
	if bs, ok := p.src.(BatchSource); ok {
		batches := bs.OpenBatches(ctx, p.batchSize)
		ingest = func() (*table.Table, bool, error) {
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err()
			case t, ok := <-batches:
				if !ok {
					return nil, false, nil
				}
				if err := p.observeBatch(t, &maxTime); err != nil {
					return nil, false, err
				}
				return t, true, nil
			}
		}
	} else {
		rows := p.src.Open(ctx)
		eof := false
		ingest = func() (*table.Table, bool, error) {
			if eof {
				return nil, false, nil
			}
			b := table.NewBuilder(srcSch, 0)
			var first Row
			var ok bool
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err()
			case first, ok = <-rows:
			}
			if !ok {
				return nil, false, nil
			}
			if err := p.appendRow(b, first, &maxTime); err != nil {
				return nil, false, err
			}
		drain:
			for b.Len() < p.batchSize {
				select {
				case row, rok := <-rows:
					if !rok {
						eof = true
						break drain
					}
					if err := p.appendRow(b, row, &maxTime); err != nil {
						return nil, false, err
					}
				default:
					break drain
				}
			}
			return b.Build(), true, nil
		}
	}

	for {
		batch, ok, err := ingest()
		if err != nil {
			return st, snap(), err
		}
		if !ok {
			break
		}
		if batch.NumRows() == 0 {
			continue
		}
		out, err := rt.Eval(p.pre, (*exec.Env)(nil).Bind(batchVar, batch))
		if err != nil {
			return st, snap(), err
		}
		if !p.windowed {
			st.Events += int64(batch.NumRows())
			st.Batches++
			advance()
			if err := emit(out); err != nil {
				return st, snap(), err
			}
			if err := notify(); err != nil {
				return st, snap(), err
			}
			if err := checkpoint(); err != nil {
				return st, snap(), err
			}
			continue
		}

		// Assign transformed rows to windows and fold them into the
		// per-window accumulators. The watermark in force is the one from
		// before this batch: windows it closed are gone, anything newer
		// is still open.
		argCols, err := p.argColumns(out)
		if err != nil {
			return st, snap(), err
		}
		// Events counts only after the whole batch is certain to fold:
		// an eval or argument error must not leave a snapshot claiming
		// rows that never reached a window (a resume would skip them).
		st.Events += int64(batch.NumRows())
		st.Batches++
		times := out.Col(p.preTimeIdx).Ints()
		for i := 0; i < out.NumRows(); i++ {
			if p.win.TimeBased() {
				t := times[i]
				winBuf = p.win.Assign(winBuf[:0], t)
				live := false
				for _, start := range winBuf {
					if start+p.win.Size <= watermark {
						continue // window already emitted; row is late
					}
					live = true
					ws := open[start]
					if ws == nil {
						ws = &winState{start: start, end: start + p.win.Size, groups: make(map[string]*winGroup)}
						open[start] = ws
					}
					keyBuf = p.foldRow(ws, out, i, argCols, keyBuf)
				}
				if !live {
					st.Late++
				}
			} else {
				start := (seq / p.win.Size) * p.win.Size
				ws := open[start]
				if ws == nil {
					ws = &winState{start: start, end: start + p.win.Size, groups: make(map[string]*winGroup)}
					open[start] = ws
				}
				keyBuf = p.foldRow(ws, out, i, argCols, keyBuf)
				seq++
			}
		}
		advance()
		// Emission happens only at batch boundaries, for count windows as
		// much as time windows: a mid-fold emit error would snapshot a
		// state whose Events count includes rows never folded, breaking
		// resume. Full count windows wait the few rows until the batch
		// ends.
		if p.win.TimeBased() {
			if err := emitClosed(watermark); err != nil {
				return st, snap(), err
			}
			if err := notify(); err != nil {
				return st, snap(), err
			}
		} else {
			var due []int64
			for start, ws := range open {
				if ws.count >= p.win.Size {
					due = append(due, start)
				}
			}
			sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
			for _, start := range due {
				if err := emitWindow(open[start]); err != nil {
					return st, snap(), err
				}
				delete(open, start)
			}
		}
		if err := checkpoint(); err != nil {
			return st, snap(), err
		}
	}
	if err := p.src.Err(); err != nil {
		return st, snap(), err
	}
	if p.windowed {
		// End of stream: every remaining window closes, including partial
		// count windows (their end reflects the rows actually seen).
		for _, ws := range open {
			if !p.win.TimeBased() {
				ws.end = ws.start + ws.count
			}
		}
		if err := emitClosed(math.MaxInt64); err != nil {
			return st, snap(), err
		}
	}
	return st, snap(), nil
}

// observeBatch validates a source-produced micro-batch and advances the
// maximum observed event time from its time column.
func (p *Pipeline) observeBatch(t *table.Table, maxTime *int64) error {
	if t.NumCols() != p.srcWidth {
		return fmt.Errorf("stream: batch has %d columns, schema needs %d", t.NumCols(), p.srcWidth)
	}
	srcSch := p.src.Schema()
	for i := 0; i < t.NumCols(); i++ {
		if got, want := t.Col(i).Kind(), srcSch.At(i).Kind; got != want {
			return fmt.Errorf("stream: batch column %q is %v, schema needs %v", srcSch.At(i).Name, got, want)
		}
	}
	col := t.Col(p.srcTimeIdx)
	if valid := col.Validity(); valid != nil {
		for i, ok := range valid {
			if !ok {
				return fmt.Errorf("stream: event %d has no int64 event time (got NULL)", i)
			}
		}
	}
	for _, ts := range col.Ints() {
		if ts > *maxTime {
			*maxTime = ts
		}
	}
	return nil
}

// appendRow validates and buffers one source row, advancing the maximum
// observed event time.
func (p *Pipeline) appendRow(b *table.Builder, row Row, maxTime *int64) error {
	if len(row) != p.srcWidth {
		return fmt.Errorf("stream: event %d has %d values, schema needs %d", b.Len(), len(row), p.srcWidth)
	}
	tv := row[p.srcTimeIdx]
	if tv.IsNull() || tv.Kind() != value.KindInt64 {
		return fmt.Errorf("stream: event %d has no int64 event time (got %v)", b.Len(), tv)
	}
	if t := tv.Int(); t > *maxTime {
		*maxTime = t
	}
	if err := b.Append(row...); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// argColumns evaluates each aggregate's argument expression over the
// transformed batch, vectorized, exactly as the batch kernel does.
func (p *Pipeline) argColumns(t *table.Table) ([]*table.Column, error) {
	cols := make([]*table.Column, len(p.argExprs))
	for i, c := range p.argExprs {
		if c == nil {
			continue
		}
		col, err := c.EvalBatch(t)
		if err != nil {
			return nil, fmt.Errorf("stream: aggregate %q: %w", p.aggs[i].As, err)
		}
		cols[i] = col
	}
	return cols, nil
}

// foldRow adds transformed row i to the window's group state, creating
// the group on first sight. Returns the (possibly grown) key buffer.
func (p *Pipeline) foldRow(ws *winState, t *table.Table, i int, argCols []*table.Column, keyBuf []byte) []byte {
	ws.count++
	keyBuf = keyBuf[:0]
	for _, pos := range p.keyIdx {
		keyBuf = value.AppendKey(keyBuf, t.Value(i, pos))
	}
	g, ok := ws.groups[string(keyBuf)]
	if !ok {
		g = &winGroup{
			keyVals: make([]value.Value, len(p.keyIdx)),
			accs:    make([]*exec.Accumulator, len(p.aggs)),
		}
		for j, pos := range p.keyIdx {
			g.keyVals[j] = t.Value(i, pos)
		}
		for j, a := range p.aggs {
			g.accs[j] = exec.NewAccumulator(a.Func)
		}
		ws.groups[string(keyBuf)] = g
		ws.order = append(ws.order, g)
	}
	for j := range p.aggs {
		if argCols[j] == nil {
			g.accs[j].Add(value.NewInt(1)) // count(*)
			continue
		}
		g.accs[j].Add(argCols[j].Value(i))
	}
	return keyBuf
}

// windowTable materializes one closed window as a bounded relation:
// window bounds, group keys, then aggregate results coerced to the
// schema core inferred.
func (p *Pipeline) windowTable(ws *winState) *table.Table {
	sch := p.winSch
	b := table.NewBuilder(sch, len(ws.order))
	row := make([]value.Value, 0, sch.Len())
	for _, g := range ws.order {
		row = row[:0]
		row = append(row, value.NewInt(ws.start), value.NewInt(ws.end))
		row = append(row, g.keyVals...)
		for j := range p.aggs {
			want := sch.At(2 + len(p.keyIdx) + j).Kind
			row = append(row, g.accs[j].Result(want))
		}
		b.MustAppend(row...)
	}
	return b.Build()
}
