package stream

import (
	"context"
	"fmt"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Key-partitioned streams: a stream splits across N providers by hashing
// a key column, each partition runs the same pipeline over its share,
// and the coordinator merges watermarked results. Both sides of the wire
// use PartitionOf, so the client-side splitter and a server-side
// partition filter agree row for row.

// hashInt64 is the splitmix64 finalizer — the int64 fast path, matching
// the exec engine's preference for raw int64 keys.
func hashInt64(x int64) uint64 {
	z := uint64(x)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// PartitionOf maps a key value to a partition in [0, parts). Int64 keys
// hash their raw bits; every other kind hashes its canonical key
// encoding (FNV-1a). NULL keys land in partition 0.
func PartitionOf(v value.Value, parts uint32) uint32 {
	if parts <= 1 {
		return 0
	}
	if v.IsNull() {
		return 0
	}
	if v.Kind() == value.KindInt64 {
		return uint32(hashInt64(v.Int()) % uint64(parts))
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, b := range value.AppendKey(nil, v) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return uint32(h % uint64(parts))
}

// partitionSource filters an inner source down to one partition's rows.
// A server given a partitioned subscription over a stored dataset wraps
// its replay with this, so each provider streams only its share.
type partitionSource struct {
	inner  Source
	keyIdx int
	idx    uint32
	cnt    uint32
}

// NewPartition wraps src, keeping only rows whose key column hashes to
// partition idx of cnt.
func NewPartition(src Source, keyCol string, idx, cnt uint32) (Source, error) {
	if cnt < 1 {
		return nil, fmt.Errorf("stream: partition count must be positive, got %d", cnt)
	}
	if idx >= cnt {
		return nil, fmt.Errorf("stream: partition index %d out of range [0, %d)", idx, cnt)
	}
	ki := src.Schema().IndexOf(keyCol)
	if ki < 0 {
		return nil, fmt.Errorf("stream: no partition key column %q in %v", keyCol, src.Schema())
	}
	ps := &partitionSource{inner: src, keyIdx: ki, idx: idx, cnt: cnt}
	if bs, ok := src.(BatchSource); ok {
		// Keep the inner source's batch fast path: filtered batches gather
		// matching rows columnar-wise instead of re-building row by row.
		return &partitionBatchSource{partitionSource: ps, batches: bs}, nil
	}
	return ps, nil
}

// Schema implements Source.
func (p *partitionSource) Schema() schema.Schema { return p.inner.Schema() }

// TimeCol implements Source.
func (p *partitionSource) TimeCol() string { return p.inner.TimeCol() }

// Err implements Source.
func (p *partitionSource) Err() error { return p.inner.Err() }

// Open implements Source: rows stream through a filtering goroutine.
func (p *partitionSource) Open(ctx context.Context) <-chan Row {
	in := p.inner.Open(ctx)
	out := make(chan Row, 256)
	go func() {
		defer close(out)
		for row := range in {
			if p.keyIdx < len(row) && PartitionOf(row[p.keyIdx], p.cnt) != p.idx {
				continue
			}
			select {
			case out <- row:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// stop propagates the consumer-stopped signal to push-style inners.
func (p *partitionSource) stop() {
	if s, ok := p.inner.(interface{ stop() }); ok {
		s.stop()
	}
}

// partitionBatchSource is partitionSource over a batch-capable inner:
// each inner batch is filtered with one columnar gather.
type partitionBatchSource struct {
	*partitionSource
	batches BatchSource
}

// OpenBatches implements BatchSource.
func (p *partitionBatchSource) OpenBatches(ctx context.Context, batchSize int) <-chan *table.Table {
	in := p.batches.OpenBatches(ctx, batchSize)
	out := make(chan *table.Table, 4)
	go func() {
		defer close(out)
		var sel []int
		for t := range in {
			sel = sel[:0]
			col := t.Col(p.keyIdx)
			for i := 0; i < t.NumRows(); i++ {
				if PartitionOf(col.Value(i), p.cnt) == p.idx {
					sel = append(sel, i)
				}
			}
			if len(sel) == 0 {
				continue
			}
			var ft *table.Table
			if len(sel) == t.NumRows() {
				ft = t
			} else {
				ft = t.Gather(sel)
			}
			select {
			case out <- ft:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// skipSource drops the first n rows of its inner source — the resume
// wrapper. It must wrap any partition filter (not the other way around):
// a pipeline's State.Events counts the rows it consumed, which are
// post-filter rows.
type skipSource struct {
	inner Source
	n     int64
}

// NewSkip wraps src, dropping its first n rows.
func NewSkip(src Source, n int64) Source {
	if n <= 0 {
		return src
	}
	ss := &skipSource{inner: src, n: n}
	if bs, ok := src.(BatchSource); ok {
		return &skipBatchSource{skipSource: ss, batches: bs}
	}
	return ss
}

// Schema implements Source.
func (s *skipSource) Schema() schema.Schema { return s.inner.Schema() }

// TimeCol implements Source.
func (s *skipSource) TimeCol() string { return s.inner.TimeCol() }

// Err implements Source.
func (s *skipSource) Err() error { return s.inner.Err() }

// Open implements Source.
func (s *skipSource) Open(ctx context.Context) <-chan Row {
	in := s.inner.Open(ctx)
	out := make(chan Row, 256)
	go func() {
		defer close(out)
		dropped := int64(0)
		for row := range in {
			if dropped < s.n {
				dropped++
				continue
			}
			select {
			case out <- row:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// stop propagates the consumer-stopped signal.
func (s *skipSource) stop() {
	if x, ok := s.inner.(interface{ stop() }); ok {
		x.stop()
	}
}

// skipBatchSource is skipSource over a batch-capable inner: leading rows
// drop via zero-copy slicing instead of row-at-a-time forwarding.
type skipBatchSource struct {
	*skipSource
	batches BatchSource
}

// OpenBatches implements BatchSource.
func (s *skipBatchSource) OpenBatches(ctx context.Context, batchSize int) <-chan *table.Table {
	in := s.batches.OpenBatches(ctx, batchSize)
	out := make(chan *table.Table, 4)
	go func() {
		defer close(out)
		remaining := s.n
		for t := range in {
			if remaining >= int64(t.NumRows()) {
				remaining -= int64(t.NumRows())
				continue
			}
			if remaining > 0 {
				t = t.Slice(int(remaining), t.NumRows())
				remaining = 0
			}
			select {
			case out <- t:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
