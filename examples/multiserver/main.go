// Multi-server federation over real TCP — the paper's second goal
// ("Multi-Server Applications") and fourth desideratum (Server
// Interoperation). Two nexus servers run in this process on loopback
// sockets: a relational site holding the sales facts and an array site
// holding the customer dimension. One query joins across them; we execute
// it twice — once with direct server→server shipping, once routed through
// the client — and print the traffic ledger for both.
package main

import (
	"fmt"
	"log"

	"nexus"
	"nexus/internal/datagen"
	"nexus/internal/engines/array"
	"nexus/internal/engines/relational"
	"nexus/internal/server"
)

func main() {
	// Two servers, as separate as they can be inside one process: real
	// listeners, real sockets, the real wire protocol.
	siteA := relational.New("siteA")
	if err := siteA.Store("sales", datagen.Sales(1, 50000, 2000, 200)); err != nil {
		log.Fatal(err)
	}
	siteB := array.New("siteB")
	if err := siteB.Store("customers", datagen.Customers(2, 2000)); err != nil {
		log.Fatal(err)
	}
	srvA, err := server.Serve(siteA, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := server.Serve(siteB, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srvB.Close()
	fmt.Printf("siteA (relational) on %s\nsiteB (array)      on %s\n\n", srvA.Addr(), srvB.Addr())

	s := nexus.NewSession()
	if _, err := s.ConnectTCP(srvA.Addr()); err != nil {
		log.Fatal(err)
	}
	if _, err := s.ConnectTCP(srvB.Addr()); err != nil {
		log.Fatal(err)
	}

	query := func() *nexus.Query {
		return s.Scan("sales").
			Where(nexus.Gt(nexus.Col("qty"), nexus.Int(5))).
			Join(s.Scan("customers"), nexus.Inner, nexus.On("cust_id", "cust_id")).
			GroupBy("segment").
			Agg(nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("qty"))), nexus.Count("n")).
			OrderBy(nexus.Desc("rev"))
	}

	explain, err := query().Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== fragment plan ==")
	fmt.Println(explain)

	for _, mode := range []nexus.ShipMode{nexus.Direct, nexus.Routed} {
		s.SetShipMode(mode)
		res, m, err := query().CollectWithMetrics()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== mode %v ==\n", mode)
		fmt.Println(res)
		fmt.Printf("fragments executed:          %d\n", m.Fragments)
		fmt.Printf("client bytes out:            %d\n", m.ClientBytesOut)
		fmt.Printf("client bytes in:             %d\n", m.ClientBytesIn)
		fmt.Printf("intermediates via client:    %d bytes\n", m.IntermediateViaClient)
		fmt.Printf("server→server (peer) bytes:  %d\n", m.PeerBytes)
		fmt.Printf("client round trips:          %d\n\n", m.RoundTrips)
	}
	fmt.Println("Direct mode keeps intermediates off the application tier entirely —")
	fmt.Println("that is desideratum D4 (Server Interoperation) in action.")
}
