// Federated streaming demo: one windowed stream query fans out across
// two nexus servers by key partition; each server hosts its share of the
// pipeline and pushes watermarked window results back, and the
// coordinator merges them in watermark order.
//
// Self-contained (starts two loopback servers):
//
//	go run ./examples/federated
//
// Against external servers (e.g. two cmd/nexus-server processes):
//
//	nexus-server -engine relational -addr 127.0.0.1:7701 &
//	nexus-server -engine relational -addr 127.0.0.1:7702 &
//	go run ./examples/federated -connect 127.0.0.1:7701,127.0.0.1:7702
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"nexus"
	"nexus/internal/engines/relational"
	"nexus/internal/server"
)

func main() {
	connect := flag.String("connect", "", "comma-separated server addresses (default: start two loopback servers)")
	events := flag.Int64("events", 5000, "events to stream")
	flag.Parse()

	s := nexus.NewSession()
	var providers []string

	if *connect == "" {
		// Start two in-process TCP servers — the same wire protocol an
		// external cmd/nexus-server speaks.
		for i := 0; i < 2; i++ {
			srv, err := server.Serve(relational.New(fmt.Sprintf("worker%d", i)), "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			name, err := s.ConnectTCP(srv.Addr())
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("started %s on %s", name, srv.Addr())
			providers = append(providers, name)
		}
	} else {
		for _, addr := range strings.Split(*connect, ",") {
			name, err := s.ConnectTCP(strings.TrimSpace(addr))
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("connected to %s (%s)", addr, name)
			providers = append(providers, name)
		}
	}

	// A synthetic clickstream: (ts, user, ms). Timestamps arrive slightly
	// out of order; AllowedLateness keeps the stragglers.
	src, err := nexus.GenerateSource("ts", *events, func(i int64) []any {
		return []any{i - i%7, i % 64, float64(i%350) / 3}
	},
		nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
		nexus.ColumnDef{Name: "user", Type: nexus.Int64},
		nexus.ColumnDef{Name: "ms", Type: nexus.Float64},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Per-user latency stats over 1000-tick tumbling windows, partitioned
	// across the providers by user id. Every provider runs the identical
	// compiled pipeline over its share of the keyspace.
	fmt.Printf("== p50-ish latency per user, windowed, fanned out over %d servers ==\n", len(providers))
	windows := 0
	stats, err := s.StreamFrom(src).
		AllowedLateness(7).
		Window(nexus.Tumbling(1000)).
		GroupBy("user").
		Agg(
			nexus.Avg("avg_ms", nexus.Col("ms")),
			nexus.Max("max_ms", nexus.Col("ms")),
			nexus.Count("hits"),
		).
		PartitionBy("user").
		SubscribeRemote(context.Background(), providers, func(t *nexus.Table) error {
			windows++
			if windows <= 3 {
				fmt.Print(t.Format(4))
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("... %d merged windows total\n", windows)
	fmt.Printf("events=%d batches=%d windows=%d late=%d outrows=%d watermark=%d\n",
		stats.Events, stats.Batches, stats.Windows, stats.Late, stats.OutRows, stats.Watermark)
}
