// PageRank three ways — the paper's control-iteration argument made
// concrete. The same fixpoint runs as:
//
//  1. a client-driven loop: the application issues one algebra query per
//     iteration and holds the state itself (what you do without control
//     iteration in the algebra);
//  2. an in-algebra Iterate executed inside a relational engine (one
//     shipped expression tree runs the whole loop);
//  3. the same Iterate routed to the graph engine, whose recognizer swaps
//     in the native CSR kernel (intent preservation).
//
// All three produce the same ranks; their cost profiles differ wildly.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"nexus"
)

const (
	nVertices = 1500
	nEdges    = 7500
	damping   = 0.85
	iters     = 15
)

func main() {
	// Build one session per strategy so engine state stays isolated.
	ranksClient := clientDriven()
	ranksEngine, engineTime := inEngine(nexus.Relational, "relational Iterate")
	ranksKernel, kernelTime := inEngine(nexus.Graph, "graph native kernel")

	// Agreement check.
	maxDiff := 0.0
	for v, r := range ranksClient {
		d1 := math.Abs(r - ranksEngine[v])
		d2 := math.Abs(r - ranksKernel[v])
		maxDiff = math.Max(maxDiff, math.Max(d1, d2))
	}
	fmt.Printf("\nmax rank disagreement across strategies: %.2e\n", maxDiff)
	fmt.Printf("in-engine iterate time:  %v\n", engineTime)
	fmt.Printf("native kernel time:      %v\n", kernelTime)
	if maxDiff > 1e-9 {
		log.Fatal("strategies disagree")
	}
}

// session builds a graph dataset on an engine of the given kind.
func session(kind nexus.EngineKind) (*nexus.Session, string) {
	s := nexus.NewSession()
	name, err := s.AddEngine(kind, "")
	if err != nil {
		log.Fatal(err)
	}
	edges := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "src", Type: nexus.Int64},
		nexus.ColumnDef{Name: "dst", Type: nexus.Int64},
	)
	// A deterministic pseudo-random graph.
	state := uint64(42)
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state>>33) % mod
	}
	for i := 0; i < nEdges; i++ {
		src := next(nVertices)
		dst := next(nVertices)
		if dst == src {
			dst = (dst + 1) % nVertices
		}
		edges.Append(src, dst)
	}
	et, err := edges.Build()
	if err != nil {
		log.Fatal(err)
	}
	vt := nexus.NewTableBuilder(nexus.ColumnDef{Name: "v", Type: nexus.Int64})
	for i := int64(0); i < nVertices; i++ {
		vt.Append(i)
	}
	vtt, err := vt.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Store(name, "edges", et); err != nil {
		log.Fatal(err)
	}
	if err := s.Store(name, "vertices", vtt); err != nil {
		log.Fatal(err)
	}
	return s, name
}

// body applies one PageRank step to the state query (v, rank), matching
// the canonical algebra formulation (with dangling-mass redistribution).
func body(s *nexus.Session, state, deg *nexus.Query) *nexus.Query {
	withdeg := state.Join(deg, nexus.Left, nexus.On("v", "src"))
	contrib := withdeg.Extend("share",
		nexus.Div(nexus.Col("rank"), nexus.Call("float", nexus.Col("deg"))))
	perEdge := s.Scan("edges").Join(contrib, nexus.Inner, nexus.On("src", "v"))
	insums := perEdge.GroupBy("dst").Agg(nexus.Sum("insum", nexus.Col("share")))
	dang := withdeg.Where(nexus.IsNull(nexus.Col("deg"))).
		Agg(nexus.Sum("dmass", nexus.Col("rank")))
	update := nexus.Add(
		nexus.Float((1-damping)/nVertices),
		nexus.Mul(nexus.Float(damping),
			nexus.Add(
				nexus.Call("coalesce", nexus.Col("insum"), nexus.Float(0)),
				nexus.Div(nexus.Call("coalesce", nexus.Col("dmass"), nexus.Float(0)), nexus.Float(nVertices)),
			)))
	return state.
		Join(insums, nexus.Left, nexus.On("v", "dst")).
		Product(dang).
		Extend("nrank", update).
		Select("v", "nrank").
		Rename("nrank", "rank")
}

// clientDriven runs the loop in the application: one Collect per
// iteration, state held client-side — the pattern the paper wants the
// algebra to subsume.
func clientDriven() map[int64]float64 {
	s, name := session(nexus.Relational)
	start := time.Now()
	deg := s.Scan("edges").GroupBy("src").Agg(nexus.Count("deg"))
	state := s.Scan("vertices").Extend("rank", nexus.Float(1.0/nVertices))
	stateT, err := state.Collect()
	if err != nil {
		log.Fatal(err)
	}
	queries := 1
	for i := 0; i < iters; i++ {
		if err := s.Store(name, "state", stateT); err != nil {
			log.Fatal(err)
		}
		stateT, err = body(s, s.Scan("state"), deg).Collect()
		if err != nil {
			log.Fatal(err)
		}
		queries++
	}
	fmt.Printf("client-driven loop:      %v  (%d queries issued)\n", time.Since(start), queries)
	return rankMap(stateT)
}

// inEngine ships one Iterate tree; on the graph engine the recognizer
// substitutes the native kernel.
func inEngine(kind nexus.EngineKind, label string) (map[int64]float64, time.Duration) {
	s, _ := session(kind)
	deg := s.Scan("edges").GroupBy("src").Agg(nexus.Count("deg"))
	init := s.Scan("vertices").Extend("rank", nexus.Float(1.0/nVertices))
	start := time.Now()
	q := s.Let("deg", deg, func(degRef *nexus.Query) *nexus.Query {
		return s.Iterate("state", init, func(loop *nexus.Query) *nexus.Query {
			return body(s, loop, degRef)
		}, iters, &nexus.Convergence{Metric: nexus.L1, Col: "rank", Tol: 0})
	})
	res, err := q.Collect()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("%-24s %v  (1 query issued)\n", label+":", elapsed)
	return rankMap(res), elapsed
}

func rankMap(t *nexus.Table) map[int64]float64 {
	vs, err := t.Ints("v")
	if err != nil {
		log.Fatal(err)
	}
	rs, err := t.Floats("rank")
	if err != nil {
		log.Fatal(err)
	}
	out := make(map[int64]float64, len(vs))
	for i := range vs {
		out[vs[i]] = rs[i]
	}
	return out
}
