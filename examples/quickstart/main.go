// Quickstart: one session, two engines, relational and array queries
// through both the fluent API and the pipeline surface language.
package main

import (
	"fmt"
	"log"

	"nexus"
)

func main() {
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		log.Fatal(err)
	}
	if _, err := s.AddEngine(nexus.Array, "arr"); err != nil {
		log.Fatal(err)
	}
	// Demo loads a synthetic star schema on "db" and matrices/series/grid
	// on "arr".
	if err := s.Demo(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Revenue by region (fluent API) ==")
	res, err := s.Scan("sales").
		Where(nexus.Gt(nexus.Col("qty"), nexus.Int(2))).
		GroupBy("region").
		Agg(
			nexus.Sum("revenue", nexus.Mul(nexus.Col("price"), nexus.Col("qty"))),
			nexus.Count("orders"),
		).
		OrderBy(nexus.Desc("revenue")).
		Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	fmt.Println("== Top customer segments (surface language) ==")
	res, err = s.Query(`
		load sales
		| join (load customers) on cust_id == cust_id
		| group by segment agg revenue = sum(price * qty), n = count()
		| sort revenue desc
		| limit 3
	`).Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	fmt.Println("== Smoothed sensor series (array windows) ==")
	res, err = s.Scan("series").
		Window([]nexus.DimExtent{{Dim: "t", Before: 5, After: 5}}, nexus.AggAvg, "temp", "smooth").
		Dice(nexus.DimBound{Dim: "t", Lo: 0, Hi: 8}).
		Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	fmt.Println("== Explain: where does each operator run? ==")
	explain, err := s.Scan("sales").
		Where(nexus.Eq(nexus.Col("region"), nexus.Str("EU"))).
		GroupBy("prod_id").
		Agg(nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("qty")))).
		Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(explain)
}
