// Surface-language tour: the paper treats client syntax as sugar over
// the algebraic core. This example runs a set of pipeline queries —
// relational, array and control iteration — and shows the algebra each
// compiles to.
package main

import (
	"fmt"
	"log"

	"nexus"
)

var queries = []struct {
	title string
	src   string
}{
	{
		"Filtered revenue by product category",
		`load sales
		 | join (load products) on prod_id == prod_id
		 | where qty >= 3
		 | group by category agg rev = sum(price * qty), items = sum(qty)
		 | sort rev desc`,
	},
	{
		"Region × segment matrix of order counts",
		`load sales
		 | join (load customers) on cust_id == cust_id
		 | group by region, segment agg n = count()
		 | sort region, segment`,
	},
	{
		"Grid hot spots: 3×3 neighbourhood means over a slab",
		`load grid
		 | dice x[8:24], y[8:24]
		 | window x(1,1), y(1,1) agg hot = avg(v)
		 | dropdims
		 | sort hot desc
		 | limit 5`,
	},
	{
		"Matrix product A·B, then one row of the result",
		`load A
		 | matmul (load B) as c
		 | slice i = 0
		 | dropdims
		 | sort c desc
		 | limit 5`,
	},
	{
		"Fixpoint: damped averaging until convergence",
		`iterate s
		 from (load vertices | where v < 8 | extend x = 100.0)
		 step ($s | extend x2 = x * 0.5 | select v, x2 | rename x2 as x)
		 until linf(x) <= 0.001 max 64`,
	},
	{
		"Shared subquery via let",
		`let eu = (load sales | where region == "EU")
		 in ($eu
		     | group by prod_id agg n = count()
		     | join ($eu | group by prod_id agg rev = sum(price * qty)) on prod_id == prod_id
		     | sort rev desc
		     | limit 5)`,
	},
}

func main() {
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		log.Fatal(err)
	}
	if _, err := s.AddEngine(nexus.Array, "arr"); err != nil {
		log.Fatal(err)
	}
	if _, err := s.AddEngine(nexus.LinAlg, "la"); err != nil {
		log.Fatal(err)
	}
	if err := s.Demo(); err != nil {
		log.Fatal(err)
	}

	for _, q := range queries {
		fmt.Printf("== %s ==\n%s\n\n", q.title, q.src)
		query := s.Query(q.src)
		explain, err := query.Explain()
		if err != nil {
			log.Fatalf("%s: %v", q.title, err)
		}
		fmt.Println(explain)
		res, err := query.Collect()
		if err != nil {
			log.Fatalf("%s: %v", q.title, err)
		}
		fmt.Println(res.Format(8))
	}
}
