// examples/durable demonstrates crash-recoverable storage end to end:
// a child process (this same binary) appends acked batches into a
// durable data directory, the parent SIGKILLs it mid-write — no
// shutdown path runs — then reopens the directory and queries the
// recovered data, showing zero committed-row loss.
//
//	go run ./examples/durable
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"nexus"
)

func main() {
	if dir := os.Getenv("DURABLE_DEMO_CHILD"); dir != "" {
		child(dir)
		return
	}

	dir, err := os.MkdirTemp("", "nexus-durable-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("data directory: %s\n\n", dir)

	// Phase 1: a writer process appends batches, acking each one after
	// the WAL fsync. We SIGKILL it in full flight.
	fmt.Println("[1] starting writer process…")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "DURABLE_DEMO_CHILD="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	acked := int64(-1)
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ACK ") {
			acked, _ = strconv.ParseInt(strings.TrimPrefix(line, "ACK "), 10, 64)
			if acked >= 24 { // kill mid-write, with plenty committed
				break
			}
		}
	}
	cmd.Process.Kill() // SIGKILL: the writer gets no chance to flush
	cmd.Wait()
	committedBatches := acked + 1
	fmt.Printf("    writer SIGKILLed after %d acked batches (%d rows committed)\n\n", committedBatches, committedBatches*100)

	// Phase 2: reopen the directory and query. The write-ahead log
	// replays everything the writer acked — the kill lost nothing.
	fmt.Println("[2] recovering…")
	s := nexus.NewSession()
	prov, err := s.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    durable provider %q attached\n\n", prov)

	fmt.Println("[3] querying recovered data…")
	total, err := s.Scan("events").
		Agg(nexus.Count("rows"), nexus.Min("first_ts", nexus.Col("ts")), nexus.Max("last_ts", nexus.Col("ts"))).
		Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(total.Format(5))
	rows, _ := total.Ints("rows")
	if rows[0] < committedBatches*100 {
		log.Fatalf("LOST ROWS: recovered %d, acked %d", rows[0], committedBatches*100)
	}
	fmt.Printf("    every acked row survived (%d recovered >= %d acked)\n\n", rows[0], committedBatches*100)

	// A selective filter demonstrates the zone-map-pruned cold scan:
	// only segments whose ts range can match are read from disk.
	res, err := s.Scan("events").
		Where(nexus.And(nexus.Ge(nexus.Col("ts"), nexus.Int(500)), nexus.Lt(nexus.Col("ts"), nexus.Int(520)))).
		OrderBy(nexus.Asc("ts")).
		Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[4] pruned range scan (500 <= ts < 520): %d rows\n", res.NumRows())
	fmt.Print(res.Format(5))
	fmt.Println("\ndurable demo OK: store → kill → recover → query")
}

// child appends 100-row batches forever, acking each durable commit on
// stdout, until the parent kills it.
func child(dir string) {
	s := nexus.NewSession()
	prov, err := s.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); ; i++ {
		tb := nexus.NewTableBuilder(
			nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
			nexus.ColumnDef{Name: "v", Type: nexus.Float64},
		)
		for j := int64(0); j < 100; j++ {
			ts := i*100 + j
			tb.Append(ts, float64(ts%97)+0.25)
		}
		t, err := tb.Build()
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Append(prov, "events", t); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ACK %d\n", i)
	}
}
