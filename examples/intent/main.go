// Intent preservation (desideratum D3): "if the original function is
// matrix multiply, it should be recognizable as such at a server that has
// a direct implementation of matrix multiply."
//
// Here the client writes matrix multiplication the only way a relational
// API lets it: an equijoin on the inner dimension followed by a grouped
// sum of products. With intent recognition ON, the planner recovers the
// MatMul node and routes it to the linear-algebra provider's blocked
// dense kernel; OFF, the same query runs as a hash join + hash aggregate
// on the relational engine. Same answer, very different cost.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"nexus"
	"nexus/internal/datagen"
)

func main() {
	const n = 192 // n×n matrices

	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		log.Fatal(err)
	}
	if _, err := s.AddEngine(nexus.LinAlg, "la"); err != nil {
		log.Fatal(err)
	}
	if err := store(s, "db", "A", datagenTable(1, n, "i", "k")); err != nil {
		log.Fatal(err)
	}
	if err := store(s, "db", "B", datagenTable(2, n, "k", "j")); err != nil {
		log.Fatal(err)
	}

	// Matrix multiply, spelled relationally.
	query := func() *nexus.Query {
		return s.Scan("A").
			Join(s.Scan("B"), nexus.Inner, nexus.On("k", "k")).
			GroupBy("i", "j").
			Agg(nexus.Sum("c", nexus.Mul(nexus.Col("v"), nexus.Col("v_r"))))
	}

	// Baseline: intent recognition off → join+aggregate on the
	// relational engine.
	s.SetOptimizerOptions(nexus.OptimizerOptions{
		Fold: true, Pushdown: true, Prune: true, PushLimit: true,
	})
	t0 := time.Now()
	baseline, err := query().Collect()
	if err != nil {
		log.Fatal(err)
	}
	baselineTime := time.Since(t0)

	// Intent on → recognized as MatMul, routed to the linalg provider.
	s.SetOptimizerOptions(nexus.OptimizerOptions{
		Fold: true, Pushdown: true, Prune: true, PushLimit: true,
		IntentMatMul: true, IntentKernels: true,
	})
	explain, err := query().Explain()
	if err != nil {
		log.Fatal(err)
	}
	t1 := time.Now()
	fast, err := query().Collect()
	if err != nil {
		log.Fatal(err)
	}
	fastTime := time.Since(t1)

	fmt.Println("== plan with intent recognition ==")
	fmt.Println(explain)
	fmt.Printf("join+aggregate on relational engine: %v\n", baselineTime)
	fmt.Printf("recognized MatMul on linalg engine:  %v\n", fastTime)
	fmt.Printf("speedup: %.1fx\n", float64(baselineTime)/float64(fastTime))

	// Same answer either way.
	maxDiff := diff(baseline, fast)
	fmt.Printf("max |Δcell| between plans: %.2e\n", maxDiff)
	if maxDiff > 1e-6 {
		log.Fatal("plans disagree")
	}
}

func datagenTable(seed int64, n int, d1, d2 string) *nexus.Table {
	raw := datagen.Matrix(seed, n, n, d1, d2)
	b := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: d1, Type: nexus.Int64},
		nexus.ColumnDef{Name: d2, Type: nexus.Int64},
		nexus.ColumnDef{Name: "v", Type: nexus.Float64},
	)
	c1 := raw.ColByName(d1).Ints()
	c2 := raw.ColByName(d2).Ints()
	vs := raw.ColByName("v").Floats()
	for r := range c1 {
		b.Append(c1[r], c2[r], vs[r])
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func store(s *nexus.Session, prov, name string, t *nexus.Table) error {
	return s.Store(prov, name, t)
}

func diff(a, b *nexus.Table) float64 {
	am := cells(a)
	bm := cells(b)
	worst := 0.0
	for k, v := range am {
		worst = math.Max(worst, math.Abs(v-bm[k]))
	}
	return worst
}

func cells(t *nexus.Table) map[[2]int64]float64 {
	is, err := t.Ints("i")
	if err != nil {
		log.Fatal(err)
	}
	js, err := t.Ints("j")
	if err != nil {
		log.Fatal(err)
	}
	cs, err := t.Floats("c")
	if err != nil {
		log.Fatal(err)
	}
	out := make(map[[2]int64]float64, len(is))
	for r := range is {
		out[[2]int64{is[r], js[r]}] = cs[r]
	}
	return out
}
