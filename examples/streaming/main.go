// Streaming: the same Big Data algebra over data in motion. A live
// channel of trade events is filtered, enriched against a stored
// reference table, and aggregated per sector over tumbling event-time
// windows; each window's result relation is printed as it closes. The
// program then replays the same events as a batch query to show both
// halves of the algebra agreeing.
package main

import (
	"context"
	"fmt"
	"log"

	"nexus"
)

func main() {
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		log.Fatal(err)
	}

	// Reference data at rest: symbol -> sector.
	dim, err := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "sym", Type: nexus.String},
		nexus.ColumnDef{Name: "sector", Type: nexus.String},
	).
		Append("AAA", "tech").
		Append("BBB", "tech").
		Append("CCC", "energy").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Data in motion: a live channel of trades (ts, sym, vol, price).
	ch, err := nexus.NewChannelStream("ts", 64,
		nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
		nexus.ColumnDef{Name: "sym", Type: nexus.String},
		nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
		nexus.ColumnDef{Name: "price", Type: nexus.Float64},
	)
	if err != nil {
		log.Fatal(err)
	}

	// A producer feeds 3000 events with slightly out-of-order timestamps.
	syms := []string{"AAA", "BBB", "CCC"}
	go func() {
		defer ch.Close()
		for i := 0; i < 3000; i++ {
			ts := int64(i - i%7) // jitter: events arrive up to 6 ticks early
			if err := ch.Send(ts, syms[i%3], int64(i%20), float64(i%30)+0.5); err != nil {
				log.Println(err)
				return
			}
		}
	}()

	fmt.Println("== Sector notional per 500-tick tumbling window (live) ==")
	stats, err := s.StreamFrom(ch.Source()).
		Where(nexus.Gt(nexus.Col("vol"), nexus.Int(0))).
		JoinTable(dim, nexus.Inner, nexus.On("sym", "sym")).
		AllowedLateness(10).
		Window(nexus.Tumbling(500)).
		GroupBy("sector").
		Agg(
			nexus.Sum("notional", nexus.Mul(nexus.Col("price"), nexus.Col("vol"))),
			nexus.Count("trades"),
		).
		Subscribe(context.Background(), func(w *nexus.Table) error {
			fmt.Println(w)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events=%d batches=%d windows=%d late=%d\n\n",
		stats.Events, stats.Batches, stats.Windows, stats.Late)

	fmt.Println("== Same totals, replayed as a stream from a stored dataset ==")
	rebuilt := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
		nexus.ColumnDef{Name: "sym", Type: nexus.String},
		nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
		nexus.ColumnDef{Name: "price", Type: nexus.Float64},
	)
	for i := 0; i < 3000; i++ {
		rebuilt = rebuilt.Append(int64(i-i%7), syms[i%3], int64(i%20), float64(i%30)+0.5)
	}
	eventTab, err := rebuilt.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Store("db", "trades", eventTab); err != nil {
		log.Fatal(err)
	}
	res, err := s.StreamScan("trades", "ts").
		Where(nexus.Gt(nexus.Col("vol"), nexus.Int(0))).
		JoinTable(dim, nexus.Inner, nexus.On("sym", "sym")).
		Window(nexus.Tumbling(500)).
		GroupBy("sector").
		Agg(nexus.Sum("notional", nexus.Mul(nexus.Col("price"), nexus.Col("vol")))).
		Collect(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Format(30))
}
