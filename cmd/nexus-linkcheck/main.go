// nexus-linkcheck verifies that repo-relative markdown links resolve.
// It walks the given files and directories (default: the current
// directory) for *.md files, extracts every inline [text](target) link,
// and checks that each relative target exists on disk. External links
// (http/https/mailto) and pure in-page anchors (#fragment) are skipped;
// a relative target's #fragment is stripped before the check. CI runs
// it over the repo docs so a renamed file cannot silently orphan the
// references to it.
//
// Usage:
//
//	nexus-linkcheck [path ...]
//	nexus-linkcheck README.md docs
//
// Exits 1 listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Images
// ![alt](target) match too via the [text] part — they resolve the same
// way. Targets with spaces or nested parens are out of scope; the repo
// does not use them.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		fi, err := os.Stat(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexus-linkcheck: %v\n", err)
			os.Exit(2)
		}
		if !fi.IsDir() {
			files = append(files, root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				// Skip VCS internals and vendored/hidden trees.
				if name == ".git" || name == "node_modules" || (len(name) > 1 && name[0] == '.' && path != root) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(name, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexus-linkcheck: %v\n", err)
			os.Exit(2)
		}
	}

	broken := 0
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexus-linkcheck: %v\n", err)
			os.Exit(2)
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipTarget(target) {
					continue
				}
				checked++
				// Strip an in-page fragment; resolve relative to the file.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link: %s\n", file, lineNo+1, m[1])
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "nexus-linkcheck: %d broken link(s) in %d checked\n", broken, checked)
		os.Exit(1)
	}
	fmt.Printf("nexus-linkcheck: %d relative link(s) OK across %d markdown file(s)\n", checked, len(files))
}

// skipTarget reports whether a link target is out of scope: external
// URLs, mail links, and pure in-page anchors.
func skipTarget(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
