// nexus-server hosts one provider engine behind the nexus wire protocol.
// Clients connect with Session.ConnectTCP (or cmd/nexus-shell -connect);
// peer servers push intermediates to it directly in federated plans.
//
// Usage:
//
//	nexus-server -engine relational -addr 127.0.0.1:7701 -demo
//	nexus-server -engine array      -addr 127.0.0.1:7702
//	nexus-server -engine linalg     -addr 127.0.0.1:7703
//	nexus-server -engine graph      -addr 127.0.0.1:7704
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"nexus/internal/datagen"
	"nexus/internal/engines/array"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/provider"
	"nexus/internal/server"
)

func main() {
	engine := flag.String("engine", "relational", "engine kind: relational, array, linalg, graph")
	name := flag.String("name", "", "provider name (defaults to the engine kind)")
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	demo := flag.Bool("demo", false, "preload synthetic demo datasets")
	flag.Parse()

	var prov provider.Provider
	switch *engine {
	case "relational":
		prov = relational.New(*name)
	case "array":
		prov = array.New(*name)
	case "linalg":
		prov = linalg.New(*name)
	case "graph":
		prov = graph.New(*name)
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q (want relational, array, linalg or graph)\n", *engine)
		os.Exit(2)
	}

	if *demo {
		if err := loadDemo(prov, *engine); err != nil {
			log.Fatalf("demo data: %v", err)
		}
	}

	srv, err := server.Serve(prov, *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("nexus %s server %q listening on %s", *engine, prov.Name(), srv.Addr())
	for _, ds := range prov.Datasets() {
		log.Printf("  dataset %s: %d rows %v", ds.Name, ds.Rows, ds.Schema)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	srv.Close()
}

func loadDemo(p provider.Provider, engine string) error {
	switch engine {
	case "relational":
		if err := p.Store("sales", datagen.Sales(1, 50000, 2000, 200)); err != nil {
			return err
		}
		if err := p.Store("customers", datagen.Customers(2, 2000)); err != nil {
			return err
		}
		return p.Store("products", datagen.Products(3, 200))
	case "array", "linalg":
		if err := p.Store("A", datagen.Matrix(4, 128, 128, "i", "k")); err != nil {
			return err
		}
		if err := p.Store("B", datagen.Matrix(5, 128, 128, "k", "j")); err != nil {
			return err
		}
		if err := p.Store("series", datagen.Series(6, 5000)); err != nil {
			return err
		}
		return p.Store("grid", datagen.Grid(7, 128, 128))
	case "graph":
		if err := p.Store("edges", datagen.ZipfGraph(8, 5000, 25000)); err != nil {
			return err
		}
		return p.Store("vertices", graph.VerticesTable(5000))
	}
	return nil
}
