// nexus-server hosts one provider engine behind the nexus wire protocol.
// Clients connect with Session.ConnectTCP (or cmd/nexus-shell -connect);
// peer servers push intermediates to it directly in federated plans.
//
// With -data-dir the server is durable: datasets live in a columnar
// segment store guarded by a write-ahead log, hosted stream
// subscriptions checkpoint their window state on a timer, and a restart
// — even from SIGKILL — recovers every committed row and lets durable
// subscriptions resume where they left off. A background compactor
// (-compact-interval) merges the small segments streaming ingest leaves
// behind into large ones sorted by a clustering key, tightening zone
// maps as the data ages.
//
// With -metrics-addr the server also exposes an HTTP observability
// sidecar: /metrics (Prometheus text format), /healthz (WAL writable,
// manifest readable, compactor live) and /debug/stats (JSON snapshot).
// See docs/OBSERVABILITY.md.
//
// Usage:
//
//	nexus-server -engine relational -addr 127.0.0.1:7701 -demo
//	nexus-server -engine array      -addr 127.0.0.1:7702
//	nexus-server -data-dir ./data   -addr 127.0.0.1:7705 -metrics-addr 127.0.0.1:7790
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"nexus/internal/datagen"
	"nexus/internal/engines/array"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/obs"
	"nexus/internal/obs/trace"
	"nexus/internal/provider"
	"nexus/internal/replication"
	"nexus/internal/server"
	"nexus/internal/storage"
)

// version labels nexus_build_info on the metrics sidecar.
const version = "dev"

func main() {
	engine := flag.String("engine", "relational", "engine kind: relational, array, linalg, graph")
	name := flag.String("name", "", "provider name (defaults to the engine kind)")
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	demo := flag.Bool("demo", false, "preload synthetic demo datasets")
	dataDir := flag.String("data-dir", "", "durable data directory (crash-recoverable columnar store; implies a relational-class engine)")
	ckptEvery := flag.Duration("checkpoint-interval", 2*time.Second, "how often hosted durable subscriptions checkpoint their state (with -data-dir)")
	compactEvery := flag.Duration("compact-interval", time.Minute, "how often the background compactor merges small segments (with -data-dir; 0 disables)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP sidecar address for /metrics, /healthz, /debug/stats, /debug/traces and /debug/ops (empty disables)")
	traceOn := flag.Bool("trace", false, "open root spans for this server's background work (replication sync rounds); client-carried traces are always recorded")
	slowOp := flag.Duration("slow-op-threshold", 0, "log a JSON line (rate-limited) for queries/appends/subscriptions slower than this (0 disables)")
	replicaOf := flag.String("replica-of", "", "primary server address to replicate from (requires -data-dir; makes this server a read-only follower)")
	replicas := flag.String("replicas", "", "comma-separated follower addresses to monitor (primary side; unhealthy followers degrade /healthz)")
	replEvery := flag.Duration("repl-interval", 500*time.Millisecond, "replication sync/probe interval (with -replica-of or -replicas)")
	var admDefault server.TenantQuota
	flag.IntVar(&admDefault.MaxSubscriptions, "max-subs-per-tenant", 0, "default per-tenant cap on concurrent stream subscriptions (0 = unlimited)")
	flag.Float64Var(&admDefault.AppendRowsPerSec, "append-rows-per-sec", 0, "default per-tenant append rate budget in rows/sec (0 = unlimited)")
	flag.Float64Var(&admDefault.ScanRowsPerSec, "scan-rows-per-sec", 0, "default per-tenant query-result rate budget in rows/sec (0 = unlimited)")
	shedP99 := flag.Duration("shed-stall-p99", 0, "refuse NEW subscriptions while the 10s credit-stall p99 exceeds this (0 disables shedding)")
	tenantQuotas := map[string]server.TenantQuota{}
	flag.Func("tenant-quota", "per-tenant quota override, repeatable: name:subs=N,append=R,scan=R (see docs/FRONTDOOR.md)", func(v string) error {
		name, q, err := parseTenantQuota(v)
		if err != nil {
			return err
		}
		tenantQuotas[name] = q
		return nil
	})
	flag.Parse()

	if *replicaOf != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "-replica-of requires -data-dir (replication ships segment files)")
		os.Exit(2)
	}
	if *replicaOf != "" && *demo {
		fmt.Fprintln(os.Stderr, "-replica-of is incompatible with -demo (a replica is read-only)")
		os.Exit(2)
	}

	var prov provider.Provider
	var durable *storage.Engine
	if *dataDir != "" {
		var err error
		durable, err = storage.OpenEngine(*name, *dataDir)
		if err != nil {
			log.Fatalf("open data dir: %v", err)
		}
		prov = durable
	} else {
		switch *engine {
		case "relational":
			prov = relational.New(*name)
		case "array":
			prov = array.New(*name)
		case "linalg":
			prov = linalg.New(*name)
		case "graph":
			prov = graph.New(*name)
		default:
			fmt.Fprintf(os.Stderr, "unknown engine %q (want relational, array, linalg or graph)\n", *engine)
			os.Exit(2)
		}
	}

	if *demo {
		if err := loadDemo(prov, *engine); err != nil {
			log.Fatalf("demo data: %v", err)
		}
	}

	// Tracing identity: spans this process records carry the provider
	// name, so a multi-node trace shows which server did what. The
	// enabled flag only gates roots for background work — spans for
	// requests that arrive with a trace context always record.
	trace.Default.SetService(prov.Name())
	trace.Default.SetEnabled(*traceOn)
	if *slowOp > 0 {
		trace.Ops().SetSlowOpThreshold(*slowOp)
		log.Printf("  slow-op log: ops over %v (JSON lines on stderr, rate-limited)", *slowOp)
	}

	var srv *server.Server
	var err error
	if durable != nil {
		srv, err = server.ServeWithCheckpoints(prov, *addr, durable.Backing(), *ckptEvery)
	} else {
		srv, err = server.Serve(prov, *addr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if admDefault != (server.TenantQuota{}) || len(tenantQuotas) > 0 || *shedP99 > 0 {
		srv.SetAdmission(server.AdmissionConfig{
			Default:      admDefault,
			Tenants:      tenantQuotas,
			ShedStallP99: *shedP99,
		})
		log.Printf("  admission control: default quota %+v, %d named tenant(s), shed at stall p99 > %v", admDefault, len(tenantQuotas), *shedP99)
	}
	if durable != nil {
		log.Printf("nexus durable server %q listening on %s (data dir %s)", prov.Name(), srv.Addr(), *dataDir)
		if keys, err := durable.Backing().Checkpoints(); err == nil && len(keys) > 0 {
			log.Printf("  recovered %d stream checkpoint(s): %v", len(keys), keys)
		}
	} else {
		log.Printf("nexus %s server %q listening on %s", *engine, prov.Name(), srv.Addr())
	}
	for _, ds := range prov.Datasets() {
		log.Printf("  dataset %s: %d rows %v", ds.Name, ds.Rows, ds.Schema)
	}

	// Replication wiring. A follower pulls segments + manifests from its
	// primary, serves reads from them, refuses writes, and reports its
	// sync status on the main port; a primary with -replicas probes its
	// followers and folds their health into /healthz.
	var repl *replication.Replicator
	var mon *replication.Monitor
	if *replicaOf != "" {
		durable.SetReplica(true)
		repl = replication.New(durable, replication.Config{
			Primary:  *replicaOf,
			Interval: *replEvery,
			Logf:     log.Printf,
		})
		srv.SetReplStatus(repl.Status)
		repl.Start()
		log.Printf("  replicating from %s every %v (read-only follower)", *replicaOf, *replEvery)
	}
	if *replicas != "" {
		var addrs []string
		for _, a := range strings.Split(*replicas, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) > 0 {
			mon = replication.NewMonitor(addrs, replication.Config{Interval: *replEvery, Logf: log.Printf})
			mon.Start()
			log.Printf("  monitoring %d replica(s): %v", len(addrs), addrs)
		}
	}

	var stopCompactor func()
	if durable != nil && *compactEvery > 0 && repl == nil {
		// Datasets that hosted dataset-replay streams resume by row
		// offset must keep their storage order — the compactor's
		// clustering sort would make stored offsets skip the wrong
		// prefix. The server knows which those are; the set is memoized
		// briefly so one compaction pass does not re-read every
		// checkpoint file per dataset, yet the commit-time re-check
		// still sees near-current state. Errors veto everything: better
		// an idle pass than a blind re-sort.
		var exMu sync.Mutex
		var exSet map[string]bool // nil after a failed refresh: veto all
		var exAt time.Time
		opts := storage.CompactOptions{Exclude: func(dataset string) bool {
			exMu.Lock()
			defer exMu.Unlock()
			if exAt.IsZero() || time.Since(exAt) > 250*time.Millisecond {
				set, err := srv.ResumeSensitiveDatasets()
				if err != nil {
					// Fail safe AND cache the failure: one scan and one
					// log line per refresh window, not one per dataset.
					log.Printf("compactor: cannot determine resume-sensitive datasets, vetoing pass: %v", err)
					set = nil
				}
				exSet, exAt = set, time.Now()
			}
			return exSet == nil || exSet[dataset]
		}}
		stopCompactor = durable.StartCompactor(*compactEvery, opts, log.Printf)
		log.Printf("  background compactor: every %v", *compactEvery)
	}

	var stopMetrics func() error
	if *metricsAddr != "" {
		// Health rolls up the server's ability to keep its promises: WAL
		// still writable, on-disk catalog still readable, background
		// compactor still making passes. Memory-only servers have none of
		// those failure modes and report plain liveness.
		checks := map[string]obs.HealthCheck{}
		if durable != nil {
			checks["wal"] = durable.Health
			checks["manifest"] = durable.ManifestHealth
			checks["compactor"] = durable.CompactorHealth
		}
		if repl != nil {
			// Follower: degraded while it cannot sync from its primary.
			checks["replication"] = repl.Health
		}
		if mon != nil {
			// Primary: degraded while any follower is sick. Serving
			// continues either way — the 503 is for operators and LBs.
			checks["replicas"] = mon.Health
		}
		obs.RegisterBuildInfo(obs.Default, version)
		h := obs.NewHandler(obs.Default, checks)
		h.Handle("/debug/traces", trace.TraceHandler(trace.Default))
		h.Handle("/debug/ops", trace.OpsHandler(trace.Ops()))
		bound, stop, err := obs.ServeHandler(*metricsAddr, h)
		if err != nil {
			log.Fatalf("metrics sidecar: %v", err)
		}
		stopMetrics = stop
		log.Printf("  metrics on http://%s/metrics (also /healthz, /debug/stats, /debug/traces, /debug/ops)", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if stopMetrics != nil {
		_ = stopMetrics()
	}
	if stopCompactor != nil {
		stopCompactor()
	}
	if repl != nil {
		repl.Stop()
	}
	if mon != nil {
		mon.Stop()
	}
	srv.Close()
	if durable != nil {
		if err := durable.Close(); err != nil {
			log.Printf("close data dir: %v", err)
		}
	}
}

// parseTenantQuota parses a -tenant-quota spec: "name:subs=N,append=R,scan=R"
// (each key optional).
func parseTenantQuota(spec string) (string, server.TenantQuota, error) {
	var q server.TenantQuota
	name, rest, ok := strings.Cut(spec, ":")
	if !ok || name == "" {
		return "", q, fmt.Errorf("tenant-quota %q: want name:subs=N,append=R,scan=R", spec)
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", q, fmt.Errorf("tenant-quota %q: bad field %q", spec, kv)
		}
		var err error
		switch k {
		case "subs":
			q.MaxSubscriptions, err = strconv.Atoi(v)
		case "append":
			q.AppendRowsPerSec, err = strconv.ParseFloat(v, 64)
		case "scan":
			q.ScanRowsPerSec, err = strconv.ParseFloat(v, 64)
		default:
			err = fmt.Errorf("unknown key %q (want subs, append or scan)", k)
		}
		if err != nil {
			return "", q, fmt.Errorf("tenant-quota %q: %v", spec, err)
		}
	}
	return name, q, nil
}

func loadDemo(p provider.Provider, engine string) error {
	switch engine {
	case "relational":
		if err := p.Store("sales", datagen.Sales(1, 50000, 2000, 200)); err != nil {
			return err
		}
		if err := p.Store("customers", datagen.Customers(2, 2000)); err != nil {
			return err
		}
		return p.Store("products", datagen.Products(3, 200))
	case "array", "linalg":
		if err := p.Store("A", datagen.Matrix(4, 128, 128, "i", "k")); err != nil {
			return err
		}
		if err := p.Store("B", datagen.Matrix(5, 128, 128, "k", "j")); err != nil {
			return err
		}
		if err := p.Store("series", datagen.Series(6, 5000)); err != nil {
			return err
		}
		return p.Store("grid", datagen.Grid(7, 128, 128))
	case "graph":
		if err := p.Store("edges", datagen.ZipfGraph(8, 5000, 25000)); err != nil {
			return err
		}
		return p.Store("vertices", graph.VerticesTable(5000))
	}
	return nil
}
