// nexus-shell is an interactive REPL for the nexus surface language.
// It can run self-contained (in-process engines with demo data) or attach
// to remote nexus servers.
//
//	nexus-shell -demo                           # local engines + demo data
//	nexus-shell -connect 127.0.0.1:7701,127.0.0.1:7702
//
// Shell commands:
//
//	\datasets            list datasets across providers (durable vs memory)
//	\providers           list providers
//	\explain <query>     show the optimized plan and fragment assignment
//	\explain analyze <query>
//	                     execute the query with a per-operator trace and
//	                     show calls, rows and wall time per operator
//	\explain analyze stream <ds> <timecol> <size> [key...]
//	                     same for a windowed streaming query over the
//	                     dataset (both stage plans, trace accumulated
//	                     across micro-batches)
//	\subscribe <ds> <timecol> <size> [key...]
//	                     live windowed subscription hosted on the
//	                     dataset's provider (federated streaming)
//	\stats [host:port]   fetch and print /debug/stats from a server's
//	                     metrics sidecar (default from -metrics)
//	\trace on|off        trace subsequent queries end-to-end (each prints
//	                     its trace id; -trace also traces the connect)
//	\trace [host:port] [id]
//	                     fetch /debug/traces from a metrics sidecar,
//	                     optionally filtered to one trace id
//	\ops [host:port]     fetch /debug/ops — live in-flight queries and
//	                     subscriptions on that server
//	\open <dir>          attach a durable data directory as a provider
//	\save <dataset>      persist a dataset into the opened directory
//	\mode direct|routed  switch intermediate shipping
//	\quit                exit
//
// Anything else is parsed as a surface-language query, e.g.:
//
//	load sales | where qty > 3 | group by region agg rev = sum(price*qty)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"nexus"
)

func main() {
	demo := flag.Bool("demo", false, "create local engines and load demo data")
	connect := flag.String("connect", "", "comma-separated server addresses to attach")
	metrics := flag.String("metrics", "", "default metrics sidecar address for \\stats (host:port)")
	mux := flag.Bool("mux", false, "multiplex all traffic to each server (queries + subscriptions) over one TCP connection")
	tenant := flag.String("tenant", "", "tenant token sent at connect for server-side admission control")
	traceFlag := flag.Bool("trace", false, "trace connects and queries end-to-end from the start (same as \\trace on, plus traced dial handshakes)")
	flag.Parse()

	s := nexus.NewSession()
	if *connect != "" {
		for _, addr := range strings.Split(*connect, ",") {
			name, err := s.Connect(strings.TrimSpace(addr), nexus.ConnectOptions{Mux: *mux, Tenant: *tenant, Trace: *traceFlag})
			if err != nil {
				fmt.Fprintf(os.Stderr, "connect %s: %v\n", addr, err)
				os.Exit(1)
			}
			mode := ""
			if *mux {
				mode = ", multiplexed"
			}
			fmt.Printf("connected to %s (%s%s)\n", addr, name, mode)
		}
	}
	if *connect == "" || *demo {
		for _, k := range []nexus.EngineKind{nexus.Relational, nexus.Array, nexus.LinAlg, nexus.Graph} {
			if _, err := s.AddEngine(k, ""); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := s.Demo(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("local engines ready (relational, array, linalg, graph) with demo data")
	}
	fmt.Println(`nexus shell — surface-language queries, \datasets, \explain <q>, \open <dir>, \save <ds>, \quit`)

	durableProvider := "" // provider created by the last \open
	tracing := *traceFlag // \trace on|off: run queries with end-to-end tracing
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("nexus> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case line == `\quit` || line == `\q`:
			return
		case line == `\providers`:
			for _, p := range s.Providers() {
				fmt.Println(" ", p)
			}
		case line == `\datasets`:
			printDatasets(s)
		case strings.HasPrefix(line, `\mode`):
			switch strings.TrimSpace(strings.TrimPrefix(line, `\mode`)) {
			case "direct":
				s.SetShipMode(nexus.Direct)
				fmt.Println("shipping: direct (server→server)")
			case "routed":
				s.SetShipMode(nexus.Routed)
				fmt.Println("shipping: routed (via client)")
			default:
				fmt.Println("usage: \\mode direct|routed")
			}
		case strings.HasPrefix(line, `\subscribe`):
			runSubscribe(s, strings.Fields(strings.TrimSpace(strings.TrimPrefix(line, `\subscribe`))))
		case strings.HasPrefix(line, `\open`):
			dir := strings.TrimSpace(strings.TrimPrefix(line, `\open`))
			if dir == "" {
				fmt.Println("usage: \\open <dir>")
				continue
			}
			name, err := s.Open(dir)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			durableProvider = name
			fmt.Printf("durable provider %q attached (data dir %s); \\save <dataset> persists into it\n", name, dir)
		case strings.HasPrefix(line, `\save`):
			ds := strings.TrimSpace(strings.TrimPrefix(line, `\save`))
			if ds == "" {
				fmt.Println("usage: \\save <dataset>")
				continue
			}
			if durableProvider == "" {
				fmt.Println("no durable directory open; \\open <dir> first")
				continue
			}
			if err := s.Persist(durableProvider, ds); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("dataset %q persisted on %q\n", ds, durableProvider)
		case strings.HasPrefix(line, `\explain analyze`):
			src := strings.TrimSpace(strings.TrimPrefix(line, `\explain analyze`))
			if rest, ok := strings.CutPrefix(src, "stream "); ok {
				runStreamAnalyze(s, strings.Fields(rest))
				continue
			}
			out, err := s.Query(src).ExplainAnalyze()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		case strings.HasPrefix(line, `\explain`):
			src := strings.TrimSpace(strings.TrimPrefix(line, `\explain`))
			out, err := s.Query(src).Explain()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(out)
		case strings.HasPrefix(line, `\stats`):
			addr := strings.TrimSpace(strings.TrimPrefix(line, `\stats`))
			if addr == "" {
				addr = *metrics
			}
			fetchSidecar(addr, "/debug/stats", `\stats`)
		case strings.HasPrefix(line, `\trace`):
			args := strings.Fields(strings.TrimSpace(strings.TrimPrefix(line, `\trace`)))
			runTrace(args, &tracing, *metrics)
		case strings.HasPrefix(line, `\ops`):
			addr := strings.TrimSpace(strings.TrimPrefix(line, `\ops`))
			if addr == "" {
				addr = *metrics
			}
			fetchSidecar(addr, "/debug/ops", `\ops`)
		case strings.HasPrefix(line, `\`):
			fmt.Println("unknown command; try \\datasets, \\providers, \\explain [analyze] <q>, \\subscribe, \\stats, \\trace, \\ops, \\open <dir>, \\save <ds>, \\mode, \\quit")
		default:
			t0 := time.Now()
			q := s.Query(line)
			if tracing {
				q = q.Trace()
			}
			res, m, err := q.CollectWithMetrics()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(res.Format(25))
			fmt.Printf("(%d rows, %v, %d fragment(s))\n", res.NumRows(), time.Since(t0).Round(time.Microsecond), m.Fragments)
			if id := m.TraceID(); id != "" {
				fmt.Printf("(trace %s — \\trace %s %s on any server the query touched)\n", id, "<host:port>", id)
			}
		}
	}
}

// runSubscribe hosts a federated stream subscription from the shell:
// the named dataset replays on whichever provider holds it, windowed
// per-key, with results streaming back over the wire.
//
//	\subscribe <dataset> <timecol> <windowsize> [key...]
func runSubscribe(s *nexus.Session, args []string) {
	if len(args) < 3 {
		fmt.Println("usage: \\subscribe <dataset> <timecol> <windowsize> [key...]")
		return
	}
	size, err := strconv.ParseInt(args[2], 10, 64)
	if err != nil || size <= 0 {
		fmt.Println("window size must be a positive integer")
		return
	}
	var provider string
	for _, ds := range s.Datasets() {
		if ds.Name == args[0] {
			provider = ds.Provider
			break
		}
	}
	if provider == "" {
		fmt.Printf("no provider hosts dataset %q\n", args[0])
		return
	}
	q := s.StreamScan(args[0], args[1]).
		Window(nexus.Tumbling(size)).
		GroupBy(args[3:]...).
		Agg(nexus.Count("n"))
	t0 := time.Now()
	windows := 0
	stats, err := q.SubscribeRemote(context.Background(), []string{provider}, func(t *nexus.Table) error {
		windows++
		if windows <= 5 {
			fmt.Print(t.Format(10))
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("(%d windows from %s, %d events, %d late, %v)\n",
		windows, provider, stats.Events, stats.Late, time.Since(t0).Round(time.Microsecond))
}

// runStreamAnalyze traces a windowed streaming query over a stored
// dataset in-process: the replay runs to completion with a per-operator
// trace, and both stage plans print with calls/rows/time annotations.
//
//	\explain analyze stream <dataset> <timecol> <windowsize> [key...]
func runStreamAnalyze(s *nexus.Session, args []string) {
	if len(args) < 3 {
		fmt.Println("usage: \\explain analyze stream <dataset> <timecol> <windowsize> [key...]")
		return
	}
	size, err := strconv.ParseInt(args[2], 10, 64)
	if err != nil || size <= 0 {
		fmt.Println("window size must be a positive integer")
		return
	}
	out, err := s.StreamScan(args[0], args[1]).
		Window(nexus.Tumbling(size)).
		GroupBy(args[3:]...).
		Agg(nexus.Count("n")).
		ExplainAnalyze(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(out)
}

// runTrace implements \trace: "on"/"off" toggles query tracing in this
// shell; anything else is a sidecar address (default -metrics) plus an
// optional trace id, fetched from that server's /debug/traces.
func runTrace(args []string, tracing *bool, defaultAddr string) {
	if len(args) == 1 && (args[0] == "on" || args[0] == "off") {
		*tracing = args[0] == "on"
		if *tracing {
			fmt.Println("tracing: on (each query prints its trace id)")
		} else {
			fmt.Println("tracing: off")
		}
		return
	}
	addr, id := defaultAddr, ""
	switch len(args) {
	case 0:
	case 1:
		// A lone 32-hex-char argument is a trace id for the default
		// sidecar; anything else is an address.
		if len(args[0]) == 32 && !strings.Contains(args[0], ":") {
			id = args[0]
		} else {
			addr = args[0]
		}
	case 2:
		addr, id = args[0], args[1]
	default:
		fmt.Println("usage: \\trace on|off  or  \\trace [host:port] [traceid]")
		return
	}
	path := "/debug/traces"
	if id != "" {
		path += "?trace=" + id
	}
	fetchSidecar(addr, path, `\trace`)
}

// fetchSidecar GETs a path from a metrics sidecar and prints the body.
func fetchSidecar(addr, path, cmd string) {
	if addr == "" {
		fmt.Printf("usage: %s <host:port> (or start the shell with -metrics)\n", cmd)
		return
	}
	cli := &http.Client{Timeout: 5 * time.Second}
	resp, err := cli.Get("http://" + addr + path)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Printf("error: %s returned %s: %s\n", addr, resp.Status, strings.TrimSpace(string(body)))
		return
	}
	fmt.Println(string(body))
}

func printDatasets(s *nexus.Session) {
	infos := s.Datasets()
	if len(infos) == 0 {
		fmt.Println("  (no datasets)")
		return
	}
	for _, ds := range infos {
		kind := "memory "
		if ds.Durable {
			kind = "durable"
		}
		fmt.Printf("  %-12s %8d rows  %s on %-12s %s\n", ds.Name, ds.Rows, kind, ds.Provider, ds.Schema)
	}
}
