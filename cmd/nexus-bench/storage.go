package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/expr"
	"nexus/internal/storage"
	"nexus/internal/table"
)

// Storage micro-benchmarks (-storage -> BENCH_5.json), the storage-v2
// acceptance run:
//
//   - cold vs warm scans: the price of durability on first touch;
//   - projected cold scans: segment-level column projection must read
//     strictly fewer file bytes than a full-width scan;
//   - pruned scans before and after background compaction: merging the
//     segment spray under a clustering sort must leave the pruned scan
//     at least as fast (and reading no more segments);
//   - v1-vs-v2 segment size: what the dict/RLE page encodings buy;
//   - WAL append+fsync throughput.
//
// The report carries the byte/segment counters alongside the timings so
// the claims are machine-checkable, not vibes.

// StorageExtras are the non-timing measurements of a storage run.
type StorageExtras struct {
	Rows                int     `json:"rows"`
	SegmentRows         int     `json:"segment_rows"`
	BytesFullScan       int64   `json:"bytes_full_cold_scan"`
	BytesProjectedScan  int64   `json:"bytes_projected_cold_scan"`
	ProjectedByteRatio  float64 `json:"projected_byte_ratio"`
	SegmentBytesV1      int     `json:"segment_bytes_v1_plain"`
	SegmentBytesV2      int     `json:"segment_bytes_v2_encoded"`
	EncodingRatio       float64 `json:"encoding_ratio_v2_vs_v1"`
	SegmentsPreCompact  int     `json:"segments_pre_compaction"`
	SegmentsPostCompact int     `json:"segments_post_compaction"`
	SegmentsMerged      int     `json:"segments_merged"`
	PrunedNsPreCompact  float64 `json:"pruned_ns_pre_compaction"`
	PrunedNsPostCompact float64 `json:"pruned_ns_post_compaction"`
	SegmentsSkipped     int64   `json:"segments_skipped"`
	SegmentsScanned     int64   `json:"segments_scanned"`
}

// StorageReport is the BENCH_10.json shape (formerly BENCH_5): timings
// plus the storage and encoded-execution extras.
type StorageReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Benchmarks  []MicroResult `json:"benchmarks"`
	Storage     StorageExtras `json:"storage"`
	Encoded     EncodedExtras `json:"encoded"`
}

func runStorageBench(path string, quick bool) error {
	rows := 2_000_000
	segRows := 100_000
	if quick {
		rows = 200_000
		segRows = 10_000
	}

	dir, err := os.MkdirTemp("", "nexus-bench-storage-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	eng, err := storage.OpenEngine("bench", filepath.Join(dir, "data"))
	if err != nil {
		return err
	}
	defer eng.Close()

	// Load in segment-sized appends of UNCLUSTERED data — rows arrive in
	// shuffled order, the WAL-born segment spray real streaming ingest
	// produces. Every small segment spans nearly the whole sale_id
	// range, so zone maps cannot prune range predicates until the
	// compactor sorts the data by the clustering key.
	sales := datagen.Sales(71, rows, rows/10, 200)
	idIdx := sales.Schema().IndexOf("sale_id")
	if idIdx < 0 {
		return fmt.Errorf("sales schema has no sale_id")
	}
	shuffled := shuffleRows(sales, 1234)
	for lo := 0; lo < rows; lo += segRows {
		hi := lo + segRows
		if hi > rows {
			hi = rows
		}
		if err := eng.Append("sales", shuffled.Slice(lo, hi)); err != nil {
			return err
		}
		if err := eng.Flush(); err != nil {
			return err
		}
	}

	extras := StorageExtras{Rows: rows, SegmentRows: segRows}
	var results []MicroResult
	add := func(r MicroResult, err error) (MicroResult, error) {
		if err != nil {
			return r, err
		}
		results = append(results, r)
		fmt.Printf("%-28s %12.0f ns/op %14.0f rows/s\n", r.Name, r.NsPerOp, r.RowsPerSec)
		return r, nil
	}

	scan, _ := core.NewScan("sales", sales.Schema())

	// Cold scan: every iteration drops the caches and reads all segment
	// files (decode + CRC + concat), full width.
	if _, err := add(measure("scan_cold_disk", rows, func() error {
		eng.DropCache()
		_, err := eng.Execute(scan)
		return err
	})); err != nil {
		return err
	}
	// One counted iteration for the full-scan byte baseline.
	eng.DropCache()
	b0 := eng.BytesRead()
	if _, err := eng.Execute(scan); err != nil {
		return err
	}
	extras.BytesFullScan = eng.BytesRead() - b0

	// Projected cold scan: two of the six columns. The reader fetches
	// only those column pages — the byte counter proves it.
	proj, err := core.NewProject(scan, []string{"sale_id", "price"})
	if err != nil {
		return err
	}
	if _, err := add(measure("scan_cold_projected", rows, func() error {
		eng.DropCache()
		_, err := eng.Execute(proj)
		return err
	})); err != nil {
		return err
	}
	eng.DropCache()
	b1 := eng.BytesRead()
	if _, err := eng.Execute(proj); err != nil {
		return err
	}
	extras.BytesProjectedScan = eng.BytesRead() - b1
	if extras.BytesFullScan > 0 {
		extras.ProjectedByteRatio = float64(extras.BytesProjectedScan) / float64(extras.BytesFullScan)
	}
	if extras.BytesProjectedScan >= extras.BytesFullScan {
		return fmt.Errorf("projected cold scan read %d bytes, full scan %d — projection saved nothing",
			extras.BytesProjectedScan, extras.BytesFullScan)
	}

	// Warm scan: the materialized table is served from RAM.
	if _, err := eng.Execute(scan); err != nil {
		return err
	}
	if _, err := add(measure("scan_warm_ram", rows, func() error {
		_, err := eng.Execute(scan)
		return err
	})); err != nil {
		return err
	}

	// Pruned cold scan: a 5%-selective sale_id range; zone maps skip
	// ~95% of the segments before any page is read. Measured twice —
	// against the segment spray, then against the compacted store.
	lo, hi := int64(rows/2), int64(rows/2+rows/20)
	filt, err := core.NewFilter(scan, expr.And(
		expr.Ge(expr.Column("sale_id"), expr.CInt(lo)),
		expr.Lt(expr.Column("sale_id"), expr.CInt(hi)),
	))
	if err != nil {
		return err
	}
	prePruned, err := add(measure("scan_cold_pruned_precompact", rows/20, func() error {
		eng.DropCache()
		_, err := eng.Execute(filt)
		return err
	}))
	if err != nil {
		return err
	}
	extras.PrunedNsPreCompact = prePruned.NsPerOp

	// Background compaction: merge the unclustered spray, sort by
	// sale_id, re-chunk at the size target — zone maps go from useless
	// (every segment spans the whole key range) to near-disjoint ranges.
	target := int64(8 << 20)
	if quick {
		target = 1 << 20
	}
	preSegs := countSegments(eng, "sales")
	extras.SegmentsPreCompact = preSegs
	stats, err := eng.Compact(storage.CompactOptions{
		TargetBytes: target,
		ClusterBy:   map[string]string{"sales": "sale_id"},
	})
	if err != nil {
		return err
	}
	extras.SegmentsMerged = stats.Merged
	extras.SegmentsPostCompact = countSegments(eng, "sales")
	fmt.Printf("compaction: %d segments -> %d (%d merged, %d -> %d bytes)\n",
		preSegs, extras.SegmentsPostCompact, stats.Merged, stats.BytesIn, stats.BytesOut)
	// Deterministic structural assertion (timing would be flaky in CI):
	// compaction must actually have consolidated the spray.
	if extras.SegmentsPostCompact >= extras.SegmentsPreCompact {
		return fmt.Errorf("compaction did not reduce segments: %d -> %d",
			extras.SegmentsPreCompact, extras.SegmentsPostCompact)
	}

	postPruned, err := add(measure("scan_cold_pruned_compacted", rows/20, func() error {
		eng.DropCache()
		_, err := eng.Execute(filt)
		return err
	}))
	if err != nil {
		return err
	}
	extras.PrunedNsPostCompact = postPruned.NsPerOp

	// Encoded execution over the compacted, clustered store: the
	// selective pruned+projected query and the grouped aggregate, cold
	// with the encoded kernels vs cold decoding vs warm RAM, then the
	// per-encoding filter kernels in isolation.
	encoded, err := runEncodedExec(eng, sales.Schema(), rows, quick, add)
	if err != nil {
		return err
	}
	if encoded.FilterKernelSpeedup, err = filterKernels(quick, add); err != nil {
		return err
	}

	// Durable append+fsync throughput: one group-committed WAL append
	// per op.
	batch := shuffled.Slice(0, 1000)
	if _, err := add(measure("append_wal_fsync", 1000, func() error {
		return eng.Append("ingest", batch)
	})); err != nil {
		return err
	}

	// Encoding win: the same clustered segment-sized slice, plain v1 vs
	// paged v2 (sales is generated in ascending sale_id order, so this
	// sample looks like a post-compaction chunk).
	sample := sales.Slice(0, segRows)
	extras.SegmentBytesV1 = len(storage.EncodeSegmentV1(sample))
	extras.SegmentBytesV2 = len(storage.EncodeSegment(sample))
	if extras.SegmentBytesV1 > 0 {
		extras.EncodingRatio = float64(extras.SegmentBytesV2) / float64(extras.SegmentBytesV1)
	}
	fmt.Printf("segment encoding: v1 plain %d bytes, v2 dict/rle %d bytes (%.2fx)\n",
		extras.SegmentBytesV1, extras.SegmentBytesV2, extras.EncodingRatio)

	extras.SegmentsSkipped, extras.SegmentsScanned = eng.SegmentsSkipped(), eng.SegmentsScanned()
	fmt.Printf("zone maps: %d segments skipped, %d scanned (%.0f%% pruned on the filtered path)\n",
		extras.SegmentsSkipped, extras.SegmentsScanned,
		100*float64(extras.SegmentsSkipped)/float64(extras.SegmentsSkipped+extras.SegmentsScanned))
	fmt.Printf("projection: full cold scan %d bytes, projected %d bytes (%.2fx)\n",
		extras.BytesFullScan, extras.BytesProjectedScan, extras.ProjectedByteRatio)

	report := StorageReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Benchmarks:  results,
		Storage:     extras,
		Encoded:     encoded,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// countSegments reports how many durable segments back a dataset.
func countSegments(eng *storage.Engine, name string) int {
	refs, _, _ := eng.Backing().Segments(name)
	return len(refs)
}

// shuffleRows returns the table's rows in a deterministic pseudo-random
// order — the arrival order of streaming ingest, where nothing is
// clustered by the query key.
func shuffleRows(t *table.Table, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return t.Gather(idx)
}
