package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/expr"
	"nexus/internal/storage"
	"nexus/internal/table"
)

// Storage micro-benchmarks (-storage -> BENCH_4.json): cold scans read
// columnar segments from disk, warm scans hit the materialized RAM
// copy, and pruned scans let zone maps skip segments. The cold/warm
// ratio is the price of durability on first touch; the pruned/cold
// ratio is what zone maps claw back.
func runStorageBench(path string, quick bool) error {
	rows := 2_000_000
	segRows := 100_000
	if quick {
		rows = 200_000
		segRows = 10_000
	}

	dir, err := os.MkdirTemp("", "nexus-bench-storage-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	eng, err := storage.OpenEngine("bench", filepath.Join(dir, "data"))
	if err != nil {
		return err
	}
	defer eng.Close()

	// Load in segment-sized appends: rows/segRows segments with
	// contiguous, disjoint sale_id ranges, so range predicates prune.
	sales := datagen.Sales(71, rows, rows/10, 200)
	idIdx := sales.Schema().IndexOf("sale_id")
	if idIdx < 0 {
		return fmt.Errorf("sales schema has no sale_id")
	}
	sorted := sales.Sort([]table.SortKey{{Col: idIdx}})
	for lo := 0; lo < rows; lo += segRows {
		hi := lo + segRows
		if hi > rows {
			hi = rows
		}
		if err := eng.Append("sales", sorted.Slice(lo, hi)); err != nil {
			return err
		}
		if err := eng.Flush(); err != nil {
			return err
		}
	}

	var results []MicroResult
	add := func(r MicroResult, err error) error {
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("%-28s %12.0f ns/op %14.0f rows/s\n", r.Name, r.NsPerOp, r.RowsPerSec)
		return nil
	}

	scan, _ := core.NewScan("sales", sales.Schema())

	// Cold scan: every iteration drops the caches and reads all segment
	// files (decode + CRC + concat).
	if err := add(measure("scan_cold_disk", rows, func() error {
		eng.DropCache()
		_, err := eng.Execute(scan)
		return err
	})); err != nil {
		return err
	}

	// Warm scan: the materialized table is served from RAM.
	if _, err := eng.Execute(scan); err != nil {
		return err
	}
	if err := add(measure("scan_warm_ram", rows, func() error {
		_, err := eng.Execute(scan)
		return err
	})); err != nil {
		return err
	}

	// Pruned cold scan: a 5%-selective sale_id range; zone maps skip
	// ~95% of the segments before any page is read.
	lo, hi := int64(rows/2), int64(rows/2+rows/20)
	filt, err := core.NewFilter(scan, expr.And(
		expr.Ge(expr.Column("sale_id"), expr.CInt(lo)),
		expr.Lt(expr.Column("sale_id"), expr.CInt(hi)),
	))
	if err != nil {
		return err
	}
	if err := add(measure("scan_cold_pruned", rows/20, func() error {
		eng.DropCache()
		_, err := eng.Execute(filt)
		return err
	})); err != nil {
		return err
	}

	// Durable append+fsync throughput: one group-committed WAL append
	// per op.
	batch := sorted.Slice(0, 1000)
	if err := add(measure("append_wal_fsync", 1000, func() error {
		return eng.Append("ingest", batch)
	})); err != nil {
		return err
	}

	skipped, scanned := eng.SegmentsSkipped(), eng.SegmentsScanned()
	fmt.Printf("zone maps: %d segments skipped, %d scanned (%.0f%% pruned on the filtered path)\n",
		skipped, scanned, 100*float64(skipped)/float64(skipped+scanned))

	report := MicroReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Benchmarks:  results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
