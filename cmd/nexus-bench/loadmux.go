package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"nexus"
	"nexus/internal/engines/relational"
	"nexus/internal/server"
)

// Front-door multiplexing benchmark (-load-mux -> BENCH_8.json). For
// each subscription count it runs the same windowed dataset-replay
// workload twice — once with the classic one-TCP-connection-per-
// subscription front door, once with every subscription multiplexed
// over a single connection — and reports connection counts, wall time
// and per-subscription completion latency (p50/p99). The mux must
// collapse N connections into one without inflating the tail; the run
// self-asserts that both modes actually streamed windows.

// MuxRun is one (mode, subscription count) cell.
type MuxRun struct {
	Mode          string  `json:"mode"` // conn-per-sub | mux
	Subscriptions int     `json:"subscriptions"`
	Connections   int     `json:"connections"`
	Windows       int64   `json:"windows"`
	WallMs        float64 `json:"wall_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// MuxReport is the BENCH_8.json shape.
type MuxReport struct {
	GeneratedAt string   `json:"generated_at"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	SeedRows    int      `json:"seed_rows"`
	Runs        []MuxRun `json:"runs"`
}

func runLoadMux(out string, quick bool) error {
	const seedRows = 20000
	eng := relational.New("muxbench")
	srv, err := server.Serve(eng, "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv.Logf = func(string, ...any) {}
	defer srv.Close()

	seed, err := loadEvents(0, seedRows)
	if err != nil {
		return err
	}
	seeder := nexus.NewSession()
	seedProv, err := seeder.ConnectTCP(srv.Addr())
	if err != nil {
		return err
	}
	if err := seeder.Store(seedProv, loadDataset, seed); err != nil {
		return err
	}

	counts := []int{16, 64, 256}
	if quick {
		counts = []int{8, 32}
	}

	// drain runs n concurrent copies of the windowed replay over the
	// provided (session, provider) pairs — one pair per subscription in
	// conn-per-sub mode, the same pair n times in mux mode — and returns
	// per-subscription completion latencies plus the window total.
	drain := func(n int, session func(i int) (*nexus.Session, string)) ([]time.Duration, int64, error) {
		lats := make([]time.Duration, n)
		windows := make([]int64, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s, prov := session(i)
				start := time.Now()
				_, err := s.StreamScan(loadDataset, "ts").
					BatchSize(2048).
					Window(nexus.Tumbling(1000)).
					GroupBy("sym").
					Agg(nexus.Count("n")).
					SubscribeRemote(context.Background(), []string{prov}, func(*nexus.Table) error {
						windows[i]++
						return nil
					})
				lats[i] = time.Since(start)
				errs[i] = err
			}(i)
		}
		wg.Wait()
		var total int64
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return nil, 0, fmt.Errorf("subscription %d: %w", i, errs[i])
			}
			total += windows[i]
		}
		return lats, total, nil
	}
	pct := func(lats []time.Duration, p float64) float64 {
		s := append([]time.Duration(nil), lats...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		idx := int(float64(len(s)-1) * p)
		return float64(s[idx]) / float64(time.Millisecond)
	}

	report := MuxReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		SeedRows:    seedRows,
	}
	fmt.Printf("load-mux: windowed replay of %d rows against %s\n\n", seedRows, srv.Addr())
	fmt.Printf("%-14s %6s %6s %9s %10s %10s %10s\n", "mode", "subs", "conns", "windows", "wall", "p50", "p99")

	for _, n := range counts {
		// Baseline: one TCP connection per subscription.
		sessions := make([]*nexus.Session, n)
		provs := make([]string, n)
		for i := 0; i < n; i++ {
			s := nexus.NewSession()
			prov, err := s.ConnectTCP(srv.Addr())
			if err != nil {
				return err
			}
			sessions[i], provs[i] = s, prov
		}
		t0 := time.Now()
		lats, windows, err := drain(n, func(i int) (*nexus.Session, string) { return sessions[i], provs[i] })
		if err != nil {
			return fmt.Errorf("conn-per-sub (%d subs): %w", n, err)
		}
		base := MuxRun{
			Mode: "conn-per-sub", Subscriptions: n, Connections: n, Windows: windows,
			WallMs: float64(time.Since(t0)) / float64(time.Millisecond),
			P50Ms:  pct(lats, 0.50), P99Ms: pct(lats, 0.99),
		}
		report.Runs = append(report.Runs, base)
		for _, s := range sessions {
			s.Close()
		}

		// The front door under test: every subscription shares one
		// multiplexed connection.
		ms := nexus.NewSession()
		mprov, err := ms.Connect(srv.Addr(), nexus.ConnectOptions{Mux: true})
		if err != nil {
			return err
		}
		t0 = time.Now()
		lats, windows, err = drain(n, func(int) (*nexus.Session, string) { return ms, mprov })
		if err != nil {
			return fmt.Errorf("mux (%d subs): %w", n, err)
		}
		mux := MuxRun{
			Mode: "mux", Subscriptions: n, Connections: 1, Windows: windows,
			WallMs: float64(time.Since(t0)) / float64(time.Millisecond),
			P50Ms:  pct(lats, 0.50), P99Ms: pct(lats, 0.99),
		}
		report.Runs = append(report.Runs, mux)
		ms.Close()

		for _, r := range []MuxRun{base, mux} {
			fmt.Printf("%-14s %6d %6d %9d %9.0fms %9.1fms %9.1fms\n",
				r.Mode, r.Subscriptions, r.Connections, r.Windows, r.WallMs, r.P50Ms, r.P99Ms)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)

	// Self-assertion: both modes must have streamed real windows at
	// every size, with the same totals — a mode that did nothing (or
	// dropped windows) must fail loudly, not publish zeros.
	for i := 0; i+1 < len(report.Runs); i += 2 {
		b, m := report.Runs[i], report.Runs[i+1]
		if b.Windows == 0 || m.Windows == 0 || b.P99Ms <= 0 || m.P99Ms <= 0 {
			return fmt.Errorf("idle run: %+v vs %+v", b, m)
		}
		if b.Windows != m.Windows {
			return fmt.Errorf("mux lost windows at %d subs: %d vs %d", b.Subscriptions, m.Windows, b.Windows)
		}
	}
	return nil
}
