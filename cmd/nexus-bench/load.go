package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nexus"
	"nexus/internal/obs"
	"nexus/internal/server"
	"nexus/internal/storage"
)

// Tail-latency load generator (-load -> BENCH_6.json). A durable server
// runs in-process on a loopback TCP listener with a fast background
// compactor; N concurrent clients drive a mixed workload against it —
// small durable appends (WAL group commit under contention), filtered
// scans (zone maps racing compaction's generation swaps) and windowed
// dataset-replay subscriptions (credit-controlled streaming). Every
// operation's latency lands in a histogram, and the report carries
// throughput plus p50/p95/p99/p999 per class, so tail regressions are
// machine-checkable. The run fails (non-zero exit) if any class shows a
// zero p99 — an idle generator must never pass for a healthy one.

// LoadClass is one workload class's results.
type LoadClass struct {
	Op        string  `json:"op"`
	Clients   int     `json:"clients"`
	Ops       int64   `json:"ops"`
	Rows      int64   `json:"rows"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P95Us     float64 `json:"p95_us"`
	P99Us     float64 `json:"p99_us"`
	P999Us    float64 `json:"p999_us"`
}

// LoadReport is the BENCH_6.json shape.
type LoadReport struct {
	GeneratedAt  string      `json:"generated_at"`
	GoMaxProcs   int         `json:"gomaxprocs"`
	Clients      int         `json:"clients"`
	DurationSecs float64     `json:"duration_seconds"`
	SeedRows     int         `json:"seed_rows"`
	Classes      []LoadClass `json:"classes"`
}

const loadDataset = "load_events"

// loadEvents builds (ts, sym, vol, price) rows with ts = lo..hi-1.
func loadEvents(lo, hi int64) (*nexus.Table, error) {
	syms := []string{"AAA", "BBB", "CCC", "DDD", "EEE", "FFF", "GGG", "HHH"}
	tb := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
		nexus.ColumnDef{Name: "sym", Type: nexus.String},
		nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
		nexus.ColumnDef{Name: "price", Type: nexus.Float64},
	)
	for i := lo; i < hi; i++ {
		tb.Append(i, syms[i%8], i%100, float64(i%50)+0.25)
	}
	return tb.Build()
}

func runLoad(out string, clients int, dur time.Duration) error {
	if clients < 4 {
		clients = 4
	}
	dir, err := os.MkdirTemp("", "nexus-load-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	eng, err := storage.OpenEngine("load", dir)
	if err != nil {
		return err
	}
	defer eng.Close()

	srv, err := server.ServeWithCheckpoints(eng, "127.0.0.1:0", eng.Backing(), time.Second)
	if err != nil {
		return err
	}
	srv.Logf = func(string, ...any) {}
	defer srv.Close()

	// Seed through the wire like any other client, then flush so the
	// first scans hit real segments rather than the memtable.
	const seedRows = 20000
	seed, err := loadEvents(0, seedRows)
	if err != nil {
		return err
	}
	seeder := nexus.NewSession()
	seedProv, err := seeder.ConnectTCP(srv.Addr())
	if err != nil {
		return err
	}
	if err := seeder.Store(seedProv, loadDataset, seed); err != nil {
		return err
	}
	if err := eng.Flush(); err != nil {
		return err
	}
	// A fast compactor keeps generation swaps happening under the
	// scans, so the bench measures the system as deployed, not a
	// quiesced one. Replay subscriptions here never resume, so no
	// exclusion is needed.
	stopCompactor := eng.StartCompactor(250*time.Millisecond, storage.CompactOptions{ClusterBy: map[string]string{loadDataset: "ts"}}, nil)
	defer stopCompactor()

	// Latency histograms live in a private registry so the report never
	// mixes with the server's own process-wide metrics.
	reg := obs.NewRegistry()
	hists := map[string]*obs.Histogram{
		"append":    reg.Histogram("load_append_seconds", "Durable append round-trip.", obs.LatencyBuckets()),
		"scan":      reg.Histogram("load_scan_seconds", "Filtered scan round-trip.", obs.LatencyBuckets()),
		"subscribe": reg.Histogram("load_subscribe_seconds", "Windowed dataset-replay subscription, subscribe to final window.", obs.LatencyBuckets()),
	}
	var ops, rows sync.Map // class -> *atomic.Int64
	for class := range hists {
		ops.Store(class, &atomic.Int64{})
		rows.Store(class, &atomic.Int64{})
	}
	count := func(m *sync.Map, class string, n int64) {
		v, _ := m.Load(class)
		v.(*atomic.Int64).Add(n)
	}

	// Client mix: half appenders, a quarter scanners, a quarter
	// subscribers (at least one each — the whole point is concurrency).
	nSub := clients / 4
	nScan := clients / 4
	nApp := clients - nSub - nScan

	deadline := time.Now().Add(dur)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	for c := 0; c < nApp; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := nexus.NewSession()
			prov, err := s.ConnectTCP(srv.Addr())
			if err != nil {
				fail(err)
				return
			}
			const batch = 64
			next := int64(seedRows + id*1_000_000)
			for time.Now().Before(deadline) {
				t, err := loadEvents(next, next+batch)
				if err != nil {
					fail(err)
					return
				}
				next += batch
				start := time.Now()
				if err := s.Append(prov, loadDataset, t); err != nil {
					fail(fmt.Errorf("append: %w", err))
					return
				}
				hists["append"].ObserveSince(start)
				count(&ops, "append", 1)
				count(&rows, "append", batch)
			}
		}(c)
	}
	for c := 0; c < nScan; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := nexus.NewSession()
			if _, err := s.ConnectTCP(srv.Addr()); err != nil {
				fail(err)
				return
			}
			for time.Now().Before(deadline) {
				start := time.Now()
				t, err := s.Scan(loadDataset).
					Where(nexus.Gt(nexus.Col("vol"), nexus.Int(94))).
					Collect()
				if err != nil {
					fail(fmt.Errorf("scan: %w", err))
					return
				}
				hists["scan"].ObserveSince(start)
				count(&ops, "scan", 1)
				count(&rows, "scan", int64(t.NumRows()))
			}
		}()
	}
	for c := 0; c < nSub; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := nexus.NewSession()
			prov, err := s.ConnectTCP(srv.Addr())
			if err != nil {
				fail(err)
				return
			}
			for time.Now().Before(deadline) {
				start := time.Now()
				windows := int64(0)
				_, err := s.StreamScan(loadDataset, "ts").
					BatchSize(2048).
					Window(nexus.Tumbling(1000)).
					GroupBy("sym").
					Agg(nexus.Count("n")).
					SubscribeRemote(ctx, []string{prov}, func(*nexus.Table) error {
						windows++
						return nil
					})
				if err != nil {
					if ctx.Err() != nil {
						return // deadline cut the replay short; not a failure
					}
					fail(fmt.Errorf("subscribe: %w", err))
					return
				}
				hists["subscribe"].ObserveSince(start)
				count(&ops, "subscribe", 1)
				count(&rows, "subscribe", windows)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}

	report := LoadReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Clients:      clients,
		DurationSecs: dur.Seconds(),
		SeedRows:     seedRows,
	}
	classClients := map[string]int{"append": nApp, "scan": nScan, "subscribe": nSub}
	fmt.Printf("load: %d clients (%d append, %d scan, %d subscribe) for %v against %s\n\n",
		clients, nApp, nScan, nSub, dur, srv.Addr())
	fmt.Printf("%-10s %10s %12s %12s %10s %10s %10s %10s\n",
		"op", "ops", "rows", "ops/sec", "p50", "p95", "p99", "p999")
	for _, class := range []string{"append", "scan", "subscribe"} {
		st := hists[class].Stats()
		opsV, _ := ops.Load(class)
		rowsV, _ := rows.Load(class)
		n := opsV.(*atomic.Int64).Load()
		lc := LoadClass{
			Op:        class,
			Clients:   classClients[class],
			Ops:       n,
			Rows:      rowsV.(*atomic.Int64).Load(),
			OpsPerSec: float64(n) / dur.Seconds(),
			P50Us:     st.P50 * 1e6,
			P95Us:     st.P95 * 1e6,
			P99Us:     st.P99 * 1e6,
			P999Us:    st.P999 * 1e6,
		}
		report.Classes = append(report.Classes, lc)
		fmt.Printf("%-10s %10d %12d %12.1f %9.0fµs %9.0fµs %9.0fµs %9.0fµs\n",
			lc.Op, lc.Ops, lc.Rows, lc.OpsPerSec, lc.P50Us, lc.P95Us, lc.P99Us, lc.P999Us)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)

	// Self-assertion: an idle class means the generator (or the server)
	// broke, and the numbers above are meaningless.
	for _, lc := range report.Classes {
		if lc.Ops == 0 || lc.P99Us <= 0 {
			return fmt.Errorf("class %q did nothing (ops=%d p99=%.1fµs)", lc.Op, lc.Ops, lc.P99Us)
		}
	}
	return nil
}
