package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"nexus"
	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/exec"
	"nexus/internal/expr"
	"nexus/internal/table"
)

// MicroResult is one kernel micro-benchmark measurement. The file these
// serialize into (BENCH_2.json by default) is the machine-readable
// record of the execution engine's performance trajectory: re-run
// `nexus-bench -micro` after an engine change and diff the numbers.
type MicroResult struct {
	Name       string  `json:"name"`
	Rows       int     `json:"rows"`
	Iters      int     `json:"iters"`
	NsPerOp    float64 `json:"ns_per_op"`
	RowsPerSec float64 `json:"rows_per_sec"`

	// Filled when a -baseline report is supplied: the prior run's ns/op
	// and the speedup of this run over it.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup_vs_baseline,omitempty"`
}

// MicroReport is the top-level structure of BENCH_2.json.
type MicroReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Benchmarks  []MicroResult `json:"benchmarks"`
}

// measure runs fn until it has both a minimum duration and iteration
// count, then reports per-op time and row throughput.
func measure(name string, rows int, fn func() error) (MicroResult, error) {
	if err := fn(); err != nil { // warm-up (and populate plan caches)
		return MicroResult{}, fmt.Errorf("%s: %w", name, err)
	}
	const (
		minIters = 3
		minTime  = 300 * time.Millisecond
	)
	var (
		iters   int
		elapsed time.Duration
	)
	for iters < minIters || elapsed < minTime {
		t0 := time.Now()
		if err := fn(); err != nil {
			return MicroResult{}, fmt.Errorf("%s: %w", name, err)
		}
		elapsed += time.Since(t0)
		iters++
	}
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	return MicroResult{
		Name:       name,
		Rows:       rows,
		Iters:      iters,
		NsPerOp:    nsPerOp,
		RowsPerSec: float64(rows) * float64(iters) / elapsed.Seconds(),
	}, nil
}

// runMicro executes the kernel micro-benchmark suite and writes the JSON
// report to path. When baselinePath names a previous report, matching
// benchmarks carry its ns/op and the speedup over it.
func runMicro(path, baselinePath string, quick bool) error {
	scale := 1
	if quick {
		scale = 10
	}
	var results []MicroResult
	add := func(r MicroResult, err error) error {
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("%-28s %12.0f ns/op %14.0f rows/s\n", r.Name, r.NsPerOp, r.RowsPerSec)
		return nil
	}

	// Filter: compound predicate through the vectorized selection path.
	{
		rows := 1_000_000 / scale
		sales := datagen.Sales(41, rows, rows/10, 50)
		sc, _ := core.NewScan("sales", sales.Schema())
		f, err := core.NewFilter(sc, expr.And(
			expr.Gt(expr.Column("qty"), expr.CInt(3)),
			expr.Lt(expr.Column("price"), expr.CFloat(40)),
		))
		if err != nil {
			return err
		}
		rt := &exec.Runtime{Datasets: func(string) (*table.Table, bool) { return sales, true }}
		if err := add(measure("filter_vectorized", rows, func() error {
			_, err := rt.Run(f)
			return err
		})); err != nil {
			return err
		}
	}

	// Extend: two computed columns through the morsel pool.
	{
		rows := 1_000_000 / scale
		sales := datagen.Sales(42, rows, rows/10, 50)
		sc, _ := core.NewScan("sales", sales.Schema())
		e, err := core.NewExtend(sc, []core.ColDef{
			{Name: "notional", E: expr.Mul(expr.Column("price"), expr.Column("qty"))},
			{Name: "rebate", E: expr.Mul(expr.Sub(expr.Column("price"), expr.CFloat(1)), expr.CFloat(0.05))},
		})
		if err != nil {
			return err
		}
		rt := &exec.Runtime{Datasets: func(string) (*table.Table, bool) { return sales, true }}
		if err := add(measure("extend_parallel", rows, func() error {
			_, err := rt.Run(e)
			return err
		})); err != nil {
			return err
		}
	}

	// Hash join: foreign-key equijoin, int64 fast path.
	{
		rows := 100_000 / scale
		sales := datagen.Sales(43, rows, rows/10, 50)
		cust := datagen.Customers(44, rows/10)
		sc, _ := core.NewScan("sales", sales.Schema())
		cc, _ := core.NewScan("customers", cust.Schema())
		j, err := core.NewJoin(sc, cc, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
		if err != nil {
			return err
		}
		rt := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
			if n == "sales" {
				return sales, true
			}
			return cust, true
		}}
		if err := add(measure("hash_join", rows, func() error {
			_, err := rt.Run(j)
			return err
		})); err != nil {
			return err
		}
	}

	// Hash aggregation: columnar sum/count folds over dense group ids.
	{
		rows := 100_000 / scale
		sales := datagen.Sales(45, rows, 1000, 100)
		sc, _ := core.NewScan("sales", sales.Schema())
		ga, err := core.NewGroupAgg(sc, []string{"cust_id"}, []core.AggSpec{
			{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
			{Func: core.AggCount, As: "n"},
		})
		if err != nil {
			return err
		}
		rt := &exec.Runtime{Datasets: func(string) (*table.Table, bool) { return sales, true }}
		if err := add(measure("hash_aggregate", rows, func() error {
			_, err := rt.Run(ga)
			return err
		})); err != nil {
			return err
		}
	}

	// Stream: end-to-end windowed aggregation over a generated stream.
	{
		rows := 100_000 / scale
		s := nexus.NewSession()
		syms := []string{"AAA", "BBB", "CCC", "DDD"}
		if err := add(measure("stream_throughput", rows, func() error {
			src, err := nexus.GenerateSource("ts", int64(rows), func(i int64) []any {
				return []any{i, syms[i%4], i % 100, float64(i%50) + 0.5}
			},
				nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
				nexus.ColumnDef{Name: "sym", Type: nexus.String},
				nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
				nexus.ColumnDef{Name: "price", Type: nexus.Float64},
			)
			if err != nil {
				return err
			}
			_, err = s.StreamFrom(src).
				Window(nexus.Tumbling(int64(rows)/10)).
				GroupBy("sym").
				Agg(nexus.Sum("notional", nexus.Mul(nexus.Col("price"), nexus.Col("vol"))), nexus.Count("trades")).
				Collect(context.Background())
			return err
		})); err != nil {
			return err
		}
	}

	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("read baseline: %w", err)
		}
		var base MicroReport
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse baseline: %w", err)
		}
		byName := make(map[string]MicroResult, len(base.Benchmarks))
		for _, b := range base.Benchmarks {
			byName[b.Name] = b
		}
		for i := range results {
			if b, ok := byName[results[i].Name]; ok && b.NsPerOp > 0 {
				results[i].BaselineNsPerOp = b.NsPerOp
				results[i].Speedup = b.NsPerOp / results[i].NsPerOp
			}
		}
	}

	report := MicroReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Benchmarks:  results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
