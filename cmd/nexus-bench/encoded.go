package main

import (
	"fmt"
	"os"
	"path/filepath"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/storage"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Encoded-execution measurements (the BENCH_10 additions to -storage):
// the same selective pruned+projected query cold with the encoded
// kernels, cold with decode-to-plain, and warm from RAM — the ROADMAP
// bar is cold-encoded within 2× of warm — plus per-encoding filter
// kernel micro-benchmarks (encoded evaluation vs the typed loop over
// the materialized column it replaces).

// EncodedExtras are the non-timing measurements of the encoded section.
type EncodedExtras struct {
	WarmSelectiveNs        float64            `json:"warm_selective_ns"`
	ColdEncodedSelectiveNs float64            `json:"cold_encoded_selective_ns"`
	ColdDecodedSelectiveNs float64            `json:"cold_decoded_selective_ns"`
	ColdEncodedVsWarmRatio float64            `json:"cold_encoded_vs_warm_ratio"`
	AggColdEncodedNs       float64            `json:"agg_cold_encoded_ns"`
	AggColdDecodedNs       float64            `json:"agg_cold_decoded_ns"`
	EncodedScansServed     int64              `json:"encoded_scans_served"`
	EncodedAggsServed      int64              `json:"encoded_aggs_served"`
	FilterKernelSpeedup    map[string]float64 `json:"filter_kernel_speedup_by_encoding"`
}

type addFunc func(MicroResult, error) (MicroResult, error)

// runEncodedExec measures the encoded execution paths against a loaded,
// compacted engine. rows is the dataset size; the selective window is
// the same 5% sale_id range the pruned scans use, narrowed further by a
// region equality the dictionary kernels evaluate on codes.
func runEncodedExec(eng *storage.Engine, sch schema.Schema, rows int, quick bool, add addFunc) (EncodedExtras, error) {
	var ex EncodedExtras

	lo, hi := int64(rows/2), int64(rows/2+rows/20)
	scan, _ := core.NewScan("sales", sch)
	filt, err := core.NewFilter(scan, expr.And(
		expr.Ge(expr.Column("sale_id"), expr.CInt(lo)),
		expr.And(
			expr.Lt(expr.Column("sale_id"), expr.CInt(hi)),
			expr.Eq(expr.Column("region"), expr.CStr(datagen.Regions[0])))))
	if err != nil {
		return ex, err
	}
	sel, err := core.NewProject(filt, []string{"sale_id", "price"})
	if err != nil {
		return ex, err
	}
	selRows := rows / 20 / len(datagen.Regions)

	// Warm baseline: the dataset materialized in RAM, generic kernels.
	if _, err := eng.Execute(scan); err != nil {
		return ex, err
	}
	warm, err := add(measure("scan_warm_selective", selRows, func() error {
		_, err := eng.Execute(sel)
		return err
	}))
	if err != nil {
		return ex, err
	}
	ex.WarmSelectiveNs = warm.NsPerOp

	// Cold, decode-to-plain: what every query paid before encoded
	// execution.
	eng.SetEncodedExec(false)
	coldDec, err := add(measure("scan_cold_selective_decoded", selRows, func() error {
		eng.DropCache()
		_, err := eng.Execute(sel)
		return err
	}))
	if err != nil {
		return ex, err
	}
	ex.ColdDecodedSelectiveNs = coldDec.NsPerOp
	eng.DropCache()
	wantTbl, err := eng.Execute(sel)
	if err != nil {
		return ex, err
	}

	// Cold, encoded: predicates over codes and runs, materializing only
	// survivors.
	eng.SetEncodedExec(true)
	served0 := eng.EncodedScans()
	coldEnc, err := add(measure("scan_cold_selective_encoded", selRows, func() error {
		eng.DropCache()
		_, err := eng.Execute(sel)
		return err
	}))
	if err != nil {
		return ex, err
	}
	ex.ColdEncodedSelectiveNs = coldEnc.NsPerOp
	if eng.EncodedScans() == served0 {
		return ex, fmt.Errorf("encoded pre-filter served no segments — the measurement is vacuous")
	}
	eng.DropCache()
	gotTbl, err := eng.Execute(sel)
	if err != nil {
		return ex, err
	}
	if !table.EqualRows(wantTbl, gotTbl) {
		return ex, fmt.Errorf("encoded and decoded selective scans disagree")
	}

	ex.ColdEncodedVsWarmRatio = coldEnc.NsPerOp / warm.NsPerOp
	fmt.Printf("encoded cold vs warm: %.0f ns vs %.0f ns (%.2fx, bar 2.00x)\n",
		coldEnc.NsPerOp, warm.NsPerOp, ex.ColdEncodedVsWarmRatio)
	if ex.ColdEncodedVsWarmRatio > 2.0 {
		return ex, fmt.Errorf("cold encoded selective scan is %.2fx the warm path, over the 2x bar",
			ex.ColdEncodedVsWarmRatio)
	}

	// The grouped aggregate, cold: the encoded fold consumes runs and
	// codes without materializing a single input row.
	aggFilt, err := core.NewFilter(scan, expr.Ge(expr.Column("sale_id"), expr.CInt(lo)))
	if err != nil {
		return ex, err
	}
	agg, err := core.NewGroupAgg(aggFilt, []string{"region"}, []core.AggSpec{
		{Func: core.AggCount, As: "n"},
		{Func: core.AggSum, Arg: expr.Column("price"), As: "revenue"},
	})
	if err != nil {
		return ex, err
	}
	eng.SetEncodedExec(false)
	aggDec, err := add(measure("agg_cold_decoded", rows/2, func() error {
		eng.DropCache()
		_, err := eng.Execute(agg)
		return err
	}))
	if err != nil {
		return ex, err
	}
	ex.AggColdDecodedNs = aggDec.NsPerOp
	eng.DropCache()
	wantAgg, err := eng.Execute(agg)
	if err != nil {
		return ex, err
	}

	eng.SetEncodedExec(true)
	aggServed0 := eng.EncodedAggs()
	aggEnc, err := add(measure("agg_cold_encoded", rows/2, func() error {
		eng.DropCache()
		_, err := eng.Execute(agg)
		return err
	}))
	if err != nil {
		return ex, err
	}
	ex.AggColdEncodedNs = aggEnc.NsPerOp
	if eng.EncodedAggs() == aggServed0 {
		return ex, fmt.Errorf("encoded aggregate kernel served no queries — the measurement is vacuous")
	}
	eng.DropCache()
	gotAgg, err := eng.Execute(agg)
	if err != nil {
		return ex, err
	}
	if !table.EqualRows(wantAgg, gotAgg) {
		return ex, fmt.Errorf("encoded and decoded aggregates disagree")
	}

	ex.EncodedScansServed = eng.EncodedScans()
	ex.EncodedAggsServed = eng.EncodedAggs()
	return ex, nil
}

// filterKernels measures one predicate per page encoding: the encoded
// AndMatches kernel against the typed tight loop over the materialized
// column. The decoded baseline is deliberately the fastest plain-column
// evaluation we know how to write — the reported speedup is what the
// encoding itself buys, not boxing overhead.
func filterKernels(quick bool, add addFunc) (map[string]float64, error) {
	n := 1 << 19
	if quick {
		n = 1 << 16
	}
	tmp, err := os.MkdirTemp("", "nexus-bench-kernels-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	cats := make([]string, 8)
	for i := range cats {
		cats[i] = fmt.Sprintf("category-%02d", i)
	}
	intCol := func(f func(i int) int64) *table.Table {
		b := table.NewBuilder(schema.New(schema.Attribute{Name: "c", Kind: value.KindInt64}), n)
		for i := 0; i < n; i++ {
			b.MustAppend(value.NewInt(f(i)))
		}
		return b.Build()
	}
	strCol := func() *table.Table {
		b := table.NewBuilder(schema.New(schema.Attribute{Name: "c", Kind: value.KindString}), n)
		for i := 0; i < n; i++ {
			b.MustAppend(value.NewString(cats[i%len(cats)]))
		}
		return b.Build()
	}

	type kernelCase struct {
		name    string
		tbl     *table.Table
		dicts   storage.DictSet
		wantEnc uint8
		op      value.BinOp
		cv      value.Value
		holds   func(mat *table.Column, m []bool) // typed decoded baseline
	}
	cases := []kernelCase{
		{
			name: "plain", tbl: intCol(func(i int) int64 { return int64(i) }),
			wantEnc: storage.PageEncPlain, op: value.OpGt, cv: value.NewInt(int64(n / 2)),
			holds: func(mat *table.Column, m []bool) {
				vals, c := mat.Ints(), int64(n/2)
				for r := range m {
					m[r] = m[r] && vals[r] > c
				}
			},
		},
		{
			name: "rle", tbl: intCol(func(i int) int64 { return int64(i / 64) }),
			wantEnc: storage.PageEncRLE, op: value.OpGt, cv: value.NewInt(int64(n / 128)),
			holds: func(mat *table.Column, m []bool) {
				vals, c := mat.Ints(), int64(n/128)
				for r := range m {
					m[r] = m[r] && vals[r] > c
				}
			},
		},
		{
			name: "dict", tbl: strCol(),
			wantEnc: storage.PageEncDict, op: value.OpEq, cv: value.NewString(cats[3]),
			holds: func(mat *table.Column, m []bool) {
				vals, c := mat.Strs(), cats[3]
				for r := range m {
					m[r] = m[r] && vals[r] == c
				}
			},
		},
		{
			name: "dict_shared", tbl: strCol(), dicts: storage.DictSet{},
			wantEnc: storage.PageEncDictShared, op: value.OpEq, cv: value.NewString(cats[3]),
			holds: func(mat *table.Column, m []bool) {
				vals, c := mat.Strs(), cats[3]
				for r := range m {
					m[r] = m[r] && vals[r] == c
				}
			},
		},
	}

	speedups := make(map[string]float64, len(cases))
	for _, kc := range cases {
		file := filepath.Join(tmp, "kern_"+kc.name+".nxs")
		if err := os.WriteFile(file, storage.EncodeSegmentDict(kc.tbl, kc.dicts, kc.dicts != nil), 0o644); err != nil {
			return nil, err
		}
		es, err := storage.ReadSegmentFileColumnsEncoded(file, []int{0}, kc.dicts)
		if err != nil {
			return nil, err
		}
		ec := es.Cols[0]
		if ec.Encoding() != kc.wantEnc {
			return nil, fmt.Errorf("kernel %s: got encoding %d, want %d", kc.name, ec.Encoding(), kc.wantEnc)
		}
		mat, err := ec.Materialize()
		if err != nil {
			return nil, err
		}
		m := make([]bool, n)
		enc, err := add(measure("filter_"+kc.name+"_encoded", n, func() error {
			for i := range m {
				m[i] = true
			}
			ec.AndMatches(kc.op, kc.cv, m)
			return nil
		}))
		if err != nil {
			return nil, err
		}
		dec, err := add(measure("filter_"+kc.name+"_decoded", n, func() error {
			for i := range m {
				m[i] = true
			}
			kc.holds(mat, m)
			return nil
		}))
		if err != nil {
			return nil, err
		}
		speedups[kc.name] = dec.NsPerOp / enc.NsPerOp
		fmt.Printf("filter kernel %-11s encoded %.2fx the typed decoded loop\n", kc.name+":", speedups[kc.name])
	}

	// The load-bearing claims: an RLE filter does one comparison per run
	// instead of per row (the O(rows) selection-vector fill is shared by
	// both sides, so the end-to-end win is bounded), and dictionary
	// filters compare codes instead of strings. Plain pages gain nothing
	// by construction and are reported, not asserted.
	for _, name := range []string{"rle", "dict", "dict_shared"} {
		if speedups[name] < 1.2 {
			return nil, fmt.Errorf("%s encoded filter speedup %.2fx, want >= 1.2x", name, speedups[name])
		}
	}
	return speedups, nil
}
