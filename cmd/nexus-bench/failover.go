package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/federation"
	"nexus/internal/replication"
	"nexus/internal/schema"
	"nexus/internal/server"
	"nexus/internal/storage"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// Failover benchmark (-failover -> BENCH_7.json). Each iteration spawns
// a real durable primary as a child process, replicates its dataset to
// an in-process follower, starts a durable windowed subscription with
// failover across {primary, follower}, SIGKILLs the primary once half
// the windows have arrived, and measures the gap from the kill to the
// first window delivered by the follower. The report carries p50/p99 of
// that gap across iterations, and every iteration asserts the deduped
// window set is byte-identical to an uninterrupted in-process run — a
// fast failover that loses data would be worse than useless.

// FailoverGap summarises the kill-to-first-window gap distribution.
type FailoverGap struct {
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// FailoverReport is the BENCH_7.json shape.
type FailoverReport struct {
	GeneratedAt   string      `json:"generated_at"`
	GoMaxProcs    int         `json:"gomaxprocs"`
	Iterations    int         `json:"iterations"`
	Rows          int         `json:"rows"`
	WindowsPerRun int         `json:"windows_per_run"`
	Failovers     int         `json:"failovers"`
	WindowsLost   int         `json:"windows_lost"`
	Gap           FailoverGap `json:"gap"`
	GapsMs        []float64   `json:"gaps_ms"`
}

func failoverSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64},
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "v", Kind: value.KindInt64},
	)
}

func failoverEvents(n int) *table.Table {
	b := table.NewBuilder(failoverSchema(), n)
	for i := 0; i < n; i++ {
		b.MustAppend(value.NewInt(int64(i)), value.NewInt(int64(i%4)), value.NewInt(int64(i)*3))
	}
	return b.Build()
}

func failoverSpec() (stream.Spec, error) {
	v, err := core.NewVar(stream.BatchVar, failoverSchema())
	if err != nil {
		return stream.Spec{}, err
	}
	return stream.Spec{
		Pre:      v,
		Windowed: true,
		Win:      core.StreamWindow{Kind: core.WindowTumbling, Size: 100, Slide: 100},
		Keys:     []string{"k"},
		Aggs: []core.AggSpec{
			{Func: core.AggSum, Arg: expr.Column("v"), As: "s"},
			{Func: core.AggCount, As: "n"},
		},
		BatchSize: 50,
	}, nil
}

// runFailoverPrimary is the child-process mode (-failover-primary DIR):
// a durable server on an ephemeral port that runs until killed.
func runFailoverPrimary(dir string) error {
	eng, err := storage.OpenEngine("p", dir)
	if err != nil {
		return err
	}
	srv, err := server.ServeWithCheckpoints(eng, "127.0.0.1:0", eng.Backing(), 0)
	if err != nil {
		return err
	}
	srv.Logf = func(string, ...any) {}
	fmt.Println("ADDR", srv.Addr())
	select {} // run until SIGKILLed
}

// spawnBenchPrimary re-executes this binary as a durable primary and
// returns its address plus a SIGKILL function.
func spawnBenchPrimary(dir string) (addr string, kill func(), err error) {
	cmd := exec.Command(os.Args[0], "-failover-primary", dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	kill = func() {
		cmd.Process.Kill() // SIGKILL: no shutdown path runs
		cmd.Wait()
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "ADDR ") {
			addr = strings.TrimSpace(strings.TrimPrefix(line, "ADDR "))
			break
		}
	}
	if addr == "" {
		kill()
		return "", nil, fmt.Errorf("failover primary printed no address")
	}
	go func() { // drain so the child never blocks on stdout
		for sc.Scan() {
		}
	}()
	return addr, kill, nil
}

// windowKeys dedupes at-least-once delivery: row keyed by
// (window_start, k), last copy wins.
func windowKeys(tabs []*table.Table) (map[string]string, error) {
	out := map[string]string{}
	for _, tb := range tabs {
		if tb == nil {
			continue
		}
		ws := tb.Schema().IndexOf(stream.WindowStartCol)
		kc := tb.Schema().IndexOf("k")
		if ws < 0 || kc < 0 {
			return nil, fmt.Errorf("window table lacks key columns: %v", tb.Schema())
		}
		for r := 0; r < tb.NumRows(); r++ {
			key := fmt.Sprintf("%v|%v", tb.Value(r, ws), tb.Value(r, kc))
			var row strings.Builder
			for c := 0; c < tb.NumCols(); c++ {
				fmt.Fprintf(&row, "%v|", tb.Value(r, c))
			}
			out[key] = row.String()
		}
	}
	return out, nil
}

// failoverOnce runs one kill-and-recover iteration and returns the
// kill-to-first-follower-window gap plus the deduped window rows.
func failoverOnce(events *table.Table, sp stream.Spec, expectWindows int) (gap time.Duration, got map[string]string, err error) {
	primaryDir, err := os.MkdirTemp("", "nexus-failover-p-*")
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(primaryDir)
	followerDir, err := os.MkdirTemp("", "nexus-failover-f-*")
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(followerDir)

	primaryAddr, kill, err := spawnBenchPrimary(primaryDir)
	if err != nil {
		return 0, nil, err
	}
	defer kill()

	tcp, err := federation.DialTCP(primaryAddr)
	if err != nil {
		return 0, nil, err
	}
	if err := tcp.Store("events", events, nil); err != nil {
		tcp.Close()
		return 0, nil, err
	}
	tcp.Close()

	follower, err := storage.OpenEngine("p", followerDir)
	if err != nil {
		return 0, nil, err
	}
	defer follower.Close()
	follower.SetReplica(true)
	rep := replication.New(follower, replication.Config{
		Primary:  primaryAddr,
		Interval: 10 * time.Millisecond,
	})
	rep.Start()
	defer rep.Stop()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := rep.Status()
		if st.Err == "" && st.Gen > 0 && st.Gen == st.PrimaryGen {
			break
		}
		if time.Now().After(deadline) {
			return 0, nil, fmt.Errorf("follower never caught up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	followerSrv, err := server.ServeWithCheckpoints(follower, "127.0.0.1:0", follower.Backing(), 0)
	if err != nil {
		return 0, nil, err
	}
	followerSrv.Logf = func(string, ...any) {}
	defer followerSrv.Close()
	followerSrv.SetReplStatus(rep.Status)

	b := federation.NewBackoff(time.Now().UnixNano())
	b.Base, b.Max = 5*time.Millisecond, 50*time.Millisecond
	fo, err := federation.SubscribeFailover(context.Background(),
		[]string{primaryAddr, followerSrv.Addr()},
		wire.StreamSub{
			SourceKind: wire.StreamSrcDataset,
			Dataset:    "events", TimeCol: "ts",
			Spec: sp, Durable: "bench", Credit: 2,
		},
		federation.FailoverOpts{Backoff: b},
	)
	if err != nil {
		return 0, nil, err
	}
	defer fo.Close()

	var (
		tabs    []*table.Table
		winSeen = map[string]bool{}
		killed  bool
		tKill   time.Time
	)
	for sb := range fo.Batches() {
		if sb.Table == nil {
			continue
		}
		tabs = append(tabs, sb.Table)
		if gap == 0 && killed && fo.Failovers() > 0 {
			gap = time.Since(tKill)
		}
		if ws := sb.Table.Schema().IndexOf(stream.WindowStartCol); ws >= 0 {
			for r := 0; r < sb.Table.NumRows(); r++ {
				winSeen[fmt.Sprint(sb.Table.Value(r, ws))] = true
			}
		}
		if !killed && len(winSeen) >= expectWindows/2 {
			killed = true
			tKill = time.Now()
			kill() // SIGKILL the primary at t=50%
		}
		time.Sleep(2 * time.Millisecond) // slow consumer keeps the stream alive past the kill
	}
	if err := fo.Err(); err != nil {
		return 0, nil, fmt.Errorf("stream failed terminally: %w", err)
	}
	if !killed {
		return 0, nil, fmt.Errorf("stream finished before the kill point (%d/%d windows)", len(winSeen), expectWindows)
	}
	if fo.Failovers() != 1 {
		return 0, nil, fmt.Errorf("failovers = %d, want 1", fo.Failovers())
	}
	if gap == 0 {
		return 0, nil, fmt.Errorf("no window arrived after the failover")
	}
	got, err = windowKeys(tabs)
	return gap, got, err
}

func runFailoverBench(out string, iters, rows int) error {
	sp, err := failoverSpec()
	if err != nil {
		return err
	}
	events := failoverEvents(rows)
	expectWindows := rows / 100

	// Uninterrupted in-process oracle: the window set every iteration
	// must reproduce exactly.
	p, err := stream.FromSpec(stream.NewReplay(events, "ts"), sp)
	if err != nil {
		return err
	}
	sink := stream.NewCollect(p.OutputSchema())
	if _, err := p.Run(context.Background(), sink); err != nil {
		return err
	}
	oracle, err := sink.Table()
	if err != nil {
		return err
	}
	want, err := windowKeys([]*table.Table{oracle})
	if err != nil {
		return err
	}

	fmt.Printf("failover: %d iterations, %d rows (%d windows), primary SIGKILLed at 50%%\n\n",
		iters, rows, expectWindows)
	report := FailoverReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Iterations:    iters,
		Rows:          rows,
		WindowsPerRun: expectWindows,
	}
	var gaps []time.Duration
	for i := 0; i < iters; i++ {
		gap, got, err := failoverOnce(events, sp, expectWindows)
		if err != nil {
			return fmt.Errorf("iteration %d: %w", i+1, err)
		}
		for k, w := range want {
			switch g, ok := got[k]; {
			case !ok:
				report.WindowsLost++
			case g != w:
				return fmt.Errorf("iteration %d: window %s differs: got %s want %s", i+1, k, g, w)
			}
		}
		gaps = append(gaps, gap)
		report.Failovers++
		report.GapsMs = append(report.GapsMs, float64(gap)/1e6)
		fmt.Printf("  iter %2d: gap %8.2fms  (%d/%d windows recovered)\n",
			i+1, float64(gap)/1e6, len(got), len(want))
	}
	if report.WindowsLost > 0 {
		return fmt.Errorf("%d windows lost across the failovers", report.WindowsLost)
	}

	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	pct := func(q float64) float64 {
		idx := int(q*float64(len(gaps))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(gaps) {
			idx = len(gaps) - 1
		}
		return float64(gaps[idx]) / 1e6
	}
	var sum time.Duration
	for _, g := range gaps {
		sum += g
	}
	report.Gap = FailoverGap{
		P50Ms:  pct(0.50),
		P99Ms:  pct(0.99),
		MinMs:  float64(gaps[0]) / 1e6,
		MaxMs:  float64(gaps[len(gaps)-1]) / 1e6,
		MeanMs: float64(sum) / float64(len(gaps)) / 1e6,
	}
	fmt.Printf("\ngap-to-first-window-after-failover: p50 %.2fms  p99 %.2fms  min %.2fms  max %.2fms  mean %.2fms\n",
		report.Gap.P50Ms, report.Gap.P99Ms, report.Gap.MinMs, report.Gap.MaxMs, report.Gap.MeanMs)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
