package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"nexus"
	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/exec"
	"nexus/internal/expr"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Tracing-overhead smoke (-trace-overhead -> BENCH_9.json). The
// distributed-tracing layer must be free when nobody asked for a trace:
// this bench runs the BENCH_2 execution kernels three ways over the same
// data — raw runtime (no query plumbing at all), the public query path
// with tracing disabled (the production default), and the query path
// with tracing enabled (per-operator spans into the ring) — and reports
// the per-kernel and geomean overheads. The disabled/baseline geomean is
// the number CI holds to the <=3% budget; it bounds tracing overhead
// from above because it also includes the planner and partitioning work
// that predates tracing.

// TraceOverheadResult is one kernel measured in all three modes.
type TraceOverheadResult struct {
	Name             string  `json:"name"`
	Rows             int     `json:"rows"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op"`
	DisabledNsPerOp  float64 `json:"disabled_ns_per_op"`
	EnabledNsPerOp   float64 `json:"enabled_ns_per_op"`
	DisabledOverhead float64 `json:"disabled_overhead"` // disabled / baseline
	EnabledOverhead  float64 `json:"enabled_overhead"`  // enabled / disabled
}

// TraceOverheadReport is the BENCH_9.json shape.
type TraceOverheadReport struct {
	GeneratedAt             string                `json:"generated_at"`
	GoMaxProcs              int                   `json:"gomaxprocs"`
	DisabledOverheadGeomean float64               `json:"disabled_overhead_geomean"`
	EnabledOverheadGeomean  float64               `json:"enabled_overhead_geomean"`
	Kernels                 []TraceOverheadResult `json:"kernels"`
}

// pubTable converts an internal table into a public one row by row, so
// the session-path kernels run over byte-identical data to the raw
// runtime baseline.
func pubTable(t *table.Table) (*nexus.Table, error) {
	sch := t.Schema()
	defs := make([]nexus.ColumnDef, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		a := sch.At(i)
		defs[i] = nexus.ColumnDef{Name: a.Name, Type: a.Kind}
	}
	tb := nexus.NewTableBuilder(defs...)
	row := make([]any, sch.Len())
	for r := 0; r < t.NumRows(); r++ {
		for c := 0; c < sch.Len(); c++ {
			v := t.Value(r, c)
			switch {
			case v.IsNull():
				row[c] = nil
			case v.Kind() == value.KindBool:
				row[c] = v.Bool()
			case v.Kind() == value.KindInt64:
				row[c] = v.Int()
			case v.Kind() == value.KindFloat64:
				row[c] = v.Float()
			default:
				row[c] = v.Str()
			}
		}
		tb.Append(row...)
	}
	return tb.Build()
}

// measureInterleaved times a set of modes round-robin — one op of each
// per round — so machine-load drift during the run lands on every mode
// equally instead of biasing whichever ran last. Sequential per-mode
// timing showed 2x swings between identical runs on shared hardware;
// interleaving is what makes the overhead ratios comparable at all.
// Returns the minimum ns/op per mode: contention and GC only ever add
// time, so the per-mode best case is the stable estimate of true cost
// and the ratio of minimums the stable estimate of overhead.
func measureInterleaved(name string, modes []func() error) ([]float64, error) {
	for _, fn := range modes { // warm-up (and populate plan caches)
		if err := fn(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
	}
	const (
		minRounds = 9
		minTime   = 1200 * time.Millisecond
	)
	samples := make([][]float64, len(modes))
	var elapsed time.Duration
	for round := 0; round < minRounds || elapsed < minTime; round++ {
		for i, fn := range modes {
			t0 := time.Now()
			if err := fn(); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			d := time.Since(t0)
			samples[i] = append(samples[i], float64(d.Nanoseconds()))
			elapsed += d
		}
	}
	out := make([]float64, len(modes))
	for i, s := range samples {
		sort.Float64s(s)
		out[i] = s[0]
	}
	return out, nil
}

// runTraceOverhead measures the kernels and writes BENCH_9.json.
func runTraceOverhead(path string, quick bool) error {
	scale := 1
	if quick {
		scale = 10
	}

	// The same generators, seeds and sizes as -micro (BENCH_2), so the
	// baseline numbers are the BENCH_2 kernels.
	bigRows := 1_000_000 / scale
	smallRows := 100_000 / scale
	salesF := datagen.Sales(41, bigRows, bigRows/10, 50)
	salesE := datagen.Sales(42, bigRows, bigRows/10, 50)
	salesJ := datagen.Sales(43, smallRows, smallRows/10, 50)
	custJ := datagen.Customers(44, smallRows/10)
	salesA := datagen.Sales(45, smallRows, 1000, 100)

	s := nexus.NewSession()
	// The baselines are hand-built plans with no rewrites; run the query
	// path on the same naive plans, otherwise pushdown and column pruning
	// make the "overhead" negative and hide the cost being measured.
	s.DisableOptimizations()
	prov, err := s.AddEngine(nexus.Relational, "bench")
	if err != nil {
		return err
	}
	for _, ds := range []struct {
		name string
		t    *table.Table
	}{
		{"sales_f", salesF}, {"sales_e", salesE}, {"sales_j", salesJ},
		{"customers_j", custJ}, {"sales_a", salesA},
	} {
		pt, err := pubTable(ds.t)
		if err != nil {
			return err
		}
		if err := s.Store(prov, ds.name, pt); err != nil {
			return err
		}
	}

	type kernel struct {
		name     string
		rows     int
		data     *table.Table // baseline scan target
		extra    *table.Table // second baseline input (join build side)
		baseline func() (core.Node, error)
		query    *nexus.Query
	}
	kernels := []kernel{
		{
			name: "filter_vectorized", rows: bigRows, data: salesF,
			baseline: func() (core.Node, error) {
				sc, _ := core.NewScan("sales_f", salesF.Schema())
				return core.NewFilter(sc, expr.And(
					expr.Gt(expr.Column("qty"), expr.CInt(3)),
					expr.Lt(expr.Column("price"), expr.CFloat(40)),
				))
			},
			query: s.Scan("sales_f").Where(nexus.And(
				nexus.Gt(nexus.Col("qty"), nexus.Int(3)),
				nexus.Lt(nexus.Col("price"), nexus.Float(40)),
			)),
		},
		{
			name: "extend_parallel", rows: bigRows, data: salesE,
			baseline: func() (core.Node, error) {
				sc, _ := core.NewScan("sales_e", salesE.Schema())
				return core.NewExtend(sc, []core.ColDef{
					{Name: "notional", E: expr.Mul(expr.Column("price"), expr.Column("qty"))},
					{Name: "rebate", E: expr.Mul(expr.Sub(expr.Column("price"), expr.CFloat(1)), expr.CFloat(0.05))},
				})
			},
			query: s.Scan("sales_e").
				Extend("notional", nexus.Mul(nexus.Col("price"), nexus.Col("qty"))).
				Extend("rebate", nexus.Mul(nexus.Sub(nexus.Col("price"), nexus.Float(1)), nexus.Float(0.05))),
		},
		{
			name: "hash_join", rows: smallRows, data: salesJ, extra: custJ,
			baseline: func() (core.Node, error) {
				sc, _ := core.NewScan("sales_j", salesJ.Schema())
				cc, _ := core.NewScan("customers_j", custJ.Schema())
				return core.NewJoin(sc, cc, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
			},
			query: s.Scan("sales_j").Join(s.Scan("customers_j"), nexus.Inner,
				nexus.JoinKey{Left: "cust_id", Right: "cust_id"}),
		},
		{
			name: "hash_aggregate", rows: smallRows, data: salesA,
			baseline: func() (core.Node, error) {
				sc, _ := core.NewScan("sales_a", salesA.Schema())
				return core.NewGroupAgg(sc, []string{"cust_id"}, []core.AggSpec{
					{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
					{Func: core.AggCount, As: "n"},
				})
			},
			query: s.Scan("sales_a").GroupBy("cust_id").Agg(
				nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("qty"))),
				nexus.Count("n"),
			),
		},
	}

	var results []TraceOverheadResult
	for _, k := range kernels {
		plan, err := k.baseline()
		if err != nil {
			return err
		}
		rt := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
			if k.extra != nil && n != "sales_j" {
				return k.extra, true
			}
			return k.data, true
		}}
		traced := k.query.Trace()
		modes := []func() error{
			func() error { _, err := rt.Run(plan); return err },
			func() error { _, err := k.query.Collect(); return err },
			func() error { _, err := traced.Collect(); return err },
		}
		ns, err := measureInterleaved(k.name, modes)
		if err != nil {
			return err
		}
		r := TraceOverheadResult{
			Name:             k.name,
			Rows:             k.rows,
			BaselineNsPerOp:  ns[0],
			DisabledNsPerOp:  ns[1],
			EnabledNsPerOp:   ns[2],
			DisabledOverhead: ns[1] / ns[0],
			EnabledOverhead:  ns[2] / ns[1],
		}
		results = append(results, r)
		fmt.Printf("%-20s %10.0f ns/op raw %10.0f ns/op untraced (%.3fx) %10.0f ns/op traced (%.3fx)\n",
			r.Name, r.BaselineNsPerOp, r.DisabledNsPerOp, r.DisabledOverhead, r.EnabledNsPerOp, r.EnabledOverhead)
	}

	geomean := func(pick func(TraceOverheadResult) float64) float64 {
		sum := 0.0
		for _, r := range results {
			sum += math.Log(pick(r))
		}
		return math.Exp(sum / float64(len(results)))
	}
	report := TraceOverheadReport{
		GeneratedAt:             time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:              runtime.GOMAXPROCS(0),
		DisabledOverheadGeomean: geomean(func(r TraceOverheadResult) float64 { return r.DisabledOverhead }),
		EnabledOverheadGeomean:  geomean(func(r TraceOverheadResult) float64 { return r.EnabledOverhead }),
		Kernels:                 results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("geomean overhead: untraced %.3fx, traced %.3fx\nwrote %s\n",
		report.DisabledOverheadGeomean, report.EnabledOverheadGeomean, path)
	return nil
}
