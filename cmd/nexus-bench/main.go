// nexus-bench runs the experiment suite derived from the paper's goals
// and desiderata (see DESIGN.md §3 and EXPERIMENTS.md) and prints each
// experiment's table.
//
// Usage:
//
//	nexus-bench                  # run everything at default sizes
//	nexus-bench -run E3,E4       # selected experiments
//	nexus-bench -quick           # smaller sizes (CI-friendly)
//	nexus-bench -tcp             # E4 over real TCP loopback servers
//	nexus-bench -micro           # kernel micro-benchmarks -> BENCH_2.json
//	nexus-bench -storage         # cold/warm/projected/pruned/encoded scans -> BENCH_10.json
//	nexus-bench -load            # concurrent mixed-workload tail-latency run -> BENCH_6.json
//	nexus-bench -failover        # SIGKILL-the-primary failover gap benchmark -> BENCH_7.json
//	nexus-bench -load-mux        # multiplexed front door: conns vs subs vs tail latency -> BENCH_8.json
//	nexus-bench -trace-overhead  # tracing-disabled/enabled overhead on the BENCH_2 kernels -> BENCH_9.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nexus/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (E1..E8) or 'all'")
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	tcp := flag.Bool("tcp", false, "run E4 over TCP loopback servers instead of in-process transports")
	micro := flag.Bool("micro", false, "run the execution-kernel micro-benchmarks and emit machine-readable results")
	storageBench := flag.Bool("storage", false, "run the durable-storage scan benchmarks (cold disk vs warm RAM vs zone-map pruned)")
	loadBench := flag.Bool("load", false, "run the concurrent mixed-workload tail-latency generator against a live durable server")
	loadMux := flag.Bool("load-mux", false, "run the multiplexed front-door benchmark (conns vs subscriptions vs tail latency)")
	traceOverhead := flag.Bool("trace-overhead", false, "run the distributed-tracing overhead smoke over the BENCH_2 kernels (raw vs untraced vs traced)")
	loadClients := flag.Int("load-clients", 12, "concurrent clients for -load")
	loadDur := flag.Duration("load-duration", 5*time.Second, "wall-clock duration for -load")
	failoverBench := flag.Bool("failover", false, "run the primary-SIGKILL failover benchmark (gap to first window served by the replica)")
	failoverIters := flag.Int("failover-iters", 10, "kill-and-recover iterations for -failover")
	failoverRows := flag.Int("failover-rows", 10000, "event rows per -failover iteration")
	failoverPrimary := flag.String("failover-primary", "", "internal: run as the -failover benchmark's killable primary on this data dir")
	benchOut := flag.String("bench-out", "", "output path for -micro (default BENCH_2.json) / -storage (default BENCH_10.json) / -load (default BENCH_6.json) results")
	baseline := flag.String("baseline", "", "previous -micro report to compute speedups against")
	flag.Parse()

	if *failoverPrimary != "" {
		if err := runFailoverPrimary(*failoverPrimary); err != nil {
			fmt.Fprintf(os.Stderr, "failover primary FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *failoverBench {
		out := *benchOut
		if out == "" {
			out = "BENCH_7.json"
		}
		iters, rows := *failoverIters, *failoverRows
		if *quick {
			if iters > 5 {
				iters = 5
			}
			if rows > 5000 {
				rows = 5000
			}
		}
		if err := runFailoverBench(out, iters, rows); err != nil {
			fmt.Fprintf(os.Stderr, "failover benchmark FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *micro {
		out := *benchOut
		if out == "" {
			out = "BENCH_2.json"
		}
		if err := runMicro(out, *baseline, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "micro benchmarks FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storageBench {
		out := *benchOut
		if out == "" {
			out = "BENCH_10.json"
		}
		if err := runStorageBench(out, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "storage benchmarks FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *traceOverhead {
		out := *benchOut
		if out == "" {
			out = "BENCH_9.json"
		}
		if err := runTraceOverhead(out, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "trace-overhead benchmark FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *loadMux {
		out := *benchOut
		if out == "" {
			out = "BENCH_8.json"
		}
		if err := runLoadMux(out, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "load-mux benchmark FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *loadBench {
		out := *benchOut
		if out == "" {
			out = "BENCH_6.json"
		}
		dur := *loadDur
		if *quick && dur > 2*time.Second {
			dur = 2 * time.Second
		}
		if err := runLoad(out, *loadClients, dur); err != nil {
			fmt.Fprintf(os.Stderr, "load benchmark FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *run == "all" {
		for i := 1; i <= 8; i++ {
			want[fmt.Sprintf("E%d", i)] = true
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	type exp struct {
		id  string
		run func() (*experiments.Result, error)
	}
	all := []exp{
		{"E1", experiments.E1Coverage},
		{"E2", experiments.E2Translatability},
		{"E3", func() (*experiments.Result, error) {
			sizes := []int{32, 64, 96, 128, 192, 256}
			if *quick {
				sizes = []int{32, 64}
			}
			return experiments.E3Intent(sizes)
		}},
		{"E4", func() (*experiments.Result, error) {
			rows := []int{10000, 50000, 200000}
			if *quick {
				rows = []int{5000, 20000}
			}
			return experiments.E4Interop(rows, *tcp)
		}},
		{"E5", func() (*experiments.Result, error) {
			if *quick {
				return experiments.E5Iteration(1000, 5000, 8)
			}
			return experiments.E5Iteration(5000, 25000, 10)
		}},
		{"E6", experiments.E6Portability},
		{"E7", func() (*experiments.Result, error) {
			depths := []int{1, 2, 4, 8, 16}
			if *quick {
				depths = []int{1, 4, 8}
			}
			return experiments.E7Shipping(depths)
		}},
		{"E8", func() (*experiments.Result, error) {
			rows := 100000
			if *quick {
				rows = 20000
			}
			return experiments.E8Ablation(rows)
		}},
	}

	failed := false
	for _, e := range all {
		if !want[e.id] {
			continue
		}
		t0 := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(res)
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(t0).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
