package nexus_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"nexus"
)

// newSalesSession builds a single-engine session with a small sales table.
func newSalesSession(t *testing.T) *nexus.Session {
	t.Helper()
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		t.Fatal(err)
	}
	tab, err := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "id", Type: nexus.Int64},
		nexus.ColumnDef{Name: "region", Type: nexus.String},
		nexus.ColumnDef{Name: "qty", Type: nexus.Int64},
		nexus.ColumnDef{Name: "price", Type: nexus.Float64},
	).
		Append(int64(1), "EU", int64(2), 10.0).
		Append(int64(2), "EU", int64(5), 20.0).
		Append(int64(3), "NA", int64(7), 30.0).
		Append(int64(4), "NA", int64(1), 40.0).
		Append(int64(5), "APAC", int64(9), 50.0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store("db", "sales", tab); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFluentFilterAggregate(t *testing.T) {
	s := newSalesSession(t)
	res, err := s.Scan("sales").
		Where(nexus.Gt(nexus.Col("qty"), nexus.Int(1))).
		GroupBy("region").
		Agg(nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("qty"))), nexus.Count("n")).
		OrderBy(nexus.Desc("rev")).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("got %d regions:\n%s", res.NumRows(), res)
	}
	revs, err := res.Floats("rev")
	if err != nil {
		t.Fatal(err)
	}
	if revs[0] != 450 { // APAC: 9*50
		t.Fatalf("top region rev = %g", revs[0])
	}
}

func TestErrorCarryingChain(t *testing.T) {
	s := newSalesSession(t)
	_, err := s.Scan("sales").
		Where(nexus.Gt(nexus.Col("no_such"), nexus.Int(1))).
		Select("id").
		Limit(3).
		Collect()
	if err == nil {
		t.Fatal("expected error for unknown column")
	}
	if !strings.Contains(err.Error(), "no_such") {
		t.Fatalf("error %q does not name the column", err)
	}
	// Unknown dataset.
	if _, err := s.Scan("nope").Collect(); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestSurfaceLanguageThroughSession(t *testing.T) {
	s := newSalesSession(t)
	res, err := s.Query(`
		load sales
		| where region != "EU"
		| extend rev = price * qty
		| agg total = sum(rev), n = count()
	`).Collect()
	if err != nil {
		t.Fatal(err)
	}
	total, err := res.Floats("total")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total[0]-(7*30+1*40+9*50)) > 1e-9 {
		t.Fatalf("total = %g", total[0])
	}
}

func TestValueAccessors(t *testing.T) {
	s := newSalesSession(t)
	res, err := s.Scan("sales").OrderBy(nexus.Asc("id")).Limit(1).Collect()
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Value(0, "region")
	if err != nil {
		t.Fatal(err)
	}
	if v.(string) != "EU" {
		t.Fatalf("region = %v", v)
	}
	if _, err := res.Value(0, "nope"); err == nil {
		t.Fatal("expected error for bad column")
	}
	if _, err := res.Value(5, "region"); err == nil {
		t.Fatal("expected error for bad row")
	}
	if _, err := res.Floats("region"); err == nil {
		t.Fatal("expected kind mismatch error")
	}
	if names := res.ColumnNames(); len(names) != res.NumCols() {
		t.Fatal("column names mismatch")
	}
}

func TestIterateFluent(t *testing.T) {
	s := newSalesSession(t)
	init := s.Scan("sales").Select("id").Extend("x", nexus.Float(0)).Select("id", "x")
	res, err := s.Iterate("st", init, func(loop *nexus.Query) *nexus.Query {
		return loop.
			Extend("x2", nexus.Div(nexus.Add(nexus.Col("x"), nexus.Float(8)), nexus.Float(2))).
			Select("id", "x2").
			Rename("x2", "x")
	}, 100, &nexus.Convergence{Metric: nexus.LInf, Col: "x", Tol: 1e-9}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	xs, err := res.Floats("x")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if math.Abs(x-8) > 1e-6 {
			t.Fatalf("did not converge to 8: %g", x)
		}
	}
}

func TestLetFluent(t *testing.T) {
	s := newSalesSession(t)
	big := s.Scan("sales").Where(nexus.Gt(nexus.Col("qty"), nexus.Int(4)))
	res, err := s.Let("b", big, func(ref *nexus.Query) *nexus.Query {
		return ref.Union(ref, true)
	}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 { // 3 rows with qty>4, doubled
		t.Fatalf("let union: %d rows", res.NumRows())
	}
}

func TestMultiEngineSessionFederates(t *testing.T) {
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEngine(nexus.LinAlg, "la"); err != nil {
		t.Fatal(err)
	}
	// Matrices on the linalg engine.
	a, err := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "i", Type: nexus.Int64, Dim: true},
		nexus.ColumnDef{Name: "k", Type: nexus.Int64, Dim: true},
		nexus.ColumnDef{Name: "v", Type: nexus.Float64},
	).
		Append(int64(0), int64(0), 1.0).Append(int64(0), int64(1), 2.0).
		Append(int64(1), int64(0), 3.0).Append(int64(1), int64(1), 4.0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "k", Type: nexus.Int64, Dim: true},
		nexus.ColumnDef{Name: "j", Type: nexus.Int64, Dim: true},
		nexus.ColumnDef{Name: "v", Type: nexus.Float64},
	).
		Append(int64(0), int64(0), 5.0).Append(int64(0), int64(1), 6.0).
		Append(int64(1), int64(0), 7.0).Append(int64(1), int64(1), 8.0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store("la", "A", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Store("la", "B", b); err != nil {
		t.Fatal(err)
	}
	res, m, err := s.Scan("A").MatMul(s.Scan("B"), "c").CollectWithMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Fatalf("matmul cells: %d", res.NumRows())
	}
	// [[1,2],[3,4]]·[[5,6],[7,8]] = [[19,22],[43,50]]
	want := map[[2]int64]float64{{0, 0}: 19, {0, 1}: 22, {1, 0}: 43, {1, 1}: 50}
	is, _ := res.Ints("i")
	js, _ := res.Ints("j")
	cs, _ := res.Floats("c")
	for r := range is {
		if math.Abs(cs[r]-want[[2]int64{is[r], js[r]}]) > 1e-12 {
			t.Fatalf("cell (%d,%d) = %g", is[r], js[r], cs[r])
		}
	}
	if m.Fragments == 0 {
		t.Fatal("metrics missing")
	}
}

func TestMatMulIntentEndToEnd(t *testing.T) {
	// The relational spelling of matmul must produce the same result as
	// the first-class node, through the whole public stack.
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEngine(nexus.LinAlg, "la"); err != nil {
		t.Fatal(err)
	}
	mk := func(iName, kName string, vals [4]float64) *nexus.Table {
		tab, err := nexus.NewTableBuilder(
			nexus.ColumnDef{Name: iName, Type: nexus.Int64},
			nexus.ColumnDef{Name: kName, Type: nexus.Int64},
			nexus.ColumnDef{Name: "v", Type: nexus.Float64},
		).
			Append(int64(0), int64(0), vals[0]).Append(int64(0), int64(1), vals[1]).
			Append(int64(1), int64(0), vals[2]).Append(int64(1), int64(1), vals[3]).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	if err := s.Store("db", "ra", mk("i", "k", [4]float64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := s.Store("db", "rb", mk("k", "j", [4]float64{5, 6, 7, 8})); err != nil {
		t.Fatal(err)
	}
	q := s.Scan("ra").
		Join(s.Scan("rb"), nexus.Inner, nexus.On("k", "k")).
		GroupBy("i", "j").
		Agg(nexus.Sum("c", nexus.Mul(nexus.Col("v"), nexus.Col("v_r"))))
	res, err := q.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int64]float64{{0, 0}: 19, {0, 1}: 22, {1, 0}: 43, {1, 1}: 50}
	is, _ := res.Ints("i")
	js, _ := res.Ints("j")
	cs, _ := res.Floats("c")
	for r := range is {
		if math.Abs(cs[r]-want[[2]int64{is[r], js[r]}]) > 1e-12 {
			t.Fatalf("cell (%d,%d) = %g", is[r], js[r], cs[r])
		}
	}
	// With intent recognition the plan must contain a MatMul and land on
	// the linalg provider.
	explain, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "matmul") {
		t.Fatalf("intent not visible in explain:\n%s", explain)
	}
	if !strings.Contains(explain, "on la") {
		t.Fatalf("matmul not routed to linalg:\n%s", explain)
	}
}

func TestPortabilityChecksumAcrossEngines(t *testing.T) {
	// The same logical query on relational and array engines must produce
	// identical result multisets (checksums).
	build := func(kind nexus.EngineKind) uint64 {
		s := nexus.NewSession()
		if _, err := s.AddEngine(kind, "e"); err != nil {
			t.Fatal(err)
		}
		tab, err := nexus.NewTableBuilder(
			nexus.ColumnDef{Name: "t", Type: nexus.Int64, Dim: true},
			nexus.ColumnDef{Name: "temp", Type: nexus.Float64},
		).
			Append(int64(0), 10.0).Append(int64(1), 12.0).Append(int64(2), 11.0).
			Append(int64(3), 14.0).Append(int64(4), 13.0).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Store("e", "series", tab); err != nil {
			t.Fatal(err)
		}
		res, err := s.Scan("series").
			Dice(nexus.DimBound{Dim: "t", Lo: 1, Hi: 4}).
			ReduceDims([]string{"t"}, nexus.Sum("s", nexus.Col("temp"))).
			Collect()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		return res.Checksum()
	}
	if build(nexus.Relational) != build(nexus.Array) {
		t.Fatal("checksums differ across engines")
	}
}

func TestDemoAndShipModes(t *testing.T) {
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEngine(nexus.Array, "arr"); err != nil {
		t.Fatal(err)
	}
	if err := s.Demo(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.DatasetSchema("sales"); !ok {
		t.Fatal("demo data missing")
	}
	// Cross-engine query under both ship modes must agree.
	q := func() *nexus.Query {
		return s.Scan("grid").
			Window([]nexus.DimExtent{{Dim: "x", Before: 1, After: 1}}, nexus.AggAvg, "v", "m").
			ReduceDims([]string{"x", "y"}, nexus.Sum("total", nexus.Col("m")))
	}
	s.SetShipMode(nexus.Direct)
	r1, m1, err := q().CollectWithMetrics()
	if err != nil {
		t.Fatal(err)
	}
	s.SetShipMode(nexus.Routed)
	r2, _, err := q().CollectWithMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum() != r2.Checksum() {
		t.Fatal("ship modes disagree")
	}
	_ = m1
}

func TestTableBuilderErrors(t *testing.T) {
	_, err := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "x", Type: nexus.Int64},
	).Append("not an int").Build()
	if err == nil {
		t.Fatal("expected kind mismatch error")
	}
	_, err = nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "d", Type: nexus.Float64, Dim: true},
	).Build()
	if err == nil {
		t.Fatal("expected dim-kind error")
	}
	tb := nexus.NewTableBuilder(nexus.ColumnDef{Name: "x", Type: nexus.Int64})
	if _, err := tb.Append(struct{}{}).Build(); err == nil {
		t.Fatal("expected unsupported type error")
	}
}

func TestFromIntsAndNulls(t *testing.T) {
	tab := nexus.FromInts("x", []int64{1, 2, 3})
	if tab.NumRows() != 3 {
		t.Fatal("FromInts broken")
	}
	withNull, err := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "x", Type: nexus.Int64},
	).Append(int64(1)).Append(nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := withNull.Value(1, "x")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("expected nil for NULL, got %v", v)
	}
}

// --- data in motion --------------------------------------------------------

// timedSales builds a sales table with an event-time column and stores it
// on a fresh single-engine session.
func timedSales(t *testing.T) (*nexus.Session, *nexus.Table) {
	t.Helper()
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		t.Fatal(err)
	}
	b := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
		nexus.ColumnDef{Name: "region", Type: nexus.String},
		nexus.ColumnDef{Name: "qty", Type: nexus.Int64},
		nexus.ColumnDef{Name: "price", Type: nexus.Float64},
	)
	regions := []string{"EU", "NA", "APAC"}
	for i := 0; i < 300; i++ {
		// Timestamps land out of order within each pair of windows.
		ts := int64((i/3)*7%500) + int64(i%3)
		b = b.Append(ts, regions[i%3], int64(i%9), float64(i%13)+0.5)
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store("db", "timed_sales", tab); err != nil {
		t.Fatal(err)
	}
	return s, tab
}

// TestStreamMatchesBatchTotals is the acceptance check for data in
// motion: a per-region revenue aggregation over tumbling event-time
// windows, run as a stream, must produce exactly the totals of the
// equivalent batch query over the table it replays.
func TestStreamMatchesBatchTotals(t *testing.T) {
	s, tab := timedSales(t)
	const size = 100

	streamed, stats, err := s.StreamFrom(nexus.ReplayTable(tab, "ts")).
		BatchSize(32). // force many micro-batches
		AllowedLateness(500).
		Window(nexus.Tumbling(size)).
		GroupBy("region").
		Agg(nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("qty"))), nexus.Count("n")).
		CollectWithStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Late != 0 {
		t.Fatalf("unexpected late drops: %+v", stats)
	}

	batch, err := s.Scan("timed_sales").
		Extend("window_start", nexus.Mul(nexus.Div(nexus.Col("ts"), nexus.Int(size)), nexus.Int(size))).
		GroupBy("window_start", "region").
		Agg(nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("qty"))), nexus.Count("n")).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if streamed.NumRows() != batch.NumRows() {
		t.Fatalf("stream has %d groups, batch has %d\nstream:\n%s\nbatch:\n%s",
			streamed.NumRows(), batch.NumRows(), streamed, batch)
	}

	key := func(ws int64, region string) string { return fmt.Sprintf("%d|%s", ws, region) }
	want := map[string][2]float64{}
	{
		wss, _ := batch.Ints("window_start")
		regions, _ := batch.Strings("region")
		revs, _ := batch.Floats("rev")
		ns, _ := batch.Ints("n")
		for i := range wss {
			want[key(wss[i], regions[i])] = [2]float64{revs[i], float64(ns[i])}
		}
	}
	wss, _ := streamed.Ints(nexus.WindowStartCol)
	regions, _ := streamed.Strings("region")
	revs, _ := streamed.Floats("rev")
	ns, _ := streamed.Ints("n")
	for i := range wss {
		w, ok := want[key(wss[i], regions[i])]
		if !ok {
			t.Fatalf("stream group (%d, %s) missing from batch result", wss[i], regions[i])
		}
		if math.Abs(w[0]-revs[i]) > 1e-9 || w[1] != float64(ns[i]) {
			t.Fatalf("group (%d, %s): stream rev=%g n=%d, batch rev=%g n=%g",
				wss[i], regions[i], revs[i], ns[i], w[0], w[1])
		}
	}
}

// TestStreamLiveChannel drives a StreamQuery from a concurrent producer
// through filter, enrichment join and windowed aggregation (run under
// -race in CI).
func TestStreamLiveChannel(t *testing.T) {
	s := nexus.NewSession()
	dim, err := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "sym", Type: nexus.String},
		nexus.ColumnDef{Name: "sector", Type: nexus.String},
	).
		Append("AAA", "tech").
		Append("BBB", "energy").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := nexus.NewChannelStream("ts", 8,
		nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
		nexus.ColumnDef{Name: "sym", Type: nexus.String},
		nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
	)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer ch.Close()
		for i := 0; i < 200; i++ {
			if err := ch.Send(int64(i), []string{"AAA", "BBB", "ZZZ"}[i%3], int64(i%5)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	res, stats, err := s.StreamFrom(ch.Source()).
		Where(nexus.Gt(nexus.Col("vol"), nexus.Int(0))).
		JoinTable(dim, nexus.Inner, nexus.On("sym", "sym")).
		Window(nexus.Tumbling(50)).
		GroupBy("sector").
		Agg(nexus.Sum("volume", nexus.Col("vol")), nexus.Count("trades")).
		CollectWithStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 200 {
		t.Fatalf("events = %d, want 200", stats.Events)
	}
	// 4 windows x 2 sectors (ZZZ rows have no dimension entry).
	if res.NumRows() != 8 {
		t.Fatalf("rows = %d, want 8:\n%s", res.NumRows(), res)
	}
	vols, _ := res.Ints("volume")
	var total int64
	for _, v := range vols {
		total += v
	}
	// Σ vol over kept rows: i%5 for i in [0,200) where vol>0 and sym != "ZZZ".
	var want int64
	for i := 0; i < 200; i++ {
		if v := int64(i % 5); v > 0 && i%3 != 2 {
			want += v
		}
	}
	if total != want {
		t.Fatalf("total volume = %d, want %d", total, want)
	}
}

// TestStreamScanAndSubscribe replays a stored dataset as a stream and
// consumes per-window results through the subscription sink.
func TestStreamScanAndSubscribe(t *testing.T) {
	s, _ := timedSales(t)
	var windows int
	stats, err := s.StreamScan("timed_sales", "ts").
		AllowedLateness(500).
		Window(nexus.Tumbling(100)).
		GroupBy("region").
		Agg(nexus.Count("n")).
		Subscribe(context.Background(), func(w *nexus.Table) error {
			windows++
			if w.NumRows() == 0 {
				t.Error("empty window emitted")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if windows == 0 || stats.Windows != int64(windows) {
		t.Fatalf("windows = %d, stats = %+v", windows, stats)
	}
	// Unknown dataset surfaces as a construction error.
	if _, err := s.StreamScan("nope", "ts").Collect(context.Background()); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}
