package nexus

import (
	"context"
	"fmt"
	"sync"

	"nexus/internal/federation"
	"nexus/internal/obs/trace"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// Federated data in motion: the same streaming query that runs in
// process ships its compiled plan to remote providers, which host the
// long-running pipeline and push watermarked window results back under
// credit-based flow control. PartitionBy splits the stream across N
// providers by key hash; the coordinator merges their results in
// watermark order. A subscription can detach with per-partition resume
// tokens and pick up later — on the same providers or others — and a
// Durable subscription additionally checkpoints its state on the
// server, so even a SIGKILLed server resumes it where it left off.

// PartitionBy names the key column used to split the stream across
// providers when a federated subscription names more than one. Rows
// route by hash of the key (int64 keys hash their raw bits — the same
// fast path the join and group kernels prefer).
func (q *StreamQuery) PartitionBy(key string) *StreamQuery {
	nq := q.derive(q.b)
	nq.partKey = key
	return nq
}

// Durable names a server-side checkpoint for the subscription. A
// provider hosting the stream from a durable data directory
// (nexus-server -data-dir) persists the pipeline's state under this
// name on a timer and on disconnect; re-subscribing with the same name
// — even against a restarted server — resumes from the last
// checkpoint instead of replaying from scratch. Multi-partition
// subscriptions checkpoint per partition under derived names.
func (q *StreamQuery) Durable(name string) *StreamQuery {
	nq := q.derive(q.b)
	nq.durable = name
	return nq
}

// ResumeToken is one partition's resume position, surfaced by
// RemoteStream.Detach: the pipeline's portable window state plus the
// count of source rows it consumed. Pass the full token set to
// ResumeFrom to continue the stream — with the same providers or new
// ones (state migrates over the wire).
type ResumeToken struct {
	// Provider hosted the partition when the token was taken.
	Provider string
	// Partition is the token's index in the original provider list.
	Partition int

	state *stream.State
}

// Offset returns how many source rows the partition's pipeline had
// consumed: the per-partition resume offset. Dataset replays skip this
// many rows server-side on resume; push-mode sources skip them
// publisher-side.
func (t ResumeToken) Offset() int64 {
	if t.state == nil {
		return 0
	}
	return t.state.Events
}

// ResumeFrom continues a detached stream: token i resumes partition i.
// The token count must match the provider count of the subscribe call.
// Push-mode sources must replay deterministically from the beginning
// (ReplayTable, GenerateSource, StreamScan): the publisher re-routes
// rows and skips each partition's already-consumed prefix.
func (q *StreamQuery) ResumeFrom(tokens []ResumeToken) *StreamQuery {
	nq := q.derive(q.b)
	nq.resume = append([]ResumeToken(nil), tokens...)
	return nq
}

// remotePublishBatch caps rows per published event batch.
const remotePublishBatch = 256

// RemoteStream is a running federated subscription that can end two
// ways: Wait blocks to natural end-of-stream; Detach stops the remote
// pipelines and returns one resume token per partition.
type RemoteStream struct {
	detachOnce sync.Once
	detachCh   chan struct{}
	done       chan struct{}
	// doDetach runs the per-partition detach handshakes; Detach spawns
	// it directly (not via the context watcher, which may already have
	// exited on cancellation), so Detach can never deadlock.
	doDetach func()

	sp *trace.Span // stream span; nil untraced

	mu     sync.Mutex
	stats  *StreamStats
	tokens []ResumeToken
	err    error
}

// TraceID returns the stream's trace id as lowercase hex ("" when the
// query was not marked with Trace).
func (r *RemoteStream) TraceID() string {
	if r.sp == nil {
		return ""
	}
	return r.sp.TraceID().String()
}

// terminalErr returns the stream's terminal error so far.
func (r *RemoteStream) terminalErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Wait blocks until the stream completes and returns its summed stats.
func (r *RemoteStream) Wait() (*StreamStats, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats, r.err
}

// Detach stops every partition's pipeline, delivers any results that
// were already in flight to the subscriber callback, and returns the
// per-partition resume tokens. Detaching an already-finished stream
// returns its terminal error and no tokens.
func (r *RemoteStream) Detach() ([]ResumeToken, error) {
	r.detachOnce.Do(func() {
		close(r.detachCh)
		go r.doDetach()
	})
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tokens == nil && r.err == nil {
		return nil, fmt.Errorf("nexus: stream already completed before detach")
	}
	return r.tokens, r.err
}

// SubscribeRemote runs the stream query on the named providers and
// delivers every result table to fn, blocking to completion. With one
// provider the whole pipeline runs there; with several, PartitionBy is
// required and each provider runs the pipeline over its key partition,
// with windowed results merged in watermark order (stateless results
// arrive in arrival order). Queries built with StreamScan replay their
// dataset on the serving provider; every other source streams from
// this process to the providers over the wire.
func (q *StreamQuery) SubscribeRemote(ctx context.Context, providers []string, fn func(*Table) error) (*StreamStats, error) {
	rs, err := q.SubscribeRemoteDetachable(ctx, providers, fn)
	if err != nil {
		return nil, err
	}
	return rs.Wait()
}

// SubscribeRemoteDetachable is SubscribeRemote running in the
// background: it returns as soon as every subscription is established.
// Use Wait for completion or Detach for per-partition resume tokens.
func (q *StreamQuery) SubscribeRemoteDetachable(ctx context.Context, providers []string, fn func(*Table) error) (*RemoteStream, error) {
	if err := q.b.Err(); err != nil {
		return nil, err
	}
	sp, err := q.b.Spec()
	if err != nil {
		return nil, err
	}
	n := len(providers)
	if n == 0 {
		return nil, fmt.Errorf("nexus: SubscribeRemote needs at least one provider")
	}
	if n > 1 && q.partKey == "" {
		return nil, fmt.Errorf("nexus: a subscription across %d providers needs PartitionBy", n)
	}
	if n > 1 && sp.Windowed {
		// A group must never span partitions: each provider holds only its
		// share of the rows, so a group split across two providers would
		// come back as two rows of partial aggregates. Requiring the
		// partition key among the group keys makes groups partition-local.
		ok := false
		for _, k := range sp.Keys {
			if k == q.partKey {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("nexus: partition key %q must be one of the GroupBy keys %v — otherwise groups span partitions and aggregates come back partial", q.partKey, sp.Keys)
		}
	}
	if q.resume != nil && len(q.resume) != n {
		return nil, fmt.Errorf("nexus: %d resume tokens for %d providers", len(q.resume), n)
	}
	src := q.b.Source()
	keyIdx := -1
	if q.partKey != "" {
		keyIdx = src.Schema().IndexOf(q.partKey)
		if keyIdx < 0 {
			return nil, fmt.Errorf("nexus: no partition key column %q in %v", q.partKey, src.Schema())
		}
	}

	// A traced stream gets a span covering its whole life; each
	// partition's subscribe carries its context so every server's
	// subscription spans parent here.
	var tsp *trace.Span
	if q.traced {
		if q.s.root != nil {
			tsp = q.s.root.Child("stream")
		} else {
			tsp = trace.Default.NewRoot("stream")
		}
		tsp.Set(trace.Int("partitions", int64(n)))
	}

	// Open one subscription per provider.
	subs := make([]*federation.Subscription, 0, n)
	closeAll := func() {
		for _, s := range subs {
			s.Close()
		}
	}
	skips := make([]int64, n) // publisher-side resume offsets (push mode)
	for i, name := range providers {
		tr, err := q.s.streamTransport(name)
		if err != nil {
			closeAll()
			return nil, err
		}
		sub := wire.StreamSub{Spec: sp, PartIdx: uint32(i), PartCnt: uint32(n), Trace: toWireTrace(tsp.Context())}
		if n > 1 {
			sub.PartKey = q.partKey
		}
		if q.durable != "" {
			sub.Durable = q.durable
			if n > 1 {
				sub.Durable = fmt.Sprintf("%s/p%d", q.durable, i)
			}
		}
		if q.resume != nil {
			sub.Resume = q.resume[i].state
			skips[i] = q.resume[i].Offset()
		}
		if q.dataset != "" {
			sub.SourceKind = wire.StreamSrcDataset
			sub.Dataset = q.dataset
			sub.TimeCol = q.timeCol
		} else {
			sub.SourceKind = wire.StreamSrcPush
			sub.TimeCol = src.TimeCol()
			sub.SrcSchema = src.Schema()
		}
		s, err := tr.Subscribe(sub)
		if err != nil {
			closeAll()
			return nil, err
		}
		subs = append(subs, s)
	}

	rs := &RemoteStream{detachCh: make(chan struct{}), done: make(chan struct{}), sp: tsp}

	// Push-mode queries need a publisher moving local events upstream.
	var wg sync.WaitGroup
	var pubErr error
	if q.dataset == "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pubErr = publishRows(ctx, src, subs, keyIdx, skips)
		}()
	}

	// Detach executor: stops each partition's pipeline and collects its
	// state. Detach spawns it directly, so it runs even if the context
	// watcher below has already exited on a cancellation — the merge
	// loop sees the partitions end either way.
	type detachRes struct {
		state   *stream.State
		pending []federation.SubBatch
		err     error
	}
	detachResults := make([]detachRes, n)
	detachDone := make(chan struct{}) // closed once every handshake finished
	rs.doDetach = func() {
		var dwg sync.WaitGroup
		for i, s := range subs {
			dwg.Add(1)
			go func(i int, s *federation.Subscription) {
				defer dwg.Done()
				st, pending, err := s.Detach()
				detachResults[i] = detachRes{state: st, pending: pending, err: err}
			}(i, s)
		}
		dwg.Wait()
		close(detachDone)
	}

	// Watcher: a canceled context tears everything down.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watchDone:
		}
	}()

	go func() {
		defer close(watchDone)
		defer close(rs.done)
		// The stream span ends with the stream; every finish path below
		// sets the terminal error before this goroutine returns.
		defer func() { tsp.End(rs.terminalErr()) }()

		emit := func(t *table.Table) error { return fn(wrapTable(t)) }
		var stats stream.Stats
		var runErr error
		switch {
		case n == 1:
			s := subs[0]
			for b := range s.Batches() {
				if b.Table == nil {
					continue
				}
				if err := emit(b.Table); err != nil {
					_ = s.Cancel()
					wg.Wait()
					rs.fail(err)
					return
				}
			}
			st, err := s.Wait()
			if err != nil && s.State() == nil {
				wg.Wait()
				rs.fail(err)
				return
			}
			if st != nil {
				stats = *st
			}
		case sp.Windowed:
			stats, runErr = federation.MergeWindows(subs, emit)
		default:
			stats, runErr = federation.MergeArrival(subs, emit)
		}
		wg.Wait()

		detached := false
		select {
		case <-rs.detachCh:
			// Detach owns the terminal handshake; wait for it to collect
			// every partition's state.
			<-detachDone
			detached = true
		default:
		}

		if detached {
			// In-flight results the pipelines emitted before stopping are
			// not represented in the resume state — deliver them now, in
			// partition order, so nothing is lost across the handoff.
			tokens := make([]ResumeToken, n)
			var firstErr error
			for i := range detachResults {
				res := detachResults[i]
				if res.err != nil && firstErr == nil {
					firstErr = res.err
				}
				for _, b := range res.pending {
					if b.Table == nil {
						continue
					}
					if err := emit(b.Table); err != nil && firstErr == nil {
						firstErr = err
					}
				}
				tokens[i] = ResumeToken{Provider: providers[i], Partition: i, state: res.state}
			}
			rs.mu.Lock()
			rs.stats = &stats
			rs.tokens = tokens
			rs.err = firstErr
			rs.mu.Unlock()
			return
		}

		switch {
		case runErr != nil:
			rs.finish(&stats, runErr)
		case pubErr != nil:
			rs.finish(&stats, pubErr)
		case ctx.Err() != nil:
			rs.finish(&stats, ctx.Err())
		default:
			rs.finish(&stats, nil)
		}
	}()
	return rs, nil
}

func (r *RemoteStream) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

func (r *RemoteStream) finish(stats *StreamStats, err error) {
	r.mu.Lock()
	r.stats = stats
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// CollectRemote is SubscribeRemote accumulating every emitted row into
// one table.
func (q *StreamQuery) CollectRemote(ctx context.Context, providers ...string) (*Table, error) {
	sch, err := q.b.OutputSchema()
	if err != nil {
		return nil, err
	}
	sink := stream.NewCollect(sch)
	var mu sync.Mutex
	_, err = q.SubscribeRemote(ctx, providers, func(t *Table) error {
		mu.Lock()
		defer mu.Unlock()
		return sink.Emit(t.t)
	})
	if err != nil {
		return nil, err
	}
	t, err := sink.Table()
	if err != nil {
		return nil, err
	}
	return wrapTable(t), nil
}

// publishRows drains the local source, routes each row to its key
// partition, and publishes micro-batches upstream, ending every
// partition's input when the source completes. skips[p] rows routed to
// partition p are dropped first — the partition's pipeline consumed
// them before the resume point.
func publishRows(ctx context.Context, src stream.Source, subs []*federation.Subscription, keyIdx int, skips []int64) error {
	defer stream.ReleaseSource(src)
	rows := src.Open(ctx)
	n := len(subs)
	sch := src.Schema()
	skip := make([]int64, n)
	copy(skip, skips)
	builders := make([]*table.Builder, n)
	for i := range builders {
		builders[i] = table.NewBuilder(sch, 0)
	}
	flush := func(i int) error {
		if builders[i].Len() == 0 {
			return nil
		}
		t := builders[i].Build()
		builders[i] = table.NewBuilder(sch, 0)
		return subs[i].Publish(t)
	}
drain:
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case row, ok := <-rows:
			if !ok {
				break drain
			}
			p := 0
			if n > 1 && keyIdx >= 0 && keyIdx < len(row) {
				p = int(stream.PartitionOf(row[keyIdx], uint32(n)))
			}
			if skip[p] > 0 {
				skip[p]--
				continue
			}
			if err := builders[p].Append(row...); err != nil {
				return err
			}
			if builders[p].Len() >= remotePublishBatch {
				if err := flush(p); err != nil {
					return err
				}
			}
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	for i := range subs {
		if err := flush(i); err != nil {
			return err
		}
		if err := subs[i].EndInput(); err != nil {
			return err
		}
	}
	return nil
}
