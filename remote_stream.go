package nexus

import (
	"context"
	"fmt"
	"sync"

	"nexus/internal/federation"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// Federated data in motion: the same streaming query that runs in
// process ships its compiled plan to remote providers, which host the
// long-running pipeline and push watermarked window results back under
// credit-based flow control. PartitionBy splits the stream across N
// providers by key hash; the coordinator merges their results in
// watermark order.

// PartitionBy names the key column used to split the stream across
// providers when a federated subscription names more than one. Rows
// route by hash of the key (int64 keys hash their raw bits — the same
// fast path the join and group kernels prefer).
func (q *StreamQuery) PartitionBy(key string) *StreamQuery {
	nq := q.derive(q.b)
	nq.partKey = key
	return nq
}

// remotePublishBatch caps rows per published event batch.
const remotePublishBatch = 256

// SubscribeRemote runs the stream query on the named providers and
// delivers every result table to fn. With one provider the whole
// pipeline runs there; with several, PartitionBy is required and each
// provider runs the pipeline over its key partition, with windowed
// results merged in watermark order (stateless results arrive in
// arrival order). Queries built with StreamScan replay their dataset on
// the serving provider; every other source streams from this process to
// the providers over the wire.
func (q *StreamQuery) SubscribeRemote(ctx context.Context, providers []string, fn func(*Table) error) (*StreamStats, error) {
	if err := q.b.Err(); err != nil {
		return nil, err
	}
	sp, err := q.b.Spec()
	if err != nil {
		return nil, err
	}
	n := len(providers)
	if n == 0 {
		return nil, fmt.Errorf("nexus: SubscribeRemote needs at least one provider")
	}
	if n > 1 && q.partKey == "" {
		return nil, fmt.Errorf("nexus: a subscription across %d providers needs PartitionBy", n)
	}
	if n > 1 && sp.Windowed {
		// A group must never span partitions: each provider holds only its
		// share of the rows, so a group split across two providers would
		// come back as two rows of partial aggregates. Requiring the
		// partition key among the group keys makes groups partition-local.
		ok := false
		for _, k := range sp.Keys {
			if k == q.partKey {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("nexus: partition key %q must be one of the GroupBy keys %v — otherwise groups span partitions and aggregates come back partial", q.partKey, sp.Keys)
		}
	}
	src := q.b.Source()
	keyIdx := -1
	if q.partKey != "" {
		keyIdx = src.Schema().IndexOf(q.partKey)
		if keyIdx < 0 {
			return nil, fmt.Errorf("nexus: no partition key column %q in %v", q.partKey, src.Schema())
		}
	}

	// Open one subscription per provider.
	subs := make([]*federation.Subscription, 0, n)
	closeAll := func() {
		for _, s := range subs {
			s.Close()
		}
	}
	for i, name := range providers {
		tr, err := q.s.streamTransport(name)
		if err != nil {
			closeAll()
			return nil, err
		}
		sub := wire.StreamSub{Spec: sp, PartIdx: uint32(i), PartCnt: uint32(n)}
		if n > 1 {
			sub.PartKey = q.partKey
		}
		if q.dataset != "" {
			sub.SourceKind = wire.StreamSrcDataset
			sub.Dataset = q.dataset
			sub.TimeCol = q.timeCol
		} else {
			sub.SourceKind = wire.StreamSrcPush
			sub.TimeCol = src.TimeCol()
			sub.SrcSchema = src.Schema()
		}
		s, err := tr.Subscribe(sub)
		if err != nil {
			closeAll()
			return nil, err
		}
		subs = append(subs, s)
	}

	// Push-mode queries need a publisher moving local events upstream.
	var wg sync.WaitGroup
	var pubErr error
	if q.dataset == "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pubErr = publishRows(ctx, src, subs, keyIdx)
		}()
	}
	// Release everything if the caller's context ends first.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watchDone:
		}
	}()

	emit := func(t *table.Table) error { return fn(wrapTable(t)) }
	var stats stream.Stats
	switch {
	case n == 1:
		s := subs[0]
		for b := range s.Batches() {
			if b.Table == nil {
				continue
			}
			if err := emit(b.Table); err != nil {
				_ = s.Cancel()
				wg.Wait()
				return nil, err
			}
		}
		st, err := s.Wait()
		if err != nil {
			wg.Wait()
			return nil, err
		}
		stats = *st
	case sp.Windowed:
		stats, err = federation.MergeWindows(subs, emit)
	default:
		stats, err = federation.MergeArrival(subs, emit)
	}
	wg.Wait()
	if err != nil {
		return &stats, err
	}
	if pubErr != nil {
		return &stats, pubErr
	}
	if err := ctx.Err(); err != nil {
		return &stats, err
	}
	return &stats, nil
}

// CollectRemote is SubscribeRemote accumulating every emitted row into
// one table.
func (q *StreamQuery) CollectRemote(ctx context.Context, providers ...string) (*Table, error) {
	sch, err := q.b.OutputSchema()
	if err != nil {
		return nil, err
	}
	sink := stream.NewCollect(sch)
	var mu sync.Mutex
	_, err = q.SubscribeRemote(ctx, providers, func(t *Table) error {
		mu.Lock()
		defer mu.Unlock()
		return sink.Emit(t.t)
	})
	if err != nil {
		return nil, err
	}
	t, err := sink.Table()
	if err != nil {
		return nil, err
	}
	return wrapTable(t), nil
}

// publishRows drains the local source, routes each row to its key
// partition, and publishes micro-batches upstream, ending every
// partition's input when the source completes.
func publishRows(ctx context.Context, src stream.Source, subs []*federation.Subscription, keyIdx int) error {
	defer stream.ReleaseSource(src)
	rows := src.Open(ctx)
	n := len(subs)
	sch := src.Schema()
	builders := make([]*table.Builder, n)
	for i := range builders {
		builders[i] = table.NewBuilder(sch, 0)
	}
	flush := func(i int) error {
		if builders[i].Len() == 0 {
			return nil
		}
		t := builders[i].Build()
		builders[i] = table.NewBuilder(sch, 0)
		return subs[i].Publish(t)
	}
drain:
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case row, ok := <-rows:
			if !ok {
				break drain
			}
			p := 0
			if n > 1 && keyIdx >= 0 && keyIdx < len(row) {
				p = int(stream.PartitionOf(row[keyIdx], uint32(n)))
			}
			if err := builders[p].Append(row...); err != nil {
				return err
			}
			if builders[p].Len() >= remotePublishBatch {
				if err := flush(p); err != nil {
					return err
				}
			}
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	for i := range subs {
		if err := flush(i); err != nil {
			return err
		}
		if err := subs[i].EndInput(); err != nil {
			return err
		}
	}
	return nil
}
