package nexus_test

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"nexus"
	"nexus/internal/server"
	"nexus/internal/storage"
)

// End-to-end crash recovery: a real nexus-server process (this test
// binary re-executed) hosts a durable engine; the parent drives it over
// TCP, SIGKILLs it mid-write or mid-stream, restarts it on the same
// data directory, and asserts zero committed-row loss, byte-identical
// query results against the in-memory path, and resumed stream windows.

// TestDurableServerHelper is the child process: a durable server on an
// ephemeral port that checkpoints hosted subscriptions every batch.
func TestDurableServerHelper(t *testing.T) {
	dir := os.Getenv("NEXUS_SERVER_DIR")
	if dir == "" {
		t.Skip("server crash helper (only runs re-executed)")
	}
	eng, err := storage.OpenEngine("dur", dir)
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	srv, err := server.Serve(eng, "127.0.0.1:0")
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	srv.Logf = func(string, ...any) {}
	srv.EnableCheckpoints(eng.Backing(), 0) // checkpoint at every batch boundary
	fmt.Println("ADDR", srv.Addr())
	select {} // run until killed
}

// durableServer starts the helper and returns its address and a kill
// function.
func durableServer(t *testing.T, dir string) (addr string, kill func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestDurableServerHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "NEXUS_SERVER_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ERR") {
			cmd.Process.Kill()
			t.Fatalf("server helper: %s", line)
		}
		if strings.HasPrefix(line, "ADDR ") {
			addr = strings.TrimSpace(strings.TrimPrefix(line, "ADDR "))
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		t.Fatal("server helper printed no address")
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	var once sync.Once
	return addr, func() {
		once.Do(func() {
			cmd.Process.Kill() // SIGKILL: no shutdown path runs
			cmd.Wait()
		})
	}
}

// TestServerCrashRecoverAppends SIGKILLs a durable server mid-append
// stream and asserts the restarted server serves every acked row,
// byte-identical to the in-memory reference — including through the
// zone-map-pruned filtered-scan path.
func TestServerCrashRecoverAppends(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	addr, kill := durableServer(t, dir)
	defer kill()

	s := nexus.NewSession()
	prov, err := s.ConnectTCP(addr)
	if err != nil {
		t.Fatal(err)
	}

	// Append acked batches until the kill point. Each Append returns
	// only after the server's WAL fsync, so batches 0..acked-1 are
	// committed no matter when the SIGKILL lands.
	const batchRows = 20
	acked := 0
	for i := 0; i < 30; i++ {
		if err := s.Append(prov, "d", eventTable(int64(i*batchRows), int64((i+1)*batchRows))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked++
	}
	kill()

	addr2, kill2 := durableServer(t, dir)
	defer kill2()
	s2 := nexus.NewSession()
	prov2, err := s2.ConnectTCP(addr2)
	if err != nil {
		t.Fatalf("reconnect after crash: %v", err)
	}

	got, err := s2.Scan("d").Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := eventTable(0, int64(acked*batchRows))
	if got.NumRows() < want.NumRows() {
		t.Fatalf("lost committed rows: recovered %d, acked %d", got.NumRows(), want.NumRows())
	}
	// The in-memory reference: same rows on a RAM engine.
	mem := nexus.NewSession()
	memName, _ := mem.AddEngine(nexus.Relational, "mem")
	if err := mem.Store(memName, "d", want); err != nil {
		t.Fatal(err)
	}
	memGot, err := mem.Scan("d").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(got, memGot) {
		t.Fatal("recovered rows differ from the in-memory reference")
	}

	// Differential filtered scan: the remote plan runs Filter(Scan) on
	// the storage engine — the zone-map-pruned cold path — and must be
	// byte-identical to the in-memory engine's answer.
	q := s2.Scan("d").Where(nexus.And(
		nexus.Ge(nexus.Col("ts"), nexus.Int(100)),
		nexus.Lt(nexus.Col("ts"), nexus.Int(300)),
	))
	gotF, err := q.Collect()
	if err != nil {
		t.Fatal(err)
	}
	wantF, err := mem.Scan("d").Where(nexus.And(
		nexus.Ge(nexus.Col("ts"), nexus.Int(100)),
		nexus.Lt(nexus.Col("ts"), nexus.Int(300)),
	)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(gotF, wantF) {
		t.Fatal("pruned cold scan differs from the in-memory path")
	}
	_ = prov2
}

// TestServerCrashResumesDurableStream SIGKILLs a durable server while
// it hosts a checkpointing subscription, restarts it, re-subscribes
// under the same durable name, and asserts the resumed stream finishes
// the job: every window of an uninterrupted reference run is present
// and byte-identical, and the resumed leg replays only a suffix.
func TestServerCrashResumesDurableStream(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	addr, kill := durableServer(t, dir)
	defer kill()

	const totalRows = 20000
	events := eventTable(0, totalRows)

	s0 := nexus.NewSession()
	prov0, err := s0.ConnectTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Store(prov0, "events", events); err != nil {
		t.Fatal(err)
	}
	// Reconnect: the dataset catalog is exchanged at hello time.
	s := nexus.NewSession()
	prov, err := s.ConnectTCP(addr)
	if err != nil {
		t.Fatal(err)
	}

	query := func(sess *nexus.Session) *nexus.StreamQuery {
		return sess.StreamScan("events", "ts").
			BatchSize(100).
			Window(nexus.Tumbling(500)).
			GroupBy("sym").
			Agg(nexus.Count("n"), nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("vol")))).
			Durable("job")
	}

	// Phase 1: subscribe, let a few windows through, then SIGKILL the
	// server mid-stream. The slow consumer (small credit) keeps the
	// server's pipeline far from finished when the kill lands.
	var mu sync.Mutex
	var recovered []*nexus.Table
	got3 := make(chan struct{})
	seen := 0
	rs, err := query(s).SubscribeRemoteDetachable(context.Background(), []string{prov}, func(tab *nexus.Table) error {
		mu.Lock()
		recovered = append(recovered, tab)
		seen++
		if seen == 3 {
			close(got3)
		}
		n := seen
		mu.Unlock()
		if n >= 3 {
			time.Sleep(20 * time.Millisecond) // stall: keep the server mid-stream
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-got3
	kill() // SIGKILL while windows are still flowing
	_, werr := rs.Wait()
	if werr == nil {
		t.Fatal("subscription survived a SIGKILLed server")
	}

	// Phase 2: restart on the same directory, re-subscribe durably. The
	// server restores the checkpoint and resumes the replay mid-dataset.
	addr2, kill2 := durableServer(t, dir)
	defer kill2()
	s2 := nexus.NewSession()
	prov2, err := s2.ConnectTCP(addr2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := query(s2).SubscribeRemote(context.Background(), []string{prov2}, func(tab *nexus.Table) error {
		mu.Lock()
		recovered = append(recovered, tab)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.Events >= totalRows {
		t.Fatalf("resumed leg consumed %d events; want a proper suffix of %d (did the checkpoint restore?)", stats.Events, totalRows)
	}

	// Reference: the same query uninterrupted on an in-memory engine.
	mem := nexus.NewSession()
	memName, _ := mem.AddEngine(nexus.Relational, "mem")
	if err := mem.Store(memName, "events", events); err != nil {
		t.Fatal(err)
	}
	wantTab, err := mem.StreamScan("events", "ts").
		BatchSize(100).
		Window(nexus.Tumbling(500)).
		GroupBy("sym").
		Agg(nexus.Count("n"), nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("vol")))).
		Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Delivery across a crash is at-least-once: dedupe recovered rows by
	// (window_start, sym), keeping the latest, then compare byte-wise
	// against the uninterrupted run.
	gotRows := map[string]string{}
	mu.Lock()
	for _, tab := range recovered {
		for r := 0; r < tab.NumRows(); r++ {
			key := cellString(tab, r, nexus.WindowStartCol) + "|" + cellString(tab, r, "sym")
			gotRows[key] = rowString(tab, r)
		}
	}
	mu.Unlock()
	wantRows := map[string]string{}
	for r := 0; r < wantTab.NumRows(); r++ {
		key := cellString(wantTab, r, nexus.WindowStartCol) + "|" + cellString(wantTab, r, "sym")
		wantRows[key] = rowString(wantTab, r)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("recovered %d distinct windows, uninterrupted run has %d", len(gotRows), len(wantRows))
	}
	for k, w := range wantRows {
		if g, ok := gotRows[k]; !ok {
			t.Fatalf("window %s lost across the crash", k)
		} else if g != w {
			t.Fatalf("window %s differs: got %s want %s", k, g, w)
		}
	}
}

// eventTable builds (ts int64, sym string, vol int64, price float64)
// rows with ts = lo..hi-1.
func eventTable(lo, hi int64) *nexus.Table {
	syms := []string{"AAA", "BBB", "CCC", "DDD"}
	tb := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
		nexus.ColumnDef{Name: "sym", Type: nexus.String},
		nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
		nexus.ColumnDef{Name: "price", Type: nexus.Float64},
	)
	for i := lo; i < hi; i++ {
		tb.Append(i, syms[i%4], i%100, float64(i%50)+0.5)
	}
	t, err := tb.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// rowString renders one row for byte-wise comparison.
func rowString(t *nexus.Table, r int) string {
	var b strings.Builder
	for _, name := range t.ColumnNames() {
		v, _ := t.Value(r, name)
		fmt.Fprintf(&b, "%v|", v)
	}
	return b.String()
}

// cellString renders one named cell.
func cellString(t *nexus.Table, r int, col string) string {
	v, _ := t.Value(r, col)
	return fmt.Sprintf("%v", v)
}

// tablesEqual compares two public tables row-by-row.
func tablesEqual(a, b *nexus.Table) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	for r := 0; r < a.NumRows(); r++ {
		if rowString(a, r) != rowString(b, r) {
			return false
		}
	}
	return true
}
