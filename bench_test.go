// Benchmarks regenerating every experiment in EXPERIMENTS.md (one bench
// family per experiment id), plus micro-benchmarks of the engine kernels
// the experiments rest on. Run with:
//
//	go test -bench=. -benchmem
package nexus_test

import (
	"context"
	"fmt"
	"testing"

	"nexus"
	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/array"
	"nexus/internal/engines/exec"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/experiments"
	"nexus/internal/expr"
	"nexus/internal/federation"
	"nexus/internal/planner"
	"nexus/internal/provider"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// --- E1: coverage (plan building + classification + verification) -------

func BenchmarkE1Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1Coverage(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: translatability matrix -----------------------------------------

func BenchmarkE2Translate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2Translatability(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: intent preservation --------------------------------------------

func BenchmarkE3IntentMatMul(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		rel := relational.New("rel")
		la := linalg.New("la")
		a := datagen.Matrix(int64(n), n, n, "i", "k")
		bm := datagen.Matrix(int64(n)+1, n, n, "k", "j")
		for _, eng := range []provider.Provider{rel, la} {
			if err := eng.Store("A", a); err != nil {
				b.Fatal(err)
			}
			if err := eng.Store("B", bm); err != nil {
				b.Fatal(err)
			}
		}
		joinAgg := func() core.Node {
			as, _ := core.NewScan("A", a.Schema().DropDims())
			bs, _ := core.NewScan("B", bm.Schema().DropDims())
			j, _ := core.NewJoin(as, bs, core.JoinInner, []string{"k"}, []string{"k"}, nil)
			ga, err := core.NewGroupAgg(j, []string{"i", "j"}, []core.AggSpec{
				{Func: core.AggSum, Arg: expr.Mul(expr.Column("v"), expr.Column("v_r")), As: "c"},
			})
			if err != nil {
				b.Fatal(err)
			}
			return ga
		}
		b.Run(fmt.Sprintf("JoinAgg/n=%d", n), func(b *testing.B) {
			plan := joinAgg()
			for i := 0; i < b.N; i++ {
				if _, err := rel.Execute(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Recognized/n=%d", n), func(b *testing.B) {
			plan, err := planner.Optimize(joinAgg(), planner.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := la.Execute(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: server interoperation --------------------------------------------

func BenchmarkE4Interop(b *testing.B) {
	const rows = 50000
	siteA := relational.New("siteA")
	if err := siteA.Store("sales", datagen.Sales(1, rows, rows/10, 50)); err != nil {
		b.Fatal(err)
	}
	siteB := relational.New("siteB")
	if err := siteB.Store("customers", datagen.Customers(2, rows/10)); err != nil {
		b.Fatal(err)
	}
	reg := provider.NewRegistry()
	if err := reg.Add(siteA); err != nil {
		b.Fatal(err)
	}
	if err := reg.Add(siteB); err != nil {
		b.Fatal(err)
	}
	sales, _ := core.NewScan("sales", datagen.SalesSchema())
	cust, _ := core.NewScan("customers", datagen.CustomersSchema())
	f, _ := core.NewFilter(sales, expr.Gt(expr.Column("qty"), expr.CInt(3)))
	j, _ := core.NewJoin(cust, f, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	ga, err := core.NewGroupAgg(j, []string{"segment"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
	})
	if err != nil {
		b.Fatal(err)
	}
	opt, err := planner.Optimize(ga, planner.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	pp, err := planner.Partition(opt, reg, planner.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	coord := federation.NewCoordinator(federation.NewInProc(siteA), federation.NewInProc(siteB))
	for _, mode := range []federation.Mode{federation.ModeDirect, federation.ModeRouted} {
		b.Run(mode.String(), func(b *testing.B) {
			var via int64
			for i := 0; i < b.N; i++ {
				_, m, err := coord.Run(pp, mode)
				if err != nil {
					b.Fatal(err)
				}
				via = m.IntermediateViaClient
			}
			b.ReportMetric(float64(via), "intermediate-bytes-via-client")
		})
	}
}

// --- E5: control iteration ------------------------------------------------

func BenchmarkE5Iterate(b *testing.B) {
	const (
		n, m, iters = 2000, 10000, 10
		damping     = 0.85
	)
	edges := datagen.ZipfGraph(3, n, m)
	plan, err := graph.PageRankPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), n, damping, iters, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("InEngineGeneric", func(b *testing.B) {
		rel := relational.New("rel")
		if err := rel.Store("edges", edges); err != nil {
			b.Fatal(err)
		}
		if err := rel.Store("vertices", graph.VerticesTable(n)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rel.Execute(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NativeKernel", func(b *testing.B) {
		gr := graph.New("gr")
		if err := gr.Store("edges", edges); err != nil {
			b.Fatal(err)
		}
		if err := gr.Store("vertices", graph.VerticesTable(n)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gr.Execute(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E6: portability --------------------------------------------------------

func BenchmarkE6Portability(b *testing.B) {
	sales := datagen.Sales(4, 20000, 500, 50)
	plan := func() core.Node {
		s, _ := core.NewScan("sales", sales.Schema())
		ga, err := core.NewGroupAgg(s, []string{"region"}, []core.AggSpec{
			{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
		})
		if err != nil {
			b.Fatal(err)
		}
		return ga
	}()
	engines := map[string]provider.Provider{
		"Relational": relational.New("r"),
		"Array":      array.New("a"),
	}
	for name, eng := range engines {
		if err := eng.Store("sales", sales); err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Execute(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: expression-tree shipping -------------------------------------------

func BenchmarkE7Shipping(b *testing.B) {
	for _, depth := range []int{4, 16} {
		b.Run(fmt.Sprintf("Tree/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.E7Shipping([]int{depth}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: optimizer ablation ---------------------------------------------------

func BenchmarkE8Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8Ablation(20000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine micro-benchmarks (the kernels the experiments stand on) ---------

func BenchmarkHashJoin(b *testing.B) {
	for _, rows := range []int{10000, 100000} {
		sales := datagen.Sales(5, rows, rows/10, 50)
		cust := datagen.Customers(6, rows/10)
		sc, _ := core.NewScan("sales", sales.Schema())
		cc, _ := core.NewScan("customers", cust.Schema())
		j, err := core.NewJoin(sc, cc, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		rt := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
			switch n {
			case "sales":
				return sales, true
			case "customers":
				return cust, true
			}
			return nil, false
		}}
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rt.Run(j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHashAggregate(b *testing.B) {
	sales := datagen.Sales(7, 100000, 1000, 100)
	sc, _ := core.NewScan("sales", sales.Schema())
	ga, err := core.NewGroupAgg(sc, []string{"cust_id"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
		{Func: core.AggCount, As: "n"},
	})
	if err != nil {
		b.Fatal(err)
	}
	rt := &exec.Runtime{Datasets: func(string) (*table.Table, bool) { return sales, true }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(ga); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterVectorized measures a compound predicate through the
// vectorized selection path: two comparisons and a conjunction per row,
// with one gather for the surviving rows.
func BenchmarkFilterVectorized(b *testing.B) {
	for _, rows := range []int{100000, 1000000} {
		sales := datagen.Sales(21, rows, rows/10, 50)
		sc, _ := core.NewScan("sales", sales.Schema())
		f, err := core.NewFilter(sc, expr.And(
			expr.Gt(expr.Column("qty"), expr.CInt(3)),
			expr.Lt(expr.Column("price"), expr.CFloat(40)),
		))
		if err != nil {
			b.Fatal(err)
		}
		rt := &exec.Runtime{Datasets: func(string) (*table.Table, bool) { return sales, true }}
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := rt.Run(f)
				if err != nil {
					b.Fatal(err)
				}
				if out.NumRows() == 0 {
					b.Fatal("empty filter result")
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkExtendParallel measures computed-column evaluation through the
// morsel pool (Parallelism 0 = one worker per CPU).
func BenchmarkExtendParallel(b *testing.B) {
	const rows = 1000000
	sales := datagen.Sales(22, rows, rows/10, 50)
	sc, _ := core.NewScan("sales", sales.Schema())
	e, err := core.NewExtend(sc, []core.ColDef{
		{Name: "notional", E: expr.Mul(expr.Column("price"), expr.Column("qty"))},
		{Name: "rebate", E: expr.Mul(expr.Sub(expr.Column("price"), expr.CFloat(1)), expr.CFloat(0.05))},
	})
	if err != nil {
		b.Fatal(err)
	}
	rt := &exec.Runtime{Datasets: func(string) (*table.Table, bool) { return sales, true }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(e); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkMatMulKernel(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		da, err := array.FromTable(datagen.Matrix(8, n, n, "i", "k"))
		if err != nil {
			b.Fatal(err)
		}
		db, err := array.FromTable(datagen.Matrix(9, n, n, "k", "j"))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linalg.MatMulDense(da, db, "v"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDenseWindow(b *testing.B) {
	grid := datagen.Grid(10, 256, 256)
	ae := array.New("a")
	if err := ae.Store("grid", grid); err != nil {
		b.Fatal(err)
	}
	sc, _ := core.NewScan("grid", grid.Schema())
	w, err := core.NewWindow(sc, []core.DimExtent{
		{Dim: "x", Before: 1, After: 1}, {Dim: "y", Before: 1, After: 1},
	}, core.AggSum, "v", "s")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ae.Execute(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankKernel(b *testing.B) {
	edges := datagen.ZipfGraph(11, 10000, 50000)
	csr, err := graph.BuildCSR(edges, 10000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.PageRankNative(csr, 0.85, 20, 0)
	}
}

func BenchmarkWireTableRoundTrip(b *testing.B) {
	sales := datagen.Sales(12, 50000, 1000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := wire.EncodeTable(sales)
		if _, err := wire.DecodeTable(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWirePlanRoundTrip(b *testing.B) {
	plan, err := graph.PageRankPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), 1000, 0.85, 20, 1e-9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := wire.EncodePlan(plan)
		if _, err := wire.DecodePlan(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSurfaceCompile(b *testing.B) {
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "db"); err != nil {
		b.Fatal(err)
	}
	if err := s.Demo(); err != nil {
		b.Fatal(err)
	}
	const src = `load sales | where qty > 3 | join (load customers) on cust_id == cust_id | group by segment agg rev = sum(price*qty) | sort rev desc | limit 5`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Query(src).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizer(b *testing.B) {
	sales := datagen.Sales(13, 100, 10, 5)
	cust := datagen.Customers(14, 10)
	sc, _ := core.NewScan("sales", sales.Schema())
	cc, _ := core.NewScan("customers", cust.Schema())
	j, _ := core.NewJoin(sc, cc, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	f, _ := core.NewFilter(j, expr.And(
		expr.Gt(expr.Column("qty"), expr.CInt(2)),
		expr.Eq(expr.Column("segment"), expr.CStr("consumer")),
	))
	ga, err := core.NewGroupAgg(f, []string{"region"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Optimize(ga, planner.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- data in motion: streaming micro-benchmarks ---------------------------

// streamSource synthesizes n trade events with event time i (so tumbling
// windows of w events per window size w).
func streamSource(b *testing.B, n int64) nexus.StreamSource {
	b.Helper()
	syms := []string{"AAA", "BBB", "CCC", "DDD"}
	src, err := nexus.GenerateSource("ts", n, func(i int64) []any {
		return []any{i, syms[i%4], i % 100, float64(i%50) + 0.5}
	},
		nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
		nexus.ColumnDef{Name: "sym", Type: nexus.String},
		nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
		nexus.ColumnDef{Name: "price", Type: nexus.Float64},
	)
	if err != nil {
		b.Fatal(err)
	}
	return src
}

// BenchmarkStreamThroughput measures end-to-end rows/s of a windowed
// per-symbol aggregation over a generated event stream.
func BenchmarkStreamThroughput(b *testing.B) {
	const n = 100_000
	s := nexus.NewSession()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.StreamFrom(streamSource(b, n)).
			Window(nexus.Tumbling(10_000)).
			GroupBy("sym").
			Agg(nexus.Sum("notional", nexus.Mul(nexus.Col("price"), nexus.Col("vol"))), nexus.Count("trades")).
			Collect(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.NumRows() != 40 { // 10 windows x 4 symbols
			b.Fatalf("rows = %d", res.NumRows())
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStreamStateless measures the micro-batch pipeline without
// windows: filter + computed column, emitted batch by batch.
func BenchmarkStreamStateless(b *testing.B) {
	const n = 100_000
	s := nexus.NewSession()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var rows int
		_, err := s.StreamFrom(streamSource(b, n)).
			Where(nexus.Gt(nexus.Col("vol"), nexus.Int(50))).
			Extend("notional", nexus.Mul(nexus.Col("price"), nexus.Col("vol"))).
			Subscribe(context.Background(), func(t *nexus.Table) error {
				rows += t.NumRows()
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if rows == 0 {
			b.Fatal("no rows emitted")
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStreamSlidingWindows stresses multi-window assignment: each
// event lands in four overlapping sliding windows.
func BenchmarkStreamSlidingWindows(b *testing.B) {
	const n = 50_000
	s := nexus.NewSession()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := s.StreamFrom(streamSource(b, n)).
			Window(nexus.Sliding(4_000, 1_000)).
			GroupBy("sym").
			Agg(nexus.Avg("avg_price", nexus.Col("price"))).
			Collect(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
