package nexus

import (
	"fmt"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Type names a column's scalar type in the public API.
type Type = value.Kind

// Column types.
const (
	Bool64  = value.KindBool
	Int64   = value.KindInt64
	Float64 = value.KindFloat64
	String  = value.KindString
)

// ColumnDef declares one column of a table under construction. Dim marks
// the column as an array dimension (must be Int64).
type ColumnDef struct {
	Name string
	Type Type
	Dim  bool
}

// Table is a query result or input dataset: an immutable columnar
// collection in the client environment.
type Table struct {
	t *table.Table
}

// wrapTable adapts an internal table.
func wrapTable(t *table.Table) *Table { return &Table{t: t} }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.t.NumRows() }

// NumCols returns the column count.
func (t *Table) NumCols() int { return t.t.NumCols() }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string { return t.t.Schema().Names() }

// String renders up to 20 rows.
func (t *Table) String() string { return t.t.String() }

// Format renders up to maxRows rows.
func (t *Table) Format(maxRows int) string { return t.t.Format(maxRows) }

// Checksum returns an order-independent digest; identical result
// multisets have identical checksums across engines.
func (t *Table) Checksum() uint64 { return t.t.Checksum() }

// Ints returns the named int64 column's values.
func (t *Table) Ints(col string) ([]int64, error) {
	c := t.t.ColByName(col)
	if c == nil {
		return nil, fmt.Errorf("nexus: no column %q", col)
	}
	if c.Kind() != value.KindInt64 {
		return nil, fmt.Errorf("nexus: column %q is %v, not int64", col, c.Kind())
	}
	return c.Ints(), nil
}

// Floats returns the named float64 column's values.
func (t *Table) Floats(col string) ([]float64, error) {
	c := t.t.ColByName(col)
	if c == nil {
		return nil, fmt.Errorf("nexus: no column %q", col)
	}
	if c.Kind() != value.KindFloat64 {
		return nil, fmt.Errorf("nexus: column %q is %v, not float64", col, c.Kind())
	}
	return c.Floats(), nil
}

// Strings returns the named string column's values.
func (t *Table) Strings(col string) ([]string, error) {
	c := t.t.ColByName(col)
	if c == nil {
		return nil, fmt.Errorf("nexus: no column %q", col)
	}
	if c.Kind() != value.KindString {
		return nil, fmt.Errorf("nexus: column %q is %v, not string", col, c.Kind())
	}
	return c.Strs(), nil
}

// Value returns the cell at (row, col) as a Go value: nil for NULL, or
// bool / int64 / float64 / string.
func (t *Table) Value(row int, col string) (any, error) {
	c := t.t.ColByName(col)
	if c == nil {
		return nil, fmt.Errorf("nexus: no column %q", col)
	}
	if row < 0 || row >= t.t.NumRows() {
		return nil, fmt.Errorf("nexus: row %d out of range [0,%d)", row, t.t.NumRows())
	}
	v := c.Value(row)
	switch v.Kind() {
	case value.KindNull:
		return nil, nil
	case value.KindBool:
		return v.Bool(), nil
	case value.KindInt64:
		return v.Int(), nil
	case value.KindFloat64:
		return v.Float(), nil
	case value.KindString:
		return v.Str(), nil
	}
	return nil, fmt.Errorf("nexus: bad value kind")
}

// TableBuilder accumulates rows for a new table.
type TableBuilder struct {
	b   *table.Builder
	err error
}

// colDefsSchema converts public column definitions to a schema.
func colDefsSchema(cols []ColumnDef) (schema.Schema, error) {
	attrs := make([]schema.Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = schema.Attribute{Name: c.Name, Kind: c.Type, Dim: c.Dim}
	}
	sch, err := schema.TryNew(attrs...)
	if err != nil {
		return schema.Schema{}, fmt.Errorf("nexus: %w", err)
	}
	return sch, nil
}

// NewTableBuilder starts a table with the given columns.
func NewTableBuilder(cols ...ColumnDef) *TableBuilder {
	sch, err := colDefsSchema(cols)
	if err != nil {
		return &TableBuilder{err: err}
	}
	return &TableBuilder{b: table.NewBuilder(sch, 0)}
}

// Append adds one row from Go values: nil (NULL), bool, int, int64,
// float64 or string. It records the first error and becomes a no-op
// afterwards; Build reports it.
func (tb *TableBuilder) Append(vals ...any) *TableBuilder {
	if tb.err != nil {
		return tb
	}
	row := make([]value.Value, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			row[i] = value.Null
		case bool:
			row[i] = value.NewBool(x)
		case int:
			row[i] = value.NewInt(int64(x))
		case int64:
			row[i] = value.NewInt(x)
		case float64:
			row[i] = value.NewFloat(x)
		case string:
			row[i] = value.NewString(x)
		default:
			tb.err = fmt.Errorf("nexus: unsupported value type %T at column %d", v, i)
			return tb
		}
	}
	if err := tb.b.Append(row...); err != nil {
		tb.err = fmt.Errorf("nexus: %w", err)
	}
	return tb
}

// Build finalizes the table.
func (tb *TableBuilder) Build() (*Table, error) {
	if tb.err != nil {
		return nil, tb.err
	}
	return wrapTable(tb.b.Build()), nil
}

// FromInts builds a single-column int64 table (convenience for tests and
// examples).
func FromInts(col string, vals []int64) *Table {
	sch := schema.New(schema.Attribute{Name: col, Kind: value.KindInt64})
	return wrapTable(table.MustNew(sch, []*table.Column{table.IntColumn(vals)}))
}
