module nexus

go 1.24
