// Package nexus is a LINQ-like organizing framework for Big Data
// systems, reproducing the design called for in "Desiderata for a Big
// Data Language" (David Maier, CIDR 2015).
//
// The central abstraction is an algebraic intermediate form — the Big
// Data algebra — whose operators span relational algebra, dimension-aware
// array operations over a fused tabular/array model, and control
// iteration (fixpoints with convergence criteria). Client programs build
// queries with the fluent Query API (or the pipeline surface language),
// the planner optimizes and partitions them across registered back-end
// providers by capability and data locality, and the federation layer
// executes multi-server plans with intermediates passing directly
// between servers.
//
// A minimal program:
//
//	s := nexus.NewSession()
//	eng, _ := s.AddEngine(nexus.Relational, "db")
//	_ = eng // engines expose provider-level knobs when needed
//	_ = s.Store("db", "sales", salesTable)
//	res, err := s.Scan("sales").
//		Where(nexus.Gt(nexus.Col("qty"), nexus.Int(3))).
//		GroupBy("region").
//		Agg(nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("qty")))).
//		OrderBy(nexus.Desc("rev")).
//		Collect()
//
// Results are collections in the client environment (no cursors), per the
// paper.
//
// The algebra also spans data in motion: Session.StreamFrom (and
// StreamScan, which replays a stored dataset) return a StreamQuery that
// applies the same operators incrementally over unbounded event streams,
// with tumbling, sliding and count windows, event-time watermarks, and
// stream-table enrichment joins. See stream.go and examples/streaming.
package nexus

import (
	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/value"
)

// Expr is a scalar expression usable in Where, Extend, aggregates and
// join residuals.
type Expr = expr.Expr

// Col references a column by name (optionally qualified, "t.col").
func Col(name string) Expr { return expr.Column(name) }

// Int returns an int64 literal.
func Int(v int64) Expr { return expr.CInt(v) }

// Float returns a float64 literal.
func Float(v float64) Expr { return expr.CFloat(v) }

// Str returns a string literal.
func Str(v string) Expr { return expr.CStr(v) }

// Bool returns a bool literal.
func Bool(v bool) Expr { return expr.CBool(v) }

// NullLit returns the NULL literal.
func NullLit() Expr { return expr.C(value.Null) }

// Add returns l + r.
func Add(l, r Expr) Expr { return expr.Add(l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return expr.Sub(l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return expr.Mul(l, r) }

// Div returns l / r.
func Div(l, r Expr) Expr { return expr.Div(l, r) }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return expr.Eq(l, r) }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return expr.Ne(l, r) }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return expr.Lt(l, r) }

// Le returns l <= r.
func Le(l, r Expr) Expr { return expr.Le(l, r) }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return expr.Gt(l, r) }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return expr.Ge(l, r) }

// And returns l && r.
func And(l, r Expr) Expr { return expr.And(l, r) }

// Or returns l || r.
func Or(l, r Expr) Expr { return expr.Or(l, r) }

// Not returns !x.
func Not(x Expr) Expr { return expr.Not(x) }

// Neg returns -x.
func Neg(x Expr) Expr { return expr.Neg(x) }

// IsNull tests x for NULL.
func IsNull(x Expr) Expr { return expr.IsNull(x) }

// Call invokes a registered scalar function (sqrt, abs, coalesce, if,
// lower, substr, ...; see internal/expr for the registry).
func Call(name string, args ...Expr) Expr { return expr.NewCall(name, args...) }

// AggSpec describes one aggregate output column.
type AggSpec = core.AggSpec

// Sum aggregates the expression's sum as the named column.
func Sum(as string, e Expr) AggSpec { return AggSpec{Func: core.AggSum, Arg: e, As: as} }

// Count counts rows as the named column.
func Count(as string) AggSpec { return AggSpec{Func: core.AggCount, As: as} }

// CountOf counts non-null values of e.
func CountOf(as string, e Expr) AggSpec { return AggSpec{Func: core.AggCount, Arg: e, As: as} }

// Min aggregates the minimum of e.
func Min(as string, e Expr) AggSpec { return AggSpec{Func: core.AggMin, Arg: e, As: as} }

// Max aggregates the maximum of e.
func Max(as string, e Expr) AggSpec { return AggSpec{Func: core.AggMax, Arg: e, As: as} }

// Avg aggregates the mean of e.
func Avg(as string, e Expr) AggSpec { return AggSpec{Func: core.AggAvg, Arg: e, As: as} }

// CountDistinct counts distinct values of e.
func CountDistinct(as string, e Expr) AggSpec {
	return AggSpec{Func: core.AggCountDistinct, Arg: e, As: as}
}

// SortKey orders query output.
type SortKey = core.SortSpec

// Asc sorts ascending by the column.
func Asc(col string) SortKey { return SortKey{Col: col} }

// Desc sorts descending by the column.
func Desc(col string) SortKey { return SortKey{Col: col, Desc: true} }

// JoinType selects the join variant.
type JoinType = core.JoinType

// Join variants.
const (
	Inner = core.JoinInner
	Left  = core.JoinLeft
	Semi  = core.JoinSemi
	Anti  = core.JoinAnti
)

// JoinKey pairs a left and right key column.
type JoinKey struct{ Left, Right string }

// On builds a join key pair.
func On(left, right string) JoinKey { return JoinKey{Left: left, Right: right} }

// Convergence is the stopping rule for Iterate.
type Convergence = core.Convergence

// Convergence metrics.
const (
	L1       = core.MetricL1
	L2       = core.MetricL2
	LInf     = core.MetricLInf
	RowDelta = core.MetricRowDelta
)

// DimBound restricts a dimension to [Lo, Hi) in Dice.
type DimBound = core.DimBound

// DimExtent is a window extent along a dimension.
type DimExtent = core.DimExtent

// AggFunc names an aggregate function for Window and ReduceDims.
type AggFunc = core.AggFunc

// Aggregate functions.
const (
	AggSum           = core.AggSum
	AggCount         = core.AggCount
	AggMin           = core.AggMin
	AggMax           = core.AggMax
	AggAvg           = core.AggAvg
	AggCountDistinct = core.AggCountDistinct
)
