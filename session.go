package nexus

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"nexus/internal/datagen"
	"nexus/internal/engines/array"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/federation"
	"nexus/internal/lang"
	"nexus/internal/obs/trace"
	"nexus/internal/planner"
	"nexus/internal/provider"
	"nexus/internal/schema"
	"nexus/internal/storage"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// EngineKind selects an in-process back-end engine type.
type EngineKind int

// The four engine classes the framework ships, mirroring the system
// classes the paper enumerates: column stores, array databases,
// linear-algebra packages, graph-analysis environments.
const (
	Relational EngineKind = iota
	Array
	LinAlg
	Graph
)

// String names the kind.
func (k EngineKind) String() string {
	switch k {
	case Relational:
		return "relational"
	case Array:
		return "array"
	case LinAlg:
		return "linalg"
	case Graph:
		return "graph"
	}
	return fmt.Sprintf("engine(%d)", int(k))
}

// ShipMode selects how federated intermediates travel.
type ShipMode = federation.Mode

// Shipping modes: Direct moves intermediates server→server (the paper's
// desideratum D4); Routed bounces them through the client, kept as the
// measured baseline.
const (
	Direct = federation.ModeDirect
	Routed = federation.ModeRouted
)

// Metrics reports traffic of a federated execution.
type Metrics = federation.Metrics

// Session owns a set of providers (in-process engines and/or remote
// servers), plans queries against them and executes the fragments.
type Session struct {
	reg        *provider.Registry
	transports []federation.Transport
	opts       planner.Options
	mode       ShipMode
	root       *trace.Span // session trace root; nil until traced (see tracing.go)
}

// NewSession returns an empty session with all optimizations enabled and
// direct shipping.
func NewSession() *Session {
	return &Session{
		reg:  provider.NewRegistry(),
		opts: planner.DefaultOptions(),
		mode: Direct,
	}
}

// SetShipMode switches between direct and client-routed intermediate
// shipping for subsequent queries.
func (s *Session) SetShipMode(m ShipMode) { s.mode = m }

// OptimizerOptions mirrors the planner switches for ablation studies.
type OptimizerOptions struct {
	Fold          bool
	Pushdown      bool
	Prune         bool
	PushLimit     bool
	IntentMatMul  bool
	IntentKernels bool
}

// SetOptimizerOptions replaces the optimizer configuration.
func (s *Session) SetOptimizerOptions(o OptimizerOptions) {
	s.opts = planner.Options(o)
}

// DisableOptimizations turns every rewrite off (baseline runs).
func (s *Session) DisableOptimizations() { s.opts = planner.NoOptions() }

// AddEngine creates an in-process engine of the given kind, registers it
// as a provider, and returns its name for Store calls.
func (s *Session) AddEngine(kind EngineKind, name string) (string, error) {
	var p provider.Provider
	switch kind {
	case Relational:
		p = relational.New(name)
	case Array:
		p = array.New(name)
	case LinAlg:
		p = linalg.New(name)
	case Graph:
		p = graph.New(name)
	default:
		return "", fmt.Errorf("nexus: unknown engine kind %v", kind)
	}
	if err := s.reg.Add(p); err != nil {
		return "", err
	}
	s.transports = append(s.transports, federation.NewInProc(p))
	return p.Name(), nil
}

// Open opens (or creates) a durable data directory as a provider: a
// crash-recoverable columnar engine whose datasets survive restarts.
// The provider is named after the directory's base name ("durable" for
// degenerate paths); the name is returned for Store/Persist calls.
func (s *Session) Open(dir string) (string, error) {
	name := filepath.Base(filepath.Clean(dir))
	if name == "." || name == string(filepath.Separator) || name == "" {
		name = "durable"
	}
	eng, err := storage.OpenEngine(name, dir)
	if err != nil {
		return "", err
	}
	if err := s.reg.Add(eng); err != nil {
		eng.Close()
		return "", err
	}
	s.transports = append(s.transports, federation.NewInProc(eng))
	return eng.Name(), nil
}

// Persist copies a dataset from whichever provider currently hosts it
// onto the named provider — typically one opened with Open, making an
// in-memory dataset durable. The source copy is left in place.
func (s *Session) Persist(providerName, dataset string) error {
	dst, ok := s.reg.Get(providerName)
	if !ok {
		return fmt.Errorf("nexus: unknown provider %q", providerName)
	}
	src, sch, ok := s.reg.FindDataset(dataset)
	if !ok {
		return fmt.Errorf("nexus: unknown dataset %q", dataset)
	}
	scan, err := coreScan(dataset, sch)
	if err != nil {
		return err
	}
	t, err := src.Execute(scan)
	if err != nil {
		return fmt.Errorf("nexus: persist %q: %w", dataset, err)
	}
	return dst.Store(dataset, t)
}

// Append adds rows to a dataset on the named provider, creating it on
// first use. Durable and remote providers take their native append
// path (a WAL append on a -data-dir server); in-memory engines are
// emulated via concatenation.
func (s *Session) Append(providerName, dataset string, t *Table) error {
	p, ok := s.reg.Get(providerName)
	if !ok {
		return fmt.Errorf("nexus: unknown provider %q", providerName)
	}
	return provider.Append(p, dataset, t.t)
}

// ConnectTCP attaches a remote nexus server (started with cmd/nexus-server
// or server.Serve) as a provider.
func (s *Session) ConnectTCP(addr string) (string, error) {
	return s.Connect(addr, ConnectOptions{})
}

// ConnectOptions configures Connect.
type ConnectOptions struct {
	// Tenant identifies this client to the server's admission control
	// (per-tenant quotas; see server.AdmissionConfig). Empty is the
	// anonymous tenant.
	Tenant string
	// Mux multiplexes everything the session sends to this server —
	// queries, appends and any number of stream subscriptions — over ONE
	// TCP connection with per-stream flow control, instead of opening a
	// dedicated connection per subscription.
	Mux bool
	// ConnectTimeout and RequestTimeout override the network budgets
	// (zero keeps the defaults; see federation.DialOpts).
	ConnectTimeout time.Duration
	RequestTimeout time.Duration
	// Trace puts the connection under the session's trace: the dial and
	// hello handshake record client spans, the server parents its
	// handshake span there, and Session.TraceID reports the id to look
	// up at /debug/traces. Queries and subscriptions marked with Trace
	// join the same session trace.
	Trace bool
}

// Connect attaches a remote nexus server as a provider with explicit
// front-door options: a tenant identity for admission control, request
// budgets, and optionally a multiplexed connection.
func (s *Session) Connect(addr string, o ConnectOptions) (string, error) {
	opts := federation.DialOpts{
		ConnectTimeout: o.ConnectTimeout,
		RequestTimeout: o.RequestTimeout,
		Tenant:         o.Tenant,
	}
	if o.Trace {
		opts.Trace = toWireTrace(s.traceRoot().Context())
	}
	var tr remoteTransport
	var err error
	if o.Mux {
		tr, err = federation.DialMux(addr, opts)
	} else {
		tr, err = federation.DialTCPContext(context.Background(), addr, opts)
	}
	if err != nil {
		return "", err
	}
	rp := &remoteProvider{tr: tr}
	if err := s.reg.Add(rp); err != nil {
		tr.Close()
		return "", err
	}
	s.transports = append(s.transports, tr)
	return tr.ProviderName(), nil
}

// Close releases every network connection the session holds (remote
// providers attached with Connect/ConnectTCP). In-process engines are
// not touched. The session must not be used afterwards.
func (s *Session) Close() {
	for _, tr := range s.transports {
		if c, ok := tr.(interface{ Close() }); ok {
			c.Close()
		}
	}
	s.transports = nil
	// The session root span records on close — until then only its
	// finished children sit in the trace ring.
	s.root.End(nil)
	s.root = nil
}

// Store uploads a table to the named provider as a dataset.
func (s *Session) Store(providerName, dataset string, t *Table) error {
	p, ok := s.reg.Get(providerName)
	if !ok {
		return fmt.Errorf("nexus: unknown provider %q", providerName)
	}
	return p.Store(dataset, t.t)
}

// DatasetSchema reports the schema of a dataset wherever it is hosted.
func (s *Session) DatasetSchema(dataset string) (string, bool) {
	_, sch, ok := s.reg.FindDataset(dataset)
	if !ok {
		return "", false
	}
	return sch.String(), true
}

// DatasetInfo describes one hosted dataset for catalog listings.
type DatasetInfo struct {
	Provider string
	Name     string
	Rows     int64
	Schema   string
	// Durable reports whether the hosting provider persists the dataset
	// across restarts (a provider opened with Open, or a -data-dir
	// server on its own machine — remote durability is not visible here).
	Durable bool
}

// Datasets lists every dataset across all providers.
func (s *Session) Datasets() []DatasetInfo {
	var out []DatasetInfo
	for _, p := range s.reg.All() {
		durable := false
		if d, ok := p.(interface{ Durable() bool }); ok {
			durable = d.Durable()
		}
		for _, ds := range p.Datasets() {
			out = append(out, DatasetInfo{
				Provider: p.Name(),
				Name:     ds.Name,
				Rows:     ds.Rows,
				Schema:   ds.Schema.String(),
				Durable:  durable,
			})
		}
	}
	return out
}

// Providers lists registered provider names in registration order.
func (s *Session) Providers() []string { return s.reg.Names() }

// Scan starts a query over a named dataset (resolved against every
// provider's catalog).
func (s *Session) Scan(dataset string) *Query {
	_, sch, ok := s.reg.FindDataset(dataset)
	if !ok {
		return &Query{s: s, err: fmt.Errorf("nexus: unknown dataset %q", dataset)}
	}
	n, err := coreScan(dataset, sch)
	return &Query{s: s, node: n, err: err}
}

// TableQuery starts a query over a literal in-client table.
func (s *Session) TableQuery(t *Table) *Query {
	n, err := coreLiteral(t.t)
	return &Query{s: s, node: n, err: err}
}

// StreamFrom starts a streaming query (data in motion) over the source:
// a live channel (NewChannelStream), a replayed table (ReplayTable), or
// a generator (GenerateSource). The same algebra operators that Query
// offers apply incrementally, per micro-batch.
func (s *Session) StreamFrom(src StreamSource) *StreamQuery {
	return &StreamQuery{s: s, b: stream.NewBuilder(src)}
}

// StreamScan replays a stored dataset as a stream: the dataset is
// materialized from whichever provider hosts it and its rows are played
// back in order, with event time read from the named int64 column.
func (s *Session) StreamScan(dataset, timeCol string) *StreamQuery {
	p, sch, ok := s.reg.FindDataset(dataset)
	if !ok {
		return &StreamQuery{s: s, b: stream.FailedBuilder(fmt.Errorf("nexus: unknown dataset %q", dataset))}
	}
	scan, err := coreScan(dataset, sch)
	if err != nil {
		return &StreamQuery{s: s, b: stream.FailedBuilder(err)}
	}
	// Materialization is deferred to the stream's run: building (or
	// abandoning) the query never scans the dataset, mirroring the lazy
	// batch Scan.
	fetch := func() (*table.Table, error) { return p.Execute(scan) }
	q := s.StreamFrom(stream.NewLazyReplay(sch, timeCol, fetch))
	// Remember the dataset so a federated subscription can replay it on
	// the serving provider instead of shipping rows from here.
	q.dataset = dataset
	q.timeCol = timeCol
	return q
}

// streamTransport resolves a provider name to a transport that can host
// stream subscriptions (in-process engines and TCP servers both can).
func (s *Session) streamTransport(name string) (federation.StreamTransport, error) {
	for _, tr := range s.transports {
		if tr.ProviderName() == name {
			if st, ok := tr.(federation.StreamTransport); ok {
				return st, nil
			}
			return nil, fmt.Errorf("nexus: provider %q cannot host stream subscriptions", name)
		}
	}
	return nil, fmt.Errorf("nexus: unknown provider %q", name)
}

// Query compiles a surface-language pipeline (see internal/lang) into a
// Query against this session's catalogs.
func (s *Session) Query(src string) *Query {
	cat := lang.CatalogFunc(func(name string) (schema.Schema, bool) {
		_, sch, ok := s.reg.FindDataset(name)
		return sch, ok
	})
	n, err := lang.Compile(src, cat)
	return &Query{s: s, node: n, err: err}
}

// remoteTransport is the client half a remote provider rides on: both
// the dedicated-connection TCP transport and the multiplexed Mux
// satisfy it.
type remoteTransport interface {
	federation.StreamTransport
	Hello() wire.HelloInfo
	Capabilities() provider.Capabilities
	Append(name string, t *table.Table, m *federation.Metrics) error
	Close()
}

// remoteProvider adapts a remote transport into the provider interface
// so the planner treats remote servers like local engines.
type remoteProvider struct {
	tr remoteTransport
}

var _ provider.Provider = (*remoteProvider)(nil)

func (r *remoteProvider) Name() string { return r.tr.ProviderName() }

func (r *remoteProvider) Capabilities() provider.Capabilities { return r.tr.Capabilities() }

func (r *remoteProvider) Datasets() []provider.DatasetInfo {
	h := r.tr.Hello()
	out := make([]provider.DatasetInfo, 0, len(h.Datasets))
	for _, ds := range h.Datasets {
		sch, err := decodeSchema(ds.Schema)
		if err != nil {
			continue
		}
		out = append(out, provider.DatasetInfo{Name: ds.Name, Schema: sch, Rows: ds.Rows})
	}
	return out
}

func (r *remoteProvider) DatasetSchema(name string) (schema.Schema, bool) {
	for _, ds := range r.Datasets() {
		if ds.Name == name {
			return ds.Schema, true
		}
	}
	return schema.Schema{}, false
}

func (r *remoteProvider) Execute(plan coreNode) (*table.Table, error) {
	return r.tr.Execute(plan, nil)
}

func (r *remoteProvider) Store(name string, t *table.Table) error {
	return r.tr.Store(name, t, nil)
}

// Append implements provider.Appender: the server does the append
// natively (durable servers via their WAL).
func (r *remoteProvider) Append(name string, t *table.Table) error {
	return r.tr.Append(name, t, nil)
}

// Durable reports what the server declared at hello time, so remote
// -data-dir servers list their datasets as durable in the catalog.
func (r *remoteProvider) Durable() bool { return r.tr.Hello().Durable }

func (r *remoteProvider) Drop(name string) { r.tr.Drop(name, nil) }

// Demo loads the synthetic star schema, matrices, a graph and a series
// into the session's providers so the shell and quickstart have data to
// play with. It stores relational data on the first provider and array
// data on the last (spreading data across providers when several exist).
func (s *Session) Demo() error {
	names := s.reg.Names()
	if len(names) == 0 {
		return fmt.Errorf("nexus: no providers registered")
	}
	first, last := names[0], names[len(names)-1]
	rel := map[string]*table.Table{
		"sales":     datagen.Sales(1, 10000, 500, 100),
		"customers": datagen.Customers(2, 500),
		"products":  datagen.Products(3, 100),
		"edges":     datagen.ZipfGraph(4, 2000, 10000),
		"vertices":  graph.VerticesTable(2000),
	}
	arr := map[string]*table.Table{
		"A":      datagen.Matrix(5, 64, 64, "i", "k"),
		"B":      datagen.Matrix(6, 64, 64, "k", "j"),
		"series": datagen.Series(7, 2000),
		"grid":   datagen.Grid(8, 64, 64),
	}
	pf, _ := s.reg.Get(first)
	pl, _ := s.reg.Get(last)
	for name, t := range rel {
		if err := pf.Store(name, t); err != nil {
			return err
		}
	}
	for name, t := range arr {
		if err := pl.Store(name, t); err != nil {
			return err
		}
	}
	return nil
}
