package nexus

import (
	"fmt"
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/federation"
	"nexus/internal/obs/trace"
	"nexus/internal/planner"
	"nexus/internal/schema"
	"nexus/internal/server"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// Internal aliases keeping session.go readable without exposing the core
// package in public signatures.
type coreNode = core.Node

func coreScan(name string, sch schema.Schema) (core.Node, error) { return core.NewScan(name, sch) }
func coreLiteral(t *table.Table) (core.Node, error)              { return core.NewLiteral(t) }

func decodeSchema(b []byte) (schema.Schema, error) {
	d := wire.NewDecoder(b)
	s := wire.GetSchema(d)
	return s, d.Err()
}

// Query is an immutable, error-carrying query builder over the Big Data
// algebra. Every method returns a new Query; the first construction error
// sticks and is reported by Collect, so chains need a single check.
type Query struct {
	s      *Session
	node   core.Node
	err    error
	traced bool
}

func (q *Query) derive(n core.Node, err error) *Query {
	if q.err != nil {
		return q
	}
	if err != nil {
		return &Query{s: q.s, err: err, traced: q.traced}
	}
	return &Query{s: q.s, node: n, traced: q.traced}
}

// Trace marks the query for end-to-end distributed tracing: Collect
// opens a span — under the session's trace when a connection was made
// with ConnectOptions.Trace, else a fresh root — and propagates its
// context to every server a fragment runs on, so admission, exec
// kernels and storage scans there join this query's trace. The trace
// id is reported by Metrics.TraceID (CollectWithMetrics) and at each
// node's /debug/traces endpoint.
func (q *Query) Trace() *Query {
	nq := *q
	nq.traced = true
	return &nq
}

// Err returns the first construction error, if any.
func (q *Query) Err() error { return q.err }

// Plan returns the underlying algebra plan (for Explain-style tooling).
func (q *Query) Plan() (core.Node, error) {
	if q.err != nil {
		return nil, q.err
	}
	return q.node, nil
}

// Schema renders the query's output schema.
func (q *Query) Schema() (string, error) {
	if q.err != nil {
		return "", q.err
	}
	return q.node.Schema().String(), nil
}

// Where keeps rows satisfying the predicate.
func (q *Query) Where(pred Expr) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewFilter(q.node, pred))
}

// Select keeps the named columns.
func (q *Query) Select(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewProject(q.node, cols))
}

// Extend appends a computed column.
func (q *Query) Extend(name string, e Expr) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewExtend(q.node, []core.ColDef{{Name: name, E: e}}))
}

// Rename renames one column.
func (q *Query) Rename(from, to string) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewRename(q.node, []string{from}, []string{to}))
}

// Join equijoins with another query.
func (q *Query) Join(other *Query, typ JoinType, keys ...JoinKey) *Query {
	return q.JoinWhere(other, typ, nil, keys...)
}

// JoinWhere equijoins with an extra residual predicate over the combined
// schema.
func (q *Query) JoinWhere(other *Query, typ JoinType, residual Expr, keys ...JoinKey) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return &Query{s: q.s, err: other.err}
	}
	lk := make([]string, len(keys))
	rk := make([]string, len(keys))
	for i, k := range keys {
		lk[i] = k.Left
		rk[i] = k.Right
	}
	return q.derive(core.NewJoin(q.node, other.node, typ, lk, rk, residual))
}

// Product crosses with another query.
func (q *Query) Product(other *Query) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return &Query{s: q.s, err: other.err}
	}
	return q.derive(core.NewProduct(q.node, other.node))
}

// GroupedQuery is the intermediate state of a GroupBy; finish with Agg.
type GroupedQuery struct {
	q    *Query
	keys []string
}

// GroupBy starts a grouped aggregation; complete it with Agg.
func (q *Query) GroupBy(keys ...string) *GroupedQuery { return &GroupedQuery{q: q, keys: keys} }

// Agg finishes a grouped aggregation.
func (g *GroupedQuery) Agg(aggs ...AggSpec) *Query {
	if g.q.err != nil {
		return g.q
	}
	return g.q.derive(core.NewGroupAgg(g.q.node, g.keys, aggs))
}

// Agg aggregates the whole input to one row.
func (q *Query) Agg(aggs ...AggSpec) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewGroupAgg(q.node, nil, aggs))
}

// Distinct removes duplicate rows.
func (q *Query) Distinct() *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewDistinct(q.node))
}

// OrderBy sorts by the keys.
func (q *Query) OrderBy(keys ...SortKey) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewSort(q.node, keys))
}

// Limit keeps the first n rows.
func (q *Query) Limit(n int64) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewLimit(q.node, n, 0))
}

// LimitOffset keeps rows [offset, offset+n).
func (q *Query) LimitOffset(n, offset int64) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewLimit(q.node, n, offset))
}

// Union appends another query's rows (set semantics unless all).
func (q *Query) Union(other *Query, all bool) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return &Query{s: q.s, err: other.err}
	}
	return q.derive(core.NewUnion(q.node, other.node, all))
}

// Except removes rows present in the other query (set semantics).
func (q *Query) Except(other *Query) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return &Query{s: q.s, err: other.err}
	}
	return q.derive(core.NewExcept(q.node, other.node))
}

// Intersect keeps rows present in both queries (set semantics).
func (q *Query) Intersect(other *Query) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return &Query{s: q.s, err: other.err}
	}
	return q.derive(core.NewIntersect(q.node, other.node))
}

// AsArray tags the named int64 columns as dimensions.
func (q *Query) AsArray(dims ...string) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewAsArray(q.node, dims))
}

// DropDims clears all dimension tags.
func (q *Query) DropDims() *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewDropDims(q.node))
}

// Slice fixes a dimension at a coordinate, removing it.
func (q *Query) Slice(dim string, at int64) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewSliceDim(q.node, dim, at))
}

// Dice restricts dimensions to a box.
func (q *Query) Dice(bounds ...DimBound) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewDice(q.node, bounds))
}

// Transpose reorders the dimensions.
func (q *Query) Transpose(perm ...string) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewTranspose(q.node, perm))
}

// Window computes a moving-window aggregate over the dimension box.
func (q *Query) Window(extents []DimExtent, agg AggFunc, arg, as string) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewWindow(q.node, extents, agg, arg, as))
}

// ReduceDims aggregates away the listed dimensions.
func (q *Query) ReduceDims(over []string, aggs ...AggSpec) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewReduceDims(q.node, over, aggs))
}

// Fill densifies the dimension box with a default cell value (pass nil
// for NULL).
func (q *Query) Fill(def any) *Query {
	if q.err != nil {
		return q
	}
	v, err := goValue(def)
	if err != nil {
		return &Query{s: q.s, err: err}
	}
	return q.derive(core.NewFill(q.node, v))
}

// Shift translates a dimension's coordinates.
func (q *Query) Shift(dim string, offset int64) *Query {
	if q.err != nil {
		return q
	}
	return q.derive(core.NewShift(q.node, dim, offset))
}

// MatMul multiplies this 2-D array query with another; the result's value
// attribute is named as.
func (q *Query) MatMul(other *Query, as string) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return &Query{s: q.s, err: other.err}
	}
	return q.derive(core.NewMatMul(q.node, other.node, as))
}

// ElemWise aligns two arrays on their dimensions and combines their value
// attributes with +, -, * or /.
func (q *Query) ElemWise(other *Query, op string, as string) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return &Query{s: q.s, err: other.err}
	}
	var bop value.BinOp
	switch op {
	case "+":
		bop = value.OpAdd
	case "-":
		bop = value.OpSub
	case "*":
		bop = value.OpMul
	case "/":
		bop = value.OpDiv
	default:
		return &Query{s: q.s, err: fmt.Errorf("nexus: elemwise op must be one of + - * /, got %q", op)}
	}
	return q.derive(core.NewElemWise(q.node, other.node, bop, as))
}

// Iterate builds a control-iteration fixpoint: body receives a query
// denoting the previous iteration's state and returns the next state
// (same schema). A nil conv runs exactly maxIters iterations.
func (s *Session) Iterate(loopVar string, init *Query, body func(loop *Query) *Query, maxIters int, conv *Convergence) *Query {
	if init.err != nil {
		return init
	}
	v, err := core.NewVar(loopVar, init.node.Schema())
	if err != nil {
		return &Query{s: s, err: err}
	}
	bodyQ := body(&Query{s: s, node: v})
	if bodyQ.err != nil {
		return bodyQ
	}
	return init.derive(core.NewIterate(init.node, bodyQ.node, loopVar, maxIters, conv))
}

// Let binds a sub-query once and makes it available to the body as a
// variable reference (common subexpression).
func (s *Session) Let(name string, bound *Query, body func(ref *Query) *Query) *Query {
	if bound.err != nil {
		return bound
	}
	v, err := core.NewVar(name, bound.node.Schema())
	if err != nil {
		return &Query{s: s, err: err}
	}
	bodyQ := body(&Query{s: s, node: v})
	if bodyQ.err != nil {
		return bodyQ
	}
	return bound.derive(core.NewLet(name, bound.node, bodyQ.node))
}

func goValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.NewBool(x), nil
	case int:
		return value.NewInt(int64(x)), nil
	case int64:
		return value.NewInt(x), nil
	case float64:
		return value.NewFloat(x), nil
	case string:
		return value.NewString(x), nil
	}
	return value.Null, fmt.Errorf("nexus: unsupported value type %T", v)
}

// Explain returns the optimized plan and its fragment assignment as text.
func (q *Query) Explain() (string, error) {
	if q.err != nil {
		return "", q.err
	}
	opt, err := planner.Optimize(q.node, q.s.opts)
	if err != nil {
		return "", err
	}
	out := "plan:\n" + core.Explain(opt)
	pp, err := planner.Partition(opt, q.s.reg, q.s.opts)
	if err != nil {
		return out, nil // single-engine sessions may lack providers for parts
	}
	return out + "fragments:\n" + pp.String(), nil
}

// tracedExecutor is the optional engine interface ExplainAnalyze uses:
// every local engine implements it; remote providers do not (their
// operators run in another process).
type tracedExecutor interface {
	ExecuteTraced(plan core.Node, tr *exec.Trace) (*table.Table, error)
}

// ExplainAnalyze executes the query with a per-operator trace and
// renders the plan annotated with each operator's observed calls,
// output rows and inclusive wall time. Plans that span fragments or run
// on remote providers fall back to whole-query timing — per-operator
// traces need a local runtime.
func (q *Query) ExplainAnalyze() (string, error) {
	if q.err != nil {
		return "", q.err
	}
	opt, err := planner.Optimize(q.node, q.s.opts)
	if err != nil {
		return "", err
	}
	pp, err := planner.Partition(opt, q.s.reg, q.s.opts)
	if err == nil && len(pp.Fragments) == 1 {
		frag := pp.Root()
		if p, ok := q.s.reg.Get(frag.Provider); ok {
			if te, ok := p.(tracedExecutor); ok {
				tr := exec.NewTrace()
				start := time.Now()
				t, err := te.ExecuteTraced(frag.Plan, tr)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("plan (analyzed on %s):\n%stotal: %d rows in %s\n",
					frag.Provider, exec.ExplainAnalyze(frag.Plan, tr),
					t.NumRows(), time.Since(start).Round(time.Microsecond)), nil
			}
		}
	}
	start := time.Now()
	t, m, err := q.CollectWithMetrics()
	if err != nil {
		return "", err
	}
	out, err := q.Explain()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%stotal: %d rows in %s across %d fragments (per-operator timing needs a single local fragment)\n",
		out, t.NumRows(), time.Since(start).Round(time.Microsecond), m.Fragments), nil
}

// Collect optimizes, partitions and executes the query, returning the
// result collection.
func (q *Query) Collect() (*Table, error) {
	t, _, err := q.CollectWithMetrics()
	return t, err
}

// CollectWithMetrics is Collect plus traffic metrics for federated
// executions (zero-valued for single-fragment local plans).
func (q *Query) CollectWithMetrics() (*Table, *Metrics, error) {
	if q.err != nil {
		return nil, nil, q.err
	}
	opt, err := planner.Optimize(q.node, q.s.opts)
	if err != nil {
		return nil, nil, err
	}
	pp, err := planner.Partition(opt, q.s.reg, q.s.opts)
	if err != nil {
		return nil, nil, err
	}
	// A traced query gets a span under the session trace (or a fresh
	// root), whose context rides on every fragment request.
	var sp *trace.Span
	if q.traced {
		if q.s.root != nil {
			sp = q.s.root.Child("query")
		} else {
			sp = trace.Default.NewRoot("query")
		}
	}
	// Single local fragment: skip the coordinator (and its wire codec
	// round trip) entirely.
	if len(pp.Fragments) == 1 {
		frag := pp.Root()
		if p, ok := q.s.reg.Get(frag.Provider); ok {
			if _, isRemote := p.(*remoteProvider); !isRemote {
				var t *table.Table
				if te, ok := p.(tracedExecutor); ok && sp != nil {
					// Trace the local execution the same way a server
					// traces a remote one: per-operator exec spans.
					tr := exec.NewTrace()
					start := time.Now()
					t, err = te.ExecuteTraced(frag.Plan, tr)
					server.EmitPlanSpans(sp.Context(), frag.Plan, tr, start)
				} else {
					t, err = p.Execute(frag.Plan)
				}
				sp.Set(trace.String("provider", frag.Provider))
				sp.End(err)
				if err != nil {
					return nil, nil, err
				}
				return wrapTable(t), &Metrics{Fragments: 1, Trace: toWireTrace(sp.Context())}, nil
			}
		}
	}
	coord := federation.NewCoordinator(q.s.transports...)
	t, m, err := coord.RunTraced(pp, q.s.mode, toWireTrace(sp.Context()))
	sp.End(err)
	if err != nil {
		return nil, m, err
	}
	return wrapTable(t), m, nil
}
