package nexus_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"nexus"
	"nexus/internal/schema"
	"nexus/internal/server"
	"nexus/internal/storage"
	"nexus/internal/table"
	"nexus/internal/value"
)

// internalEventTable builds the same (ts, sym, vol, price) rows as
// eventTable, as an internal table the storage engine accepts directly.
func internalEventTable(lo, hi int64) *table.Table {
	sch := schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64},
		schema.Attribute{Name: "sym", Kind: value.KindString},
		schema.Attribute{Name: "vol", Kind: value.KindInt64},
		schema.Attribute{Name: "price", Kind: value.KindFloat64},
	)
	syms := []string{"AAA", "BBB", "CCC", "DDD"}
	b := table.NewBuilder(sch, int(hi-lo))
	for i := lo; i < hi; i++ {
		b.MustAppend(value.NewInt(i), value.NewString(syms[i%4]), value.NewInt(i%100), value.NewFloat(float64(i%50)+0.5))
	}
	return b.Build()
}

// TestStaleResumeTokenRefusedAPI is the public-API regression for the
// stale-resume corruption: a client detaches a dataset-replay
// subscription and holds the ResumeToken while background compaction
// re-sorts the dataset's rows. The token's row offset then addresses
// different rows, so resuming it would silently skip the wrong prefix.
// The token must resume cleanly while the row order holds and be
// refused with a clear error once compaction bumps the order epoch.
func TestStaleResumeTokenRefusedAPI(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.OpenEngine("dur", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Several appends, each flushed to its own segment, so a compaction
	// pass has segments to merge (and re-sort).
	const totalRows = 20000
	for lo := int64(0); lo < totalRows; lo += totalRows / 4 {
		if err := eng.Append("events", internalEventTable(lo, lo+totalRows/4)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := server.Serve(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	defer srv.Close()

	s := nexus.NewSession()
	prov, err := s.ConnectTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	mkQuery := func() *nexus.StreamQuery {
		return s.StreamScan("events", "ts").
			Window(nexus.Tumbling(500)).
			GroupBy("sym").
			Agg(nexus.Count("n"), nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("vol"))))
	}

	// Detach mid-replay: backpressure after the first windows keeps the
	// server-side pipeline mid-stream while we capture the token.
	var mu sync.Mutex
	seen := 0
	got2 := make(chan struct{})
	rs, err := mkQuery().SubscribeRemoteDetachable(context.Background(), []string{prov}, func(*nexus.Table) error {
		mu.Lock()
		seen++
		if seen == 2 {
			close(got2)
		}
		n := seen
		mu.Unlock()
		if n >= 2 {
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-got2
	tokens, err := rs.Detach()
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 1 {
		t.Fatalf("detach returned %d tokens for 1 provider", len(tokens))
	}
	if off := tokens[0].Offset(); off <= 0 || off >= totalRows {
		t.Fatalf("token offset %d, want mid-stream", off)
	}

	// Positive control: while the dataset keeps its row order, the held
	// token resumes and finishes the replay.
	stats, err := mkQuery().ResumeFrom(tokens).SubscribeRemote(context.Background(), []string{prov}, func(*nexus.Table) error {
		return nil
	})
	if err != nil {
		t.Fatalf("same-epoch resume refused: %v", err)
	}
	if stats.Events != totalRows-tokens[0].Offset() {
		t.Fatalf("resumed leg consumed %d events, want %d", stats.Events, totalRows-tokens[0].Offset())
	}

	// Compaction re-sorts the rows (cluster by sym) and bumps the
	// dataset's order epoch; the held token now points into an ordering
	// that no longer exists.
	cstats, err := eng.Compact(storage.CompactOptions{ClusterBy: map[string]string{"events": "sym"}})
	if err != nil {
		t.Fatal(err)
	}
	if cstats.Merged == 0 {
		t.Fatal("compaction merged nothing; the order epoch cannot have moved")
	}

	_, err = mkQuery().ResumeFrom(tokens).SubscribeRemote(context.Background(), []string{prov}, func(*nexus.Table) error {
		return nil
	})
	if err == nil {
		t.Fatal("stale token resumed against a re-sorted dataset")
	}
	if !strings.Contains(err.Error(), "order epoch") || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("refusal does not explain the stale epoch: %v", err)
	}
}
