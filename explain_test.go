package nexus_test

import (
	"context"
	"strings"
	"testing"

	"nexus"
)

// TestExplainAnalyzeBatch pins the per-operator trace on a batch query:
// every executed operator line carries calls/rows/time, the row counts
// are the real ones, and the report ends with a whole-query total.
func TestExplainAnalyzeBatch(t *testing.T) {
	s := nexus.NewSession()
	prov, err := s.AddEngine(nexus.Relational, "r")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(prov, "sales", eventTable(0, 500)); err != nil {
		t.Fatal(err)
	}
	out, err := s.Scan("sales").
		Where(nexus.Gt(nexus.Col("vol"), nexus.Int(49))).
		Select("ts", "sym").
		ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan (analyzed on", "calls=1", "rows=250", "total: 250 rows in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(not executed)") {
		t.Fatalf("unexecuted nodes in a fully generic plan:\n%s", out)
	}
}

// TestExplainAnalyzeStream pins the streaming trace: both stage plans
// render, the per-batch plan's calls accumulate across micro-batches,
// and the total line reports the stream's event and window counts.
func TestExplainAnalyzeStream(t *testing.T) {
	s := nexus.NewSession()
	prov, err := s.AddEngine(nexus.Relational, "r")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(prov, "sales", eventTable(0, 1000)); err != nil {
		t.Fatal(err)
	}
	out, err := s.StreamScan("sales", "ts").
		BatchSize(100).
		Window(nexus.Tumbling(200)).
		GroupBy("sym").
		Agg(nexus.Count("n")).
		ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"per-batch plan (10 micro-batches):", "calls=10", "total: 1000 events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
