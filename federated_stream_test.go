package nexus_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"nexus"
	"nexus/internal/engines/relational"
	"nexus/internal/server"
)

func eventCols() []nexus.ColumnDef {
	return []nexus.ColumnDef{
		{Name: "ts", Type: nexus.Int64},
		{Name: "k", Type: nexus.Int64},
		{Name: "v", Type: nexus.Float64},
	}
}

func eventSource(t *testing.T, n int64) nexus.StreamSource {
	t.Helper()
	src, err := nexus.GenerateSource("ts", n, func(i int64) []any {
		return []any{i - i%5, i % 7, float64(i%40) / 4}
	}, eventCols()...)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// windowedQuery builds the shared test query: filter + tumbling windowed
// revenue per key.
func windowedQuery(s *nexus.Session, src nexus.StreamSource) *nexus.StreamQuery {
	return s.StreamFrom(src).
		AllowedLateness(5).
		BatchSize(64).
		Window(nexus.Tumbling(25)).
		GroupBy("k").
		Agg(nexus.Sum("sv", nexus.Col("v")), nexus.Count("n"))
}

// tableRows renders sorted row strings for order-independent comparison.
func tableRows(t *testing.T, tab *nexus.Table) []string {
	t.Helper()
	names := tab.ColumnNames()
	rows := make([]string, tab.NumRows())
	for i := 0; i < tab.NumRows(); i++ {
		parts := make([]string, len(names))
		for c, name := range names {
			v, err := tab.Value(i, name)
			if err != nil {
				t.Fatal(err)
			}
			parts[c] = fmt.Sprintf("%v", v)
		}
		rows[i] = fmt.Sprint(parts)
	}
	sort.Strings(rows)
	return rows
}

// TestSubscribeRemoteMatchesLocal: the same windowed stream query
// produces identical results executed in process and as a federated
// subscription on one in-process provider.
func TestSubscribeRemoteMatchesLocal(t *testing.T) {
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "p0"); err != nil {
		t.Fatal(err)
	}
	local, err := windowedQuery(s, eventSource(t, 500)).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := windowedQuery(s, eventSource(t, 500)).CollectRemote(context.Background(), "p0")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tableRows(t, local), tableRows(t, remote)) {
		t.Fatalf("remote subscription differs from local run:\nlocal %d rows, remote %d rows", local.NumRows(), remote.NumRows())
	}
}

// TestPartitionedFanOut: PartitionBy splits a pushed stream across three
// in-process providers; the watermark-ordered merge reproduces the local
// run exactly (time windows are partition-invariant).
func TestPartitionedFanOut(t *testing.T) {
	s := nexus.NewSession()
	for i := 0; i < 3; i++ {
		if _, err := s.AddEngine(nexus.Relational, fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	local, err := windowedQuery(s, eventSource(t, 900)).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	lastStart := int64(-1 << 62)
	ordered := true
	stats, err := windowedQuery(s, eventSource(t, 900)).
		PartitionBy("k").
		SubscribeRemote(context.Background(), []string{"p0", "p1", "p2"}, func(tab *nexus.Table) error {
			mu.Lock()
			defer mu.Unlock()
			// Windowed merge must deliver in ascending window order.
			starts, err := tab.Ints("window_start")
			if err != nil {
				return err
			}
			for _, st := range starts {
				if st < lastStart {
					ordered = false
				}
				lastStart = st
			}
			got = append(got, tableRows(t, tab)...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 900 {
		t.Fatalf("partitions consumed %d events, want 900", stats.Events)
	}
	if !ordered {
		t.Fatal("merged windows arrived out of watermark order")
	}
	sort.Strings(got)
	if want := tableRows(t, local); !reflect.DeepEqual(got, want) {
		t.Fatalf("partitioned fan-out differs from local run: got %d rows, want %d", len(got), len(want))
	}
}

// TestFederatedStreamSmoke is the CI smoke: two real servers on
// loopback, one windowed partitioned subscription over TCP, at least one
// result batch.
func TestFederatedStreamSmoke(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		eng := relational.New(fmt.Sprintf("srv%d", i))
		srv, err := server.Serve(eng, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.Logf = func(string, ...any) {}
		t.Cleanup(srv.Close)
		addrs = append(addrs, srv.Addr())
	}
	s := nexus.NewSession()
	var names []string
	for _, addr := range addrs {
		name, err := s.ConnectTCP(addr)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	batches := 0
	_, err := windowedQuery(s, eventSource(t, 400)).
		PartitionBy("k").
		SubscribeRemote(ctx, names, func(tab *nexus.Table) error {
			if tab.NumRows() > 0 {
				batches++
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if batches < 1 {
		t.Fatalf("smoke subscription yielded %d result batches, want ≥ 1", batches)
	}
}

// TestPartitionKeyMustBeGroupKey: splitting a windowed stream on a
// column that is not a group key would return partial aggregates per
// partition — it must be refused up front.
func TestPartitionKeyMustBeGroupKey(t *testing.T) {
	s := nexus.NewSession()
	for i := 0; i < 2; i++ {
		if _, err := s.AddEngine(nexus.Relational, fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.StreamFrom(eventSource(t, 10)).
		Window(nexus.Tumbling(25)).
		GroupBy("k").
		Agg(nexus.Count("n")).
		PartitionBy("v"). // not a group key: groups would span partitions
		SubscribeRemote(context.Background(), []string{"p0", "p1"}, func(*nexus.Table) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "GroupBy") {
		t.Fatalf("cross-partition grouping accepted: %v", err)
	}
}

// TestStreamScanRemote: a StreamScan query subscribed remotely replays
// the dataset on the serving provider (no event shipping) and matches
// the local replay.
func TestStreamScanRemote(t *testing.T) {
	s := nexus.NewSession()
	if _, err := s.AddEngine(nexus.Relational, "p0"); err != nil {
		t.Fatal(err)
	}
	tb := nexus.NewTableBuilder(eventCols()...)
	for i := 0; i < 300; i++ {
		tb.Append(int64(i), int64(i%3), float64(i%11))
	}
	tab, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store("p0", "events", tab); err != nil {
		t.Fatal(err)
	}
	q := func() *nexus.StreamQuery {
		return s.StreamScan("events", "ts").
			Window(nexus.Tumbling(50)).
			GroupBy("k").
			Agg(nexus.Sum("sv", nexus.Col("v")), nexus.Count("n"))
	}
	local, err := q().Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := q().CollectRemote(context.Background(), "p0")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tableRows(t, local), tableRows(t, remote)) {
		t.Fatal("remote dataset replay differs from local StreamScan")
	}
}
