package nexus

import (
	"nexus/internal/obs/trace"
	"nexus/internal/wire"
)

// End-to-end tracing at the public API: a Session opened with
// ConnectOptions.Trace (or a Query/StreamQuery marked with Trace)
// records client spans into the process tracer and propagates the
// trace context to every server the work touches, so one trace id
// follows the request through the mux handshake, server admission,
// exec kernels, storage scans, partition fan-out and — for failover
// subscriptions — the redial onto a replica. Inspect the assembled
// trace at each node's /debug/traces sidecar endpoint.

// toWireTrace converts a tracer context to its wire form.
func toWireTrace(c trace.Context) wire.TraceCtx {
	return wire.TraceCtx{TraceID: [16]byte(c.TraceID), SpanID: uint64(c.SpanID)}
}

// traceRoot lazily opens the session's root span. Everything traced
// through this session — connects, queries, subscriptions — parents
// under it, so the whole session shares one trace id.
func (s *Session) traceRoot() *trace.Span {
	if s.root == nil {
		s.root = trace.Default.NewRoot("session")
	}
	return s.root
}

// TraceID returns the session's trace id as lowercase hex, "" when
// nothing traced through this session yet. Paste it into a node's
// /debug/traces?trace= endpoint to see the session's spans there.
func (s *Session) TraceID() string {
	if s.root == nil {
		return ""
	}
	return s.root.TraceID().String()
}
