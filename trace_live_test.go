package nexus_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"nexus"
	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/federation"
	"nexus/internal/obs"
	"nexus/internal/obs/trace"
	"nexus/internal/replication"
	"nexus/internal/schema"
	"nexus/internal/server"
	"nexus/internal/storage"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// Cross-process trace differential: one trace id minted by a client
// Session must be visible, with correctly parented spans, at
// /debug/traces on BOTH a primary and — after an induced SIGKILL
// failover — the replica that picked the stream up. This is the
// acceptance test for distributed tracing: in-process tests cannot
// catch a context that is dropped at a process boundary, a sidecar
// serving the wrong tracer, or a redial that forgets to re-send the
// trace field.

func traceEventSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64},
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "v", Kind: value.KindInt64},
	)
}

func traceEventsTable(lo, hi int) *table.Table {
	b := table.NewBuilder(traceEventSchema(), hi-lo)
	for i := lo; i < hi; i++ {
		b.MustAppend(value.NewInt(int64(i)), value.NewInt(int64(i%4)), value.NewInt(int64(i)*3))
	}
	return b.Build()
}

func traceWindowedSpec(t *testing.T) stream.Spec {
	t.Helper()
	v, err := core.NewVar(stream.BatchVar, traceEventSchema())
	if err != nil {
		t.Fatal(err)
	}
	return stream.Spec{
		Pre:      v,
		Windowed: true,
		Win:      core.StreamWindow{Kind: core.WindowTumbling, Size: 100, Slide: 100},
		Keys:     []string{"k"},
		Aggs: []core.AggSpec{
			{Func: core.AggSum, Arg: expr.Column("v"), As: "s"},
			{Func: core.AggCount, As: "n"},
		},
		BatchSize: 50,
	}
}

const traceLiveRows = 2000

// TestTraceLiveHelper is the child entry point for both roles; skipped
// unless re-executed with NEXUS_TRACE_MODE set. Each child announces
// "ADDR <wire addr>" then "HTTP <sidecar addr>" on stdout and runs
// until killed.
func TestTraceLiveHelper(t *testing.T) {
	mode := os.Getenv("NEXUS_TRACE_MODE")
	if mode == "" {
		t.Skip("trace live helper (only runs re-executed)")
	}
	die := func(err error) {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	eng, err := storage.OpenEngine("p", os.Getenv("NEXUS_TRACE_DIR"))
	if err != nil {
		die(err)
	}
	trace.Default.SetService(mode)

	switch mode {
	case "primary":
		// Seed in several flushed segments so the traced query's
		// storage.scan span has real segment/byte statistics to report.
		for lo := 0; lo < traceLiveRows; lo += 500 {
			if err := eng.Append("events", traceEventsTable(lo, lo+500)); err != nil {
				die(err)
			}
			if err := eng.Flush(); err != nil {
				die(err)
			}
		}
	case "replica":
		eng.SetReplica(true)
		rep := replication.New(eng, replication.Config{
			Primary:  os.Getenv("NEXUS_TRACE_PRIMARY"),
			Interval: 25 * time.Millisecond,
		})
		rep.Start() // runs forever: mid-stream checkpoints keep syncing
		deadline := time.Now().Add(10 * time.Second)
		for {
			st := rep.Status()
			if st.Err == "" && st.Gen > 0 && st.Gen == st.PrimaryGen {
				break
			}
			if time.Now().After(deadline) {
				die(fmt.Errorf("replica never caught up: %+v", st))
			}
			time.Sleep(10 * time.Millisecond)
		}
	default:
		die(fmt.Errorf("unknown mode %q", mode))
	}

	srv, err := server.ServeWithCheckpoints(eng, "127.0.0.1:0", eng.Backing(), 0)
	if err != nil {
		die(err)
	}
	srv.Logf = func(string, ...any) {}
	// Admission control must be live for the server.admission span to
	// exist at all; an empty default quota admits everything.
	srv.SetAdmission(server.AdmissionConfig{Default: server.TenantQuota{}})

	h := obs.NewHandler(obs.Default, nil)
	h.Handle("/debug/traces", trace.TraceHandler(trace.Default))
	h.Handle("/debug/ops", trace.OpsHandler(trace.Ops()))
	bound, _, err := obs.ServeHandler("127.0.0.1:0", h)
	if err != nil {
		die(err)
	}
	fmt.Println("ADDR", srv.Addr())
	fmt.Println("HTTP", bound)
	select {} // run until killed
}

// spawnTraceNode re-executes the test binary as one cluster node and
// returns its wire address, sidecar address, and a SIGKILL closure.
func spawnTraceNode(t *testing.T, mode string, extraEnv ...string) (addr, httpAddr string, kill func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestTraceLiveHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"NEXUS_TRACE_MODE="+mode, "NEXUS_TRACE_DIR="+t.TempDir())
	cmd.Env = append(cmd.Env, extraEnv...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	kill = func() {
		once.Do(func() {
			_ = cmd.Process.Kill() // SIGKILL: no shutdown path runs
			_, _ = cmd.Process.Wait()
		})
	}
	t.Cleanup(kill)
	sc := bufio.NewScanner(out)
	for addr == "" || httpAddr == "" {
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		if strings.HasPrefix(line, "ERR") {
			t.Fatalf("%s helper: %s", mode, line)
		}
		if rest, ok := strings.CutPrefix(line, "ADDR "); ok {
			addr = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(line, "HTTP "); ok {
			httpAddr = strings.TrimSpace(rest)
		}
	}
	if addr == "" || httpAddr == "" {
		kill()
		t.Fatalf("%s helper announced addr=%q http=%q: %v", mode, addr, httpAddr, sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return addr, httpAddr, kill
}

// scrapedSpan mirrors trace.SpanData's JSON.
type scrapedSpan struct {
	TraceID  string `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id"`
	Service  string `json:"service"`
	Name     string `json:"name"`
	Error    string `json:"error"`
}

// scrapeTrace fetches /debug/traces?trace=id from a sidecar.
func scrapeTrace(t *testing.T, httpAddr, traceID string) []scrapedSpan {
	t.Helper()
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + httpAddr + "/debug/traces?trace=" + traceID)
	if err != nil {
		t.Fatalf("scrape %s: %v", httpAddr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("scrape %s: status %d err %v", httpAddr, resp.StatusCode, err)
	}
	var payload struct {
		Spans []scrapedSpan `json:"spans"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("scrape %s: bad JSON %v in %s", httpAddr, err, body)
	}
	return payload.Spans
}

// waitForSpans polls a sidecar until every wanted span name appears in
// the trace (server-side spans record when handlers finish, which can
// trail the client's response by a beat).
func waitForSpans(t *testing.T, httpAddr, traceID string, want ...string) []scrapedSpan {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		spans := scrapeTrace(t, httpAddr, traceID)
		have := map[string]bool{}
		for _, sp := range spans {
			have[sp.Name] = true
		}
		missing := ""
		for _, w := range want {
			if !have[w] {
				missing = w
				break
			}
		}
		if missing == "" {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: span %q never appeared in trace %s; have %v",
				httpAddr, missing, traceID, spanNames(spans))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func spanNames(spans []scrapedSpan) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

func TestCrossProcessTraceDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess trace test")
	}
	primaryAddr, primaryHTTP, killPrimary := spawnTraceNode(t, "primary")
	replicaAddr, replicaHTTP, _ := spawnTraceNode(t, "replica",
		"NEXUS_TRACE_PRIMARY="+primaryAddr)

	// One traced session over the multiplexed front door. The dial and
	// hello record under the session's root, so the server's handshake
	// span lands in the same trace as everything that follows.
	s := nexus.NewSession()
	if _, err := s.Connect(primaryAddr, nexus.ConnectOptions{
		Mux: true, Tenant: "acme", Trace: true,
	}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	traceID := s.TraceID()
	if traceID == "" {
		t.Fatal("traced connect minted no session trace id")
	}

	// Traced query: client span + server admission/execute/exec/storage
	// spans on the primary, all under the one trace id.
	tbl, m, err := s.Scan("events").
		Where(nexus.Gt(nexus.Col("v"), nexus.Int(10))).
		Trace().
		CollectWithMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() == 0 {
		t.Fatal("traced query returned no rows")
	}
	if m.TraceID() != traceID {
		t.Fatalf("query trace id %q != session trace id %q", m.TraceID(), traceID)
	}

	primarySpans := waitForSpans(t, primaryHTTP, traceID,
		"server.hello", "server.admission", "server.execute", "storage.scan")
	execSpans := 0
	for _, sp := range primarySpans {
		if sp.Service != "primary" {
			t.Fatalf("primary span %q stamped service %q", sp.Name, sp.Service)
		}
		if strings.HasPrefix(sp.Name, "exec:") {
			execSpans++
		}
	}
	if execSpans == 0 {
		t.Fatalf("no exec kernel spans on the primary: %v", spanNames(primarySpans))
	}

	// Failover subscription carrying the same trace. Small credit and a
	// slow consumer keep the stream mid-flight for the kill; the redial
	// re-sends the trace context, which is what stitches the replica in.
	b := federation.NewBackoff(1)
	b.Base, b.Max = 10*time.Millisecond, 100*time.Millisecond
	fo, err := federation.SubscribeFailover(context.Background(),
		[]string{primaryAddr, replicaAddr},
		wire.StreamSub{
			SourceKind: wire.StreamSrcDataset,
			Dataset:    "events", TimeCol: "ts",
			Spec: traceWindowedSpec(t), Durable: "job", Credit: 2,
			Trace: m.Trace,
		},
		federation.FailoverOpts{Backoff: b, Mux: true, Logf: t.Logf},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()

	batches := 0
	for sb := range fo.Batches() {
		if sb.Table == nil {
			continue
		}
		batches++
		if batches == 1 {
			// While the subscription is in flight on the primary, the live
			// ops listing must show it, tied to our trace.
			assertLiveSubscriptionOp(t, primaryHTTP, traceID)
		}
		if batches == 2 {
			killPrimary() // SIGKILL mid-stream: the redial goes to the replica
		}
		if batches >= 2 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := fo.Err(); err != nil {
		t.Fatalf("stream failed terminally: %v", err)
	}
	if fo.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", fo.Failovers())
	}
	if fo.Addr() != replicaAddr {
		t.Fatalf("stream finished on %s, want the replica %s", fo.Addr(), replicaAddr)
	}

	// The replica contributed its spans to the SAME trace id: the
	// post-redial handshake and the resumed subscription.
	replicaSpans := waitForSpans(t, replicaHTTP, traceID,
		"server.hello", "server.subscribe")
	for _, sp := range replicaSpans {
		if sp.Service != "replica" {
			t.Fatalf("replica span %q stamped service %q", sp.Name, sp.Service)
		}
	}

	// Client-side spans sit in this process's ring under the same id.
	s.Close()
	id, ok := trace.ParseTraceID(traceID)
	if !ok {
		t.Fatalf("session trace id %q unparseable", traceID)
	}
	var localSpans []scrapedSpan
	for _, sd := range trace.Default.TraceSpans(id) {
		localSpans = append(localSpans, scrapedSpan{
			TraceID: sd.TraceID, SpanID: uint64(sd.SpanID), ParentID: uint64(sd.ParentID),
			Name: sd.Name, Error: sd.Error,
		})
	}
	local := map[string]bool{}
	for _, sp := range localSpans {
		local[sp.Name] = true
	}
	for _, want := range []string{"session", "client.dial_mux", "query", "client.execute", "client.subscribe", "client.redial"} {
		if !local[want] {
			t.Fatalf("local ring missing span %q for trace %s; have %v", want, traceID, spanNames(localSpans))
		}
	}
	redials := 0
	for _, sp := range localSpans {
		if sp.Name == "client.redial" {
			redials++
		}
	}
	if redials < 2 {
		t.Fatalf("client.redial spans = %d, want >= 2 (initial connect + failover)", redials)
	}

	// Parent links: across all three processes, every span's parent must
	// be another span of the trace (roots excepted) — the differential
	// proof that contexts crossed both wires intact.
	all := append(append(localSpans, primarySpans...), replicaSpans...)
	ids := map[uint64]bool{}
	for _, sp := range all {
		if sp.TraceID != traceID {
			t.Fatalf("span %q carries foreign trace %s", sp.Name, sp.TraceID)
		}
		ids[sp.SpanID] = true
	}
	for _, sp := range all {
		if sp.ParentID == 0 {
			if sp.Name != "session" {
				t.Fatalf("span %q is an unexpected root", sp.Name)
			}
			continue
		}
		if !ids[sp.ParentID] {
			t.Fatalf("span %q (service %q) parent %d not in the combined trace",
				sp.Name, sp.Service, sp.ParentID)
		}
	}
}

// assertLiveSubscriptionOp polls /debug/ops until the in-flight
// subscription shows up with the session's trace id.
func assertLiveSubscriptionOp(t *testing.T, httpAddr, traceID string) {
	t.Helper()
	client := http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(5 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + httpAddr + "/debug/ops")
		if err != nil {
			t.Fatalf("/debug/ops: %v", err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != 200 {
			t.Fatalf("/debug/ops: status %d err %v", resp.StatusCode, rerr)
		}
		var payload struct {
			Ops []struct {
				Kind    string `json:"kind"`
				Dataset string `json:"dataset"`
				TraceID string `json:"trace_id"`
				Credit  int64  `json:"credit"`
			} `json:"ops"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Fatalf("/debug/ops bad JSON: %v in %s", err, body)
		}
		last = string(body)
		for _, op := range payload.Ops {
			if op.Kind == "subscription" && op.Dataset == "events" && op.TraceID == traceID {
				if op.Credit < 0 {
					t.Fatalf("live subscription op reports no credit window: %s", last)
				}
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("no live subscription op for trace %s at %s; last listing: %s", traceID, httpAddr, last)
}
