package nexus_test

import (
	"strings"
	"testing"

	"nexus"
	"nexus/internal/datagen"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/server"
)

// End-to-end over real sockets through the public API: remote providers
// behave exactly like local engines from the session's point of view.
func TestSessionOverTCP(t *testing.T) {
	rel := relational.New("remote-rel")
	if err := rel.Store("sales", datagen.Sales(1, 2000, 100, 30)); err != nil {
		t.Fatal(err)
	}
	if err := rel.Store("customers", datagen.Customers(2, 100)); err != nil {
		t.Fatal(err)
	}
	la := linalg.New("remote-la")
	if err := la.Store("A", datagen.Matrix(3, 16, 16, "i", "k")); err != nil {
		t.Fatal(err)
	}
	if err := la.Store("B", datagen.Matrix(4, 16, 16, "k", "j")); err != nil {
		t.Fatal(err)
	}
	s1, err := server.Serve(rel, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := server.Serve(la, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s1.Logf = t.Logf
	s2.Logf = t.Logf

	s := nexus.NewSession()
	if _, err := s.ConnectTCP(s1.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ConnectTCP(s2.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := s.Providers(); len(got) != 2 || got[0] != "remote-rel" {
		t.Fatalf("providers = %v", got)
	}
	// Catalog discovery across the wire.
	if _, ok := s.DatasetSchema("A"); !ok {
		t.Fatal("remote dataset not discovered")
	}
	infos := s.Datasets()
	if len(infos) != 4 {
		t.Fatalf("expected 4 remote datasets, got %d", len(infos))
	}

	// A relational query against the remote server.
	res, err := s.Query(`
		load sales
		| join (load customers) on cust_id == cust_id
		| group by segment agg rev = sum(price * qty)
		| sort rev desc
	`).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("segments = %d", res.NumRows())
	}

	// A federated matmul: the join+agg spelling over matrices hosted on
	// the remote linalg server, recognized and executed there.
	q := s.Scan("A").
		Join(s.Scan("B"), nexus.Inner, nexus.On("k", "k")).
		GroupBy("i", "j").
		Agg(nexus.Sum("c", nexus.Mul(nexus.Col("v"), nexus.Col("v_r"))))
	mm, metrics, err := q.CollectWithMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumRows() != 16*16 {
		t.Fatalf("matmul cells = %d", mm.NumRows())
	}
	if metrics.RoundTrips == 0 {
		t.Fatal("TCP execution should count round trips")
	}

	// Errors surface cleanly and the connection stays usable.
	if _, err := s.Scan("nothere").Collect(); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
	if _, err := s.Query(`load sales | limit 1`).Collect(); err != nil {
		t.Fatalf("session unusable after error: %v", err)
	}
}

// Storing through the session to a remote provider and querying it back.
func TestSessionStoreToRemote(t *testing.T) {
	rel := relational.New("r")
	srv, err := server.Serve(rel, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Logf = t.Logf

	s := nexus.NewSession()
	name, err := s.ConnectTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "x", Type: nexus.Int64},
	).Append(int64(1)).Append(int64(2)).Append(int64(3)).Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(name, "nums", tab); err != nil {
		t.Fatal(err)
	}
	// The remote hello was taken at connect time; the underlying engine
	// definitely has the data.
	got, ok := rel.Dataset("nums")
	if !ok || got.NumRows() != 3 {
		t.Fatal("store did not reach the remote engine")
	}
}

// The federated PageRank pipeline through the public API: data on a
// relational engine, kernels on a graph engine, one Collect.
func TestFederatedPageRankPublicAPI(t *testing.T) {
	const n = 300
	s := nexus.NewSession()
	relName, err := s.AddEngine(nexus.Relational, "store")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEngine(nexus.Graph, "analytics"); err != nil {
		t.Fatal(err)
	}
	edges := datagen.UniformGraph(7, n, 1500)
	eb := nexus.NewTableBuilder(
		nexus.ColumnDef{Name: "src", Type: nexus.Int64},
		nexus.ColumnDef{Name: "dst", Type: nexus.Int64},
	)
	src := edges.ColByName("src").Ints()
	dst := edges.ColByName("dst").Ints()
	for i := range src {
		eb.Append(src[i], dst[i])
	}
	et, err := eb.Build()
	if err != nil {
		t.Fatal(err)
	}
	vb := nexus.NewTableBuilder(nexus.ColumnDef{Name: "v", Type: nexus.Int64})
	for i := int64(0); i < n; i++ {
		vb.Append(i)
	}
	vt, err := vb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(relName, "edges", et); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(relName, "vertices", vt); err != nil {
		t.Fatal(err)
	}

	deg := s.Scan("edges").GroupBy("src").Agg(nexus.Count("deg"))
	init := s.Scan("vertices").Extend("rank", nexus.Float(1.0/n))
	q := s.Let("deg", deg, func(degRef *nexus.Query) *nexus.Query {
		return s.Iterate("state", init, func(loop *nexus.Query) *nexus.Query {
			withdeg := loop.Join(degRef, nexus.Left, nexus.On("v", "src"))
			contrib := withdeg.Extend("share",
				nexus.Div(nexus.Col("rank"), nexus.Call("float", nexus.Col("deg"))))
			perEdge := s.Scan("edges").Join(contrib, nexus.Inner, nexus.On("src", "v"))
			insums := perEdge.GroupBy("dst").Agg(nexus.Sum("insum", nexus.Col("share")))
			dang := withdeg.Where(nexus.IsNull(nexus.Col("deg"))).
				Agg(nexus.Sum("dmass", nexus.Col("rank")))
			upd := nexus.Add(
				nexus.Float((1-0.85)/n),
				nexus.Mul(nexus.Float(0.85),
					nexus.Add(
						nexus.Call("coalesce", nexus.Col("insum"), nexus.Float(0)),
						nexus.Div(nexus.Call("coalesce", nexus.Col("dmass"), nexus.Float(0)), nexus.Float(n)))))
			return loop.
				Join(insums, nexus.Left, nexus.On("v", "dst")).
				Product(dang).
				Extend("nrank", upd).
				Select("v", "nrank").
				Rename("nrank", "rank")
		}, 20, &nexus.Convergence{Metric: nexus.L1, Col: "rank", Tol: 1e-12})
	})

	explain, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "on analytics") {
		t.Fatalf("iterate not routed to the graph engine:\n%s", explain)
	}
	res, err := q.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != n {
		t.Fatalf("ranks = %d", res.NumRows())
	}
	ranks, err := res.Floats("rank")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ranks sum to %g", sum)
	}
	// Oracle agreement confirms the kernel computed real PageRank.
	oracle := ref32(edgesToAdj(src, dst, n), n)
	vs, _ := res.Ints("v")
	for i := range vs {
		if d := ranks[i] - oracle[vs[i]]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("rank[%d] = %g, oracle %g", vs[i], ranks[i], oracle[vs[i]])
		}
	}
}

func edgesToAdj(src, dst []int64, n int) [][]int {
	adj := make([][]int, n)
	for i := range src {
		adj[src[i]] = append(adj[src[i]], int(dst[i]))
	}
	return adj
}

// ref32 is a tiny local PageRank oracle (20 iterations, matching the
// query's convergence-off behaviour closely enough for 1e-6 agreement).
func ref32(adj [][]int, n int) []float64 {
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < 20; it++ {
		for i := range next {
			next[i] = 0
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			if len(adj[u]) == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(len(adj[u]))
			for _, v := range adj[u] {
				next[v] += share
			}
		}
		base := (1-0.85)/float64(n) + 0.85*dangling/float64(n)
		for i := range next {
			next[i] = base + 0.85*next[i]
		}
		rank, next = next, rank
	}
	return rank
}

// The graph example's recognizer path must also fire for CC and SSSP
// built through internal plan builders executed via a session engine.
func TestKernelCountersThroughSession(t *testing.T) {
	gr := graph.New("g")
	if err := gr.Store("edges", datagen.UniformGraph(9, 100, 400)); err != nil {
		t.Fatal(err)
	}
	if err := gr.Store("vertices", graph.VerticesTable(100)); err != nil {
		t.Fatal(err)
	}
	cc, err := graph.ConnectedComponentsPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gr.Execute(cc); err != nil {
		t.Fatal(err)
	}
	sssp, err := graph.SSSPPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gr.Execute(sssp); err != nil {
		t.Fatal(err)
	}
	if gr.KernelCalls() != 2 {
		t.Fatalf("kernel calls = %d, want 2", gr.KernelCalls())
	}
}
