package nexus

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/schema"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Data in motion: the same Big Data algebra that runs over stored
// collections runs incrementally over unbounded event streams. A
// StreamQuery mirrors Query — Where/Select/Extend/JoinTable compile to
// the same core operators, evaluated per micro-batch; Window(...).
// GroupBy(...).Agg(...) adds watermark-driven windowed aggregation on
// top of the batch aggregation kernels.

// StreamWindow specifies how a stream is cut into windows.
type StreamWindow = core.StreamWindow

// Tumbling cuts event time into fixed, non-overlapping windows of the
// given size (in the stream's event-time units).
func Tumbling(size int64) StreamWindow {
	return StreamWindow{Kind: core.WindowTumbling, Size: size, Slide: size}
}

// Sliding covers event time with overlapping windows of the given size
// whose starts are slide units apart.
func Sliding(size, slide int64) StreamWindow {
	return StreamWindow{Kind: core.WindowSliding, Size: size, Slide: slide}
}

// CountWindow groups every n consecutive events, independent of event
// time.
func CountWindow(n int64) StreamWindow {
	return StreamWindow{Kind: core.WindowCount, Size: n}
}

// Names of the bound columns prepended to windowed aggregation results.
const (
	WindowStartCol = stream.WindowStartCol
	WindowEndCol   = stream.WindowEndCol
)

// StreamSource produces the events a StreamQuery consumes.
type StreamSource = stream.Source

// StreamStats reports the work a stream execution performed.
type StreamStats = stream.Stats

// ReplayTable streams a bounded table's rows in order, reading event
// time from the named int64 column — data at rest replayed as data in
// motion.
func ReplayTable(t *Table, timeCol string) StreamSource {
	return stream.NewReplay(t.t, timeCol)
}

// ChannelStream is a push source: feed live events with Send, end the
// stream with Close. Send and Close must not be called concurrently from
// different goroutines (same contract as a raw Go channel).
type ChannelStream struct {
	ch  *stream.Channel
	sch schema.Schema
}

// NewChannelStream builds a channel-backed stream with the given columns
// and buffer capacity. timeCol must name one of the int64 columns.
func NewChannelStream(timeCol string, buffer int, cols ...ColumnDef) (*ChannelStream, error) {
	sch, err := colDefsSchema(cols)
	if err != nil {
		return nil, err
	}
	i := sch.IndexOf(timeCol)
	if i < 0 || sch.At(i).Kind != value.KindInt64 {
		return nil, fmt.Errorf("nexus: stream time column %q must be an int64 column", timeCol)
	}
	return &ChannelStream{ch: stream.NewChannel(sch, timeCol, buffer), sch: sch}, nil
}

// Source exposes the stream for Session.StreamFrom.
func (c *ChannelStream) Source() StreamSource { return c.ch }

// Send enqueues one event from Go values: nil (NULL), bool, int, int64,
// float64 or string. It blocks while the buffer is full.
func (c *ChannelStream) Send(vals ...any) error {
	row := make([]value.Value, len(vals))
	for i, v := range vals {
		gv, err := goValue(v)
		if err != nil {
			return err
		}
		row[i] = gv
	}
	return c.ch.Send(row)
}

// Close ends the stream; further Sends fail.
func (c *ChannelStream) Close() { c.ch.Close() }

// GenerateSource synthesizes n events by calling fn(0..n-1); fn returns
// one row of Go values per call. Useful for load generation and tests.
func GenerateSource(timeCol string, n int64, fn func(i int64) []any, cols ...ColumnDef) (StreamSource, error) {
	sch, err := colDefsSchema(cols)
	if err != nil {
		return nil, err
	}
	gen := func(i int64) (stream.Row, error) {
		vals := fn(i)
		row := make([]value.Value, len(vals))
		for j, v := range vals {
			gv, err := goValue(v)
			if err != nil {
				return nil, err
			}
			row[j] = gv
		}
		return row, nil
	}
	return stream.NewGenerator(sch, timeCol, n, gen), nil
}

// StreamQuery is an immutable, error-carrying streaming query builder,
// the data-in-motion mirror of Query. Stages before Window apply to each
// micro-batch; stages after Agg apply to each emitted window result.
type StreamQuery struct {
	s *Session
	b *stream.Builder

	// partKey is the PartitionBy column for federated fan-out.
	partKey string
	// dataset/timeCol are set by StreamScan: a federated subscription
	// over a scanned dataset replays it on the serving provider instead
	// of shipping events from this process.
	dataset string
	timeCol string
	// durable names the server-side checkpoint (Durable); resume carries
	// per-partition resume tokens (ResumeFrom).
	durable string
	resume  []ResumeToken
	// traced marks the subscription for end-to-end tracing (Trace).
	traced bool
}

// Trace marks the subscription for end-to-end distributed tracing:
// SubscribeRemote opens a span — under the session's trace when a
// connection was made with ConnectOptions.Trace, else a fresh root —
// and every partition's subscribe carries its context, so server-side
// admission, window evaluation and (for failover subscriptions) the
// redial onto a replica all join this stream's trace. The trace id is
// reported by RemoteStream.TraceID and at /debug/traces on each node.
func (q *StreamQuery) Trace() *StreamQuery {
	nq := *q
	nq.traced = true
	return &nq
}

// Err returns the first construction error, if any.
func (q *StreamQuery) Err() error { return q.b.Err() }

// Schema renders the schema of emitted results.
func (q *StreamQuery) Schema() (string, error) {
	sch, err := q.b.OutputSchema()
	if err != nil {
		return "", err
	}
	return sch.String(), nil
}

func (q *StreamQuery) derive(b *stream.Builder) *StreamQuery {
	nq := *q
	nq.b = b
	return &nq
}

// Where keeps events satisfying the predicate.
func (q *StreamQuery) Where(pred Expr) *StreamQuery { return q.derive(q.b.Filter(pred)) }

// Select keeps the named columns (the event-time column is retained
// implicitly before windowing).
func (q *StreamQuery) Select(cols ...string) *StreamQuery { return q.derive(q.b.Project(cols)) }

// Extend appends a computed column.
func (q *StreamQuery) Extend(name string, e Expr) *StreamQuery {
	return q.derive(q.b.Extend(name, e))
}

// JoinTable enriches the stream against a bounded table with an equijoin.
func (q *StreamQuery) JoinTable(t *Table, typ JoinType, keys ...JoinKey) *StreamQuery {
	return q.JoinTableWhere(t, typ, nil, keys...)
}

// JoinTableWhere is JoinTable with an extra residual predicate over the
// combined schema.
func (q *StreamQuery) JoinTableWhere(t *Table, typ JoinType, residual Expr, keys ...JoinKey) *StreamQuery {
	lk := make([]string, len(keys))
	rk := make([]string, len(keys))
	for i, k := range keys {
		lk[i] = k.Left
		rk[i] = k.Right
	}
	return q.derive(q.b.JoinTable(t.t, typ, lk, rk, residual))
}

// BatchSize caps how many events one micro-batch evaluation consumes.
func (q *StreamQuery) BatchSize(n int) *StreamQuery { return q.derive(q.b.WithBatchSize(n)) }

// AllowedLateness lets out-of-order events up to l event-time units
// behind the newest event still reach their windows; anything later is
// dropped (and counted in StreamStats.Late).
func (q *StreamQuery) AllowedLateness(l int64) *StreamQuery { return q.derive(q.b.WithLateness(l)) }

// Window starts a windowed aggregation; complete it with GroupBy and Agg.
func (q *StreamQuery) Window(w StreamWindow) *StreamWindowQuery {
	return &StreamWindowQuery{q: q, win: w}
}

// StreamWindowQuery is the intermediate state of a Window; finish with
// Agg (optionally after GroupBy).
type StreamWindowQuery struct {
	q    *StreamQuery
	win  StreamWindow
	keys []string
}

// GroupBy sets the grouping keys within each window.
func (w *StreamWindowQuery) GroupBy(keys ...string) *StreamWindowQuery {
	return &StreamWindowQuery{q: w.q, win: w.win, keys: keys}
}

// Agg finishes the windowed aggregation: per closed window, one result
// row per group, prefixed with window_start and window_end columns.
func (w *StreamWindowQuery) Agg(aggs ...AggSpec) *StreamQuery {
	return w.q.derive(w.q.b.Aggregate(w.win, w.keys, aggs))
}

// Collect runs the stream to completion and returns every emitted row as
// one table. The context cancels long or unbounded streams.
func (q *StreamQuery) Collect(ctx context.Context) (*Table, error) {
	t, _, err := q.CollectWithStats(ctx)
	return t, err
}

// CollectWithStats is Collect plus execution statistics.
func (q *StreamQuery) CollectWithStats(ctx context.Context) (*Table, *StreamStats, error) {
	p, err := q.b.Build()
	if err != nil {
		return nil, nil, err
	}
	sink := stream.NewCollect(p.OutputSchema())
	st, err := p.Run(ctx, sink)
	if err != nil {
		return nil, &st, err
	}
	t, err := sink.Table()
	if err != nil {
		return nil, &st, err
	}
	return wrapTable(t), &st, nil
}

// ExplainAnalyze runs the stream to completion with a per-operator
// trace and renders both stage plans — the per-batch plan every
// micro-batch evaluates and, for windowed queries, the post-window plan
// every closed window runs through — annotated with observed calls,
// output rows and inclusive wall time. Calls accumulate across
// micro-batches, so a node's calls count is (roughly) the batch count.
// Results are discarded; the context bounds unbounded sources.
func (q *StreamQuery) ExplainAnalyze(ctx context.Context) (string, error) {
	p, err := q.b.Build()
	if err != nil {
		return "", err
	}
	tr := exec.NewTrace()
	p.WithTrace(tr)
	start := time.Now()
	st, err := p.Run(ctx, stream.Callback(func(*table.Table) error { return nil }))
	if err != nil {
		return "", err
	}
	pre, post := p.StagePlans()
	var b strings.Builder
	fmt.Fprintf(&b, "per-batch plan (%d micro-batches):\n", st.Batches)
	b.WriteString(exec.ExplainAnalyze(pre, tr))
	if post != nil {
		fmt.Fprintf(&b, "post-window plan (%d windows):\n", st.Windows)
		b.WriteString(exec.ExplainAnalyze(post, tr))
	}
	fmt.Fprintf(&b, "total: %d events → %d output rows in %s (%d windows, %d late rows)\n",
		st.Events, st.OutRows, time.Since(start).Round(time.Microsecond), st.Windows, st.Late)
	return b.String(), nil
}

// Subscribe runs the stream, delivering every emitted result table to fn
// as it appears — one table per micro-batch for stateless queries, one
// per closed window for windowed ones. A non-nil error from fn stops the
// stream.
func (q *StreamQuery) Subscribe(ctx context.Context, fn func(*Table) error) (*StreamStats, error) {
	p, err := q.b.Build()
	if err != nil {
		return nil, err
	}
	sink := stream.Callback(func(t *table.Table) error { return fn(wrapTable(t)) })
	st, err := p.Run(ctx, sink)
	return &st, err
}
